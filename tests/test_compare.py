"""Comparator tests: mismatch injection, determinism, and the
DuckDB-gated backend-matrix checks.

Each injection plants exactly one class of divergence into one of two
otherwise-identical SQLite backends and asserts the comparator
surfaces it as MISMATCH with the offending table/query named. The
DuckDB tests skip cleanly when the optional driver is absent — CI's
``backend-matrix`` job installs it and runs them for real.
"""

import pytest

from repro.backends import (DUCKDB, BackendError, DuckDBBackend,
                            EngineBackend, SQLBackend, SQLiteBackend,
                            compare_backends, compare_datasets,
                            duckdb_available, validate_design)
from repro.backends.compare import (DESIGNS, MISMATCH, OK, PRESETS,
                                    backend_factory, compare_loaded,
                                    known_backends)
from repro.datasets import dblp_schema, generate_dblp
from repro.engine import SQLType
from repro.mapping import collect_statistics, derive_schema, hybrid_inlining
from repro.physdesign import Configuration
from repro.sqlast import ColumnRef, Query, Select, SelectItem, TableRef
from repro.translate import Translator
from repro.workload import WorkloadGenerator

SCALE = 30
SEED = 7


@pytest.fixture(scope="module")
def dblp_small():
    tree = dblp_schema()
    docs = generate_dblp(SCALE, seed=SEED)
    schema = derive_schema(hybrid_inlining(tree))
    stats = collect_statistics(tree, docs)
    workload = WorkloadGenerator(tree, stats, seed=3).generate(4)
    translator = Translator(schema)
    queries = [translator.translate(w.query) for w in workload.queries]
    return schema, docs, queries


def _fresh_pair(dblp_small):
    """Two independent SQLite backends loaded identically."""
    schema, docs, queries = dblp_small
    a, b = SQLiteBackend(), SQLiteBackend()
    a.load(schema, docs)
    b.load(schema, docs)
    a.apply_configuration(Configuration())
    b.apply_configuration(Configuration())
    return schema, a, b, queries


def _check(report, name):
    return next(c for c in report.checks if c.name == name)


def _probe_table(backend):
    """(table, first column) of some non-empty table — deterministic
    because table names are sorted."""
    for name in backend.table_names_on_disk():
        if name.startswith("_"):
            continue
        if backend.table_rows(name):
            return name, backend.table_columns(name)[0][0]
    raise AssertionError("no populated table to inject into")


class TestMismatchInjection:
    def test_dropped_row_names_table(self, dblp_small):
        schema, a, b, queries = _fresh_pair(dblp_small)
        try:
            table, _ = _probe_table(b)
            quoted = b.dialect.quote(table)
            b.execute_sql(f"DELETE FROM {quoted} WHERE rowid IN "
                          f"(SELECT rowid FROM {quoted} LIMIT 1)")
            report = compare_loaded(a, b, queries, schema=schema)
            rows = _check(report, "rows")
            assert report.status == MISMATCH
            assert rows.status == MISMATCH
            assert table in rows.detail
            assert rows.data["samples"][table]["missing"]
        finally:
            a.close()
            b.close()

    def test_type_drift_names_table_and_column(self, dblp_small):
        schema, a, b, queries = _fresh_pair(dblp_small)
        try:
            table, _ = _probe_table(b)
            columns = b.table_columns(table)
            drifted = columns[0][0]
            quoted = b.dialect.quote(table)
            # Rebuild the table with the first column's declared type
            # drifted to BLOB (affinity NONE, so the stored values stay
            # byte-identical — only the declaration diverges).
            decls = ", ".join(
                f'{b.dialect.quote(col)} '
                f'{"BLOB" if col == drifted else typ}'
                for col, typ in columns)
            b.execute_sql(f'ALTER TABLE {quoted} RENAME TO "_drift_old"')
            b.execute_sql(f"CREATE TABLE {quoted} ({decls})")
            b.execute_sql(f'INSERT INTO {quoted} '
                          f'SELECT * FROM "_drift_old"')
            b.execute_sql('DROP TABLE "_drift_old"')
            report = compare_loaded(a, b, queries, schema=schema)
            check = _check(report, "schema.columns")
            assert report.status == MISMATCH
            assert check.status == MISMATCH
            assert table in check.detail and drifted in check.detail
        finally:
            a.close()
            b.close()

    def test_extra_index_names_index(self, dblp_small):
        schema, a, b, queries = _fresh_pair(dblp_small)
        try:
            table, column = _probe_table(b)
            b.execute_sql(
                f'CREATE INDEX "extra_probe_idx" ON '
                f'{b.dialect.quote(table)}({b.dialect.quote(column)})')
            report = compare_loaded(a, b, queries, schema=schema)
            check = _check(report, "indexes")
            assert report.status == MISMATCH
            assert check.status == MISMATCH
            assert "extra_probe_idx" in check.detail
            assert "extra_probe_idx" in check.data["only_b"]
        finally:
            a.close()
            b.close()

    def test_wrong_query_result_names_query(self, dblp_small):
        schema, a, b, _ = _fresh_pair(dblp_small)
        try:
            table, column = _probe_table(b)
            probe = Query(selects=(Select(
                items=(SelectItem(ColumnRef("T", column)),),
                from_tables=(TableRef(table=table, alias="T"),)),))
            assert b.execute(probe), "probe query must return rows"
            # The probe column is the INTEGER PRIMARY KEY, so shift it
            # instead of stringifying (a text value is rejected).
            b.execute_sql(
                f"UPDATE {b.dialect.quote(table)} "
                f"SET {b.dialect.quote(column)} = "
                f"{b.dialect.quote(column)} + 1000000")
            report = compare_loaded(a, b, [probe], schema=schema)
            check = _check(report, "queries")
            assert check.status == MISMATCH
            assert "query #0" in check.detail
            assert check.data["queries"][0]["sql"]
        finally:
            a.close()
            b.close()

    def test_identical_backends_ok_deterministically_twice(self,
                                                           dblp_small):
        schema, a, b, queries = _fresh_pair(dblp_small)
        try:
            first = compare_loaded(a, b, queries, schema=schema,
                                   context={"dataset": "dblp"})
            second = compare_loaded(a, b, queries, schema=schema,
                                    context={"dataset": "dblp"})
            assert first.status == OK and first.ok
            assert first.describe() == second.describe()
            assert first.to_json_text() == second.to_json_text()
            assert {c.name for c in first.checks} == {
                "schema.tables", "schema.columns", "rows", "indexes",
                "queries"}
        finally:
            a.close()
            b.close()

    def test_engine_vs_sqlite_ok(self, dblp_small):
        schema, docs, queries = dblp_small
        engine = EngineBackend()
        engine.load(schema, docs)
        engine.apply_configuration(Configuration())
        with SQLiteBackend() as sqlite_backend:
            sqlite_backend.load(schema, docs)
            sqlite_backend.apply_configuration(Configuration())
            report = compare_loaded(engine, sqlite_backend, queries,
                                    schema=schema)
        assert report.status == OK, report.describe()


class TestRegistry:
    def test_known_backends(self):
        assert known_backends() == ("engine", "sqlite", "duckdb")

    def test_factories_resolve(self):
        for name in known_backends():
            assert callable(backend_factory(name))
        with pytest.raises(ValueError):
            backend_factory("oracle")

    def test_designs_cover_presets_plus_greedy(self):
        assert set(DESIGNS) == set(PRESETS) | {"greedy"}


class TestCompareDatasets:
    def test_engine_vs_sqlite_hybrid_ok(self):
        report = compare_datasets("dblp", "hybrid", "engine", "sqlite",
                                  scale=SCALE, workload_size=4)
        assert report.status == OK, report.describe()
        assert report.context["dataset"] == "dblp"
        assert report.context["design"] == "hybrid"

    def test_unknown_dataset_and_design_raise(self):
        with pytest.raises(ValueError):
            compare_datasets("web", "hybrid", "engine", "sqlite")
        with pytest.raises(ValueError):
            compare_datasets("dblp", "zigzag", "engine", "sqlite",
                            scale=SCALE)


class TestDuckDBDialect:
    """Renderer divergences documented in docs/backends.md — these run
    without the driver installed."""

    def test_decimal_stays_decimal(self):
        assert DUCKDB.type_name(SQLType.DECIMAL) == "DECIMAL(18, 6)"

    def test_boolean_stays_boolean(self):
        assert DUCKDB.type_name(SQLType.BOOLEAN) == "BOOLEAN"

    def test_integer_widens_to_bigint(self):
        assert DUCKDB.type_name(SQLType.INTEGER) == "BIGINT"

    def test_boolean_literals_render_as_keywords(self):
        from repro.sqlast import Literal
        assert DUCKDB.literal(Literal(True)) == "TRUE"
        assert DUCKDB.literal(Literal(False)) == "FALSE"
        assert DUCKDB.literal(Literal(None)) == "NULL"


@pytest.mark.skipif(duckdb_available(), reason="duckdb installed")
class TestDuckDBMissing:
    def test_constructor_raises_clear_backend_error(self):
        with pytest.raises(BackendError, match="duckdb"):
            DuckDBBackend()


@pytest.mark.skipif(not duckdb_available(), reason="duckdb not installed")
class TestDuckDBBackend:
    """The backend-matrix gate proper: only runs with duckdb installed
    (the CI ``backend-matrix`` job)."""

    def test_protocol_conformance(self):
        with DuckDBBackend() as backend:
            assert isinstance(backend, SQLBackend)
            assert backend.name == "duckdb"

    def test_differential_validator_vs_engine(self, dblp_small):
        schema, docs, queries = dblp_small
        engine = EngineBackend()
        engine.load(schema, docs)
        with DuckDBBackend() as duck:
            duck.load(schema, docs)
            engine.apply_configuration(Configuration())
            duck.apply_configuration(Configuration())
            report = compare_backends(engine, duck, queries)
        assert report.ok, report.describe()

    @pytest.mark.parametrize("design", sorted(PRESETS))
    def test_sqlite_vs_duckdb_presets_ok(self, design):
        report = compare_datasets("dblp", design, "sqlite", "duckdb",
                                  scale=SCALE, workload_size=4)
        assert report.status == OK, report.describe()

    def test_validate_design_accepts_duckdb_rows(self, dblp_small):
        # The folded-in differential validator path: engine vs sqlite
        # stays the oracle, but duckdb rows normalize identically
        # (Decimal -> float, BOOLEAN -> int).
        schema, docs, queries = dblp_small
        report = validate_design(schema, Configuration(), docs, queries)
        assert report.ok, report.describe()
