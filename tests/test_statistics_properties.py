"""Property-based tests for statistics invariants.

The optimizer's plan choices (and therefore the whole design search)
rest on these estimates behaving sanely, so the invariants are pinned
with hypothesis across arbitrary value distributions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ColumnStats

values_strategy = st.lists(
    st.one_of(st.integers(-1000, 1000), st.none()),
    min_size=1, max_size=300)

string_values = st.lists(
    st.one_of(st.text(min_size=1, max_size=8), st.none()),
    min_size=1, max_size=200)


@given(values_strategy, st.integers(-1000, 1000))
@settings(max_examples=200, deadline=None)
def test_selectivities_are_probabilities(values, probe):
    stats = ColumnStats.from_values(values)
    assert 0.0 <= stats.eq_selectivity(probe) <= 1.0
    for op in ("<", "<=", ">", ">="):
        assert 0.0 <= stats.range_selectivity(op, probe) <= 1.0


@given(values_strategy, st.integers(-1000, 1000))
@settings(max_examples=200, deadline=None)
def test_le_plus_gt_covers_non_null(values, probe):
    stats = ColumnStats.from_values(values)
    le = stats.range_selectivity("<=", probe)
    gt = stats.range_selectivity(">", probe)
    assert le + gt <= stats.non_null_fraction + 1e-6
    # And the pair partitions the non-null mass (within histogram error).
    assert le + gt >= stats.non_null_fraction - 0.2


@given(values_strategy, st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=200, deadline=None)
def test_range_selectivity_monotone(values, a, b):
    lo, hi = min(a, b), max(a, b)
    stats = ColumnStats.from_values(values)
    assert stats.range_selectivity("<=", lo) <= \
        stats.range_selectivity("<=", hi) + 1e-9
    assert stats.range_selectivity(">=", hi) <= \
        stats.range_selectivity(">=", lo) + 1e-9


@given(values_strategy)
@settings(max_examples=200, deadline=None)
def test_le_selectivity_tracks_truth(values):
    """Histogram estimate of <= median stays near the actual fraction."""
    stats = ColumnStats.from_values(values)
    non_null = sorted(v for v in values if v is not None)
    if not non_null:
        return
    probe = non_null[len(non_null) // 2]
    actual = sum(1 for v in non_null if v <= probe) / len(values)
    estimate = stats.range_selectivity("<=", probe)
    assert abs(estimate - actual) <= 0.25


@given(values_strategy, st.integers(1, 500))
@settings(max_examples=100, deadline=None)
def test_scaled_preserves_probability_bounds(values, new_rows):
    stats = ColumnStats.from_values(values).scaled(new_rows)
    assert stats.row_count == new_rows
    assert 0 <= stats.null_count <= new_rows
    assert stats.n_distinct <= max(new_rows, 1)
    assert 0.0 <= stats.eq_selectivity(0) <= 1.0


@given(st.lists(values_strategy, min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_merged_row_accounting(parts_values):
    parts = [ColumnStats.from_values(v) for v in parts_values]
    merged = ColumnStats.merged(parts)
    assert merged.row_count == sum(p.row_count for p in parts)
    assert merged.null_count == sum(p.null_count for p in parts)
    for op in ("<", ">="):
        assert 0.0 <= merged.range_selectivity(op, 0) <= 1.0


@given(string_values, st.text(min_size=1, max_size=8))
@settings(max_examples=150, deadline=None)
def test_string_columns_behave(values, probe):
    stats = ColumnStats.from_values(values, is_string=True)
    assert 0.0 <= stats.eq_selectivity(probe) <= 1.0
    assert 0.0 <= stats.range_selectivity("<=", probe) <= 1.0
    if any(v is not None for v in values):
        assert stats.avg_width and stats.avg_width >= 1
