"""RES0xx — resource and exception-hygiene lints.

* **RES001** — an ``except Exception:`` / bare ``except:`` handler that
  swallows the failure: it neither re-raises, nor routes through
  :func:`repro.resilience.note_suppressed` (the PR 4 convention that
  makes every deliberate suppression visible on metrics), nor even
  reads the bound exception. Such handlers turn real faults into
  silent wrong results.
* **RES002** — an ``open()`` / ``*.connect()`` result that is not
  closed on all paths: not used as a ``with`` context manager, never
  ``.close()``-d in its function, and not handed off (returned,
  yielded, stored on ``self``/a module global, or passed to another
  call — e.g. appended to a pool that closes it later).
"""

from __future__ import annotations

import ast

from ..findings import Findings
from .walker import SourceModule

__all__ = ["check_resources"]


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Catches Exception/BaseException (alone or in a tuple), or bare."""
    def broad(expr: ast.expr) -> bool:
        return isinstance(expr, ast.Name) and \
            expr.id in ("Exception", "BaseException")

    if handler.type is None:
        return True
    if broad(handler.type):
        return True
    if isinstance(handler.type, ast.Tuple):
        return any(broad(e) for e in handler.type.elts)
    return False


def _handler_routes_failure(handler: ast.ExceptHandler) -> bool:
    """Re-raises, calls note_suppressed, or reads the bound exception."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else "")
            if name == "note_suppressed":
                return True
        if handler.name is not None and isinstance(node, ast.Name) and \
                node.id == handler.name and isinstance(node.ctx, ast.Load):
            return True
    return False


def _check_handlers(module: SourceModule, findings: Findings) -> None:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad_handler(node):
            continue
        if _handler_routes_failure(node):
            continue
        what = "bare except:" if node.type is None else "except Exception:"
        findings.add(
            "RES001",
            f"{what} swallows the failure — re-raise, or route it "
            f"through note_suppressed() so the suppression is counted",
            module.location(node))


# ----------------------------------------------------------------------
# RES002
# ----------------------------------------------------------------------
def _is_opener(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return True
    return isinstance(func, ast.Attribute) and func.attr == "connect"


def _opener_label(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Name):
        return f"{func.id}()"
    assert isinstance(func, ast.Attribute)
    value = func.value
    prefix = value.id if isinstance(value, ast.Name) else "..."
    return f"{prefix}.{func.attr}()"


def _in_with_items(module: SourceModule, call: ast.Call) -> bool:
    """Is the call a ``with`` context expression (possibly wrapped in
    ``contextlib.closing(...)``)?"""
    node: ast.AST = call
    parent = module.parent(call)
    if isinstance(parent, ast.Call):
        func = parent.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else "")
        if name == "closing" and call in parent.args:
            node, parent = parent, module.parent(parent)
    if isinstance(parent, ast.withitem) and parent.context_expr is node:
        return True
    return False


def _enclosing_function(
        module: SourceModule,
        node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def _escapes_or_closes(module: SourceModule, call: ast.Call,
                       name: str) -> bool:
    """Is the variable ``name`` closed or handed off in its function?"""
    scope: ast.AST | None = _enclosing_function(module, call)
    if scope is None:
        scope = module.tree  # module-level handle: scan the whole module
    for node in ast.walk(scope):
        if isinstance(node, ast.Call):
            func = node.func
            # x.close() (or x.anything-with-close, e.g. x.aclose())
            if isinstance(func, ast.Attribute) and "close" in func.attr and \
                    isinstance(func.value, ast.Name) and \
                    func.value.id == name:
                return True
            # handed to another call: append(x), closing(x), register(x)…
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        elif isinstance(node, ast.Return) and \
                isinstance(node.value, ast.Name) and node.value.id == name:
            return True
        elif isinstance(node, (ast.Yield, ast.YieldFrom)) and \
                isinstance(node.value, ast.Name) and node.value.id == name:
            return True
        elif isinstance(node, ast.Assign):
            # re-homed onto an attribute or container: ownership moves
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)) and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id == name:
                    return True
    return False


def _check_openers(module: SourceModule, findings: Findings) -> None:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and _is_opener(node)):
            continue
        if _in_with_items(module, node):
            continue
        parent = module.parent(node)
        if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
            target = parent.targets[0]
            if isinstance(target, ast.Name):
                if _escapes_or_closes(module, node, target.id):
                    continue
                findings.add(
                    "RES002",
                    f"{_opener_label(node)} result {target.id!r} is "
                    f"never closed on this path — use `with`, or "
                    f"close()/hand it off on every path",
                    module.location(node))
                continue
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                continue  # escapes into an object/container
        if isinstance(parent, ast.Return):
            continue  # ownership transferred to the caller
        findings.add(
            "RES002",
            f"{_opener_label(node)} result is consumed inline and never "
            f"closed — bind it in a `with` block",
            module.location(node))


def check_resources(module: SourceModule) -> Findings:
    findings = Findings()
    _check_handlers(module, findings)
    _check_openers(module, findings)
    return findings
