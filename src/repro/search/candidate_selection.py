"""Workload-based candidate selection (paper Section 4.5).

Analyzes each XPath query's shape against the schema tree and keeps only
the transformations that can benefit it:

1. subsumed transformations are never selected (they are covered by
   vertical partitioning / covering indexes);
2. a union distribution (explicit or implicit) is selected only when the
   query would access at most half of the partitions it generates;
3. a repetition split is selected for a referenced set-valued leaf when
   the cardinality distribution is skewed to the low end (Section 4.6's
   k-selection via :meth:`CollectedStats.suggest_split_count`);
4. a type split is selected when a query pins one occurrence of a shared
   type; a (deep) type merge when one query spans several equivalent
   occurrences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MappingError
from ..mapping import (CollectedStats, Mapping, RepetitionSplit,
                       Transformation, TypeMerge, TypeSplit, UnionDistribute,
                       UnionDistribution)
from ..obs import get_tracer
from ..resilience import note_suppressed
from ..translate import resolve_steps
from ..workload import Workload
from ..xpath import XPathQuery
from ..xsd import NodeKind, SchemaNode, SchemaTree


@dataclass
class CandidateSet:
    """Selected candidates, partitioned as the Greedy algorithm uses them."""

    splits: list[Transformation] = field(default_factory=list)
    merges: list[Transformation] = field(default_factory=list)
    implicit_unions: list[UnionDistribution] = field(default_factory=list)

    def all(self) -> list[Transformation]:
        return self.splits + self.merges


def _referenced_leaves(tree: SchemaTree, query: XPathQuery,
                       context: SchemaNode) -> tuple[list[SchemaNode],
                                                     list[SchemaNode]]:
    """(projection leaves, predicate leaves) under one context node."""
    projections: list[SchemaNode] = []
    predicates: list[SchemaNode] = []
    for path in query.projections:
        projections.extend(
            n for n in resolve_steps(tree, path, start=context)
            if tree.is_leaf_element(n))
    if not query.projections and tree.is_leaf_element(context):
        projections.append(context)
    if query.predicate is not None:
        predicates.extend(
            n for n in resolve_steps(tree, query.predicate.path,
                                     start=context)
            if tree.is_leaf_element(n))
    return projections, predicates


def _option_ancestor(tree: SchemaTree, leaf: SchemaNode,
                     region_root: SchemaNode) -> SchemaNode | None:
    """Nearest OPTION ancestor of the leaf within the region."""
    current = tree.parent(leaf)
    while current is not None and current.node_id != region_root.node_id:
        if current.kind == NodeKind.OPTION:
            return current
        if current.kind == NodeKind.TAG:
            return None
        current = tree.parent(current)
    return None


def _choice_branch(tree: SchemaTree, leaf: SchemaNode,
                   region_root: SchemaNode) -> tuple[SchemaNode, int] | None:
    """(choice node, branch index) containing the leaf, if any."""
    current = leaf
    parent = tree.parent(current)
    while parent is not None and current.node_id != region_root.node_id:
        if parent.kind == NodeKind.CHOICE:
            return parent, parent.child_ids.index(current.node_id)
        if parent.kind == NodeKind.TAG:
            return None
        current, parent = parent, tree.parent(parent)
    return None


class CandidateSelector:
    """Runs the Section 4.5 rules over a workload."""

    def __init__(self, base_mapping: Mapping, stats: CollectedStats,
                 cmax: int = 5, coverage: float = 0.80):
        self.mapping = base_mapping
        self.tree = base_mapping.tree
        self.stats = stats
        self.cmax = cmax
        self.coverage = coverage

    # ------------------------------------------------------------------
    def select(self, workload: Workload) -> CandidateSet:
        out = CandidateSet()
        seen: set = set()

        def add_split(transformation: Transformation) -> None:
            key = str(transformation)
            if key not in seen:
                seen.add(key)
                out.splits.append(transformation)
                if isinstance(transformation, UnionDistribute) and \
                        transformation.distribution.is_implicit:
                    out.implicit_unions.append(transformation.distribution)

        def add_merge(transformation: Transformation) -> None:
            key = str(transformation)
            if key not in seen:
                seen.add(key)
                out.merges.append(transformation)

        for weighted in workload:
            self._candidates_for_query(weighted.query, add_split, add_merge)
        return out

    # ------------------------------------------------------------------
    def _candidates_for_query(self, query: XPathQuery, add_split,
                              add_merge) -> None:
        tree = self.tree
        contexts = resolve_steps(tree, query.steps)
        region_leaf_sets: list[list[SchemaNode]] = []
        for context in contexts:
            region_root = (context if not tree.is_leaf_element(context)
                           else tree.nearest_tag_ancestor(context)) or context
            projections, predicates = _referenced_leaves(tree, query, context)
            referenced = projections + predicates
            region_leaf_sets.append(referenced)
            self._union_candidates(region_root, projections, predicates,
                                   add_split)
            self._repetition_candidates(referenced, add_split)
            self._type_split_candidates(context, referenced, add_split)
        self._type_merge_candidates(contexts, add_merge)

    # -- rule 2: union distribution --------------------------------------
    def _union_candidates(self, region_root: SchemaNode,
                          projections: list[SchemaNode],
                          predicates: list[SchemaNode], add_split) -> None:
        tree = self.tree
        referenced = projections + predicates
        if not referenced:
            return
        # Explicit choices: access at most half of the branches.
        by_choice: dict[int, set[int]] = {}
        for leaf in referenced:
            located = _choice_branch(tree, leaf, region_root)
            if located is not None:
                choice, branch = located
                by_choice.setdefault(choice.node_id, set()).add(branch)
        for choice_id, branches in by_choice.items():
            n_branches = len(tree.node(choice_id).child_ids)
            if 0 < len(branches) <= n_branches / 2:
                add_split(UnionDistribute(
                    UnionDistribution(choice_id=choice_id)))
        # Implicit unions: the query must stay inside the has-partition —
        # either the predicate forces presence of the option, or every
        # referenced leaf sits under it.
        options = {leaf.node_id: _option_ancestor(tree, leaf, region_root)
                   for leaf in referenced}
        for leaf in predicates:
            option = options.get(leaf.node_id)
            if option is not None:
                add_split(UnionDistribute(UnionDistribution(
                    optional_ids=frozenset({option.node_id}))))
        predicate_option_ids = {
            options[leaf.node_id].node_id
            if options[leaf.node_id] is not None else None
            for leaf in predicates}
        if not predicates or predicate_option_ids == {None}:
            proj_options = [options.get(leaf.node_id) for leaf in projections]
            if proj_options and all(o is not None for o in proj_options):
                for option in sorted({o.node_id for o in proj_options}):
                    add_split(UnionDistribute(UnionDistribution(
                        optional_ids=frozenset({option}))))

    # -- rule 3: repetition split ----------------------------------------
    def _repetition_candidates(self, referenced: list[SchemaNode],
                               add_split) -> None:
        tree = self.tree
        for leaf in referenced:
            rep = tree.enclosing_repetition(leaf)
            if rep is None or not tree.is_leaf_element(leaf):
                continue
            if rep.node_id in self.mapping.split_map:
                continue
            k = self.stats.suggest_split_count(rep.node_id, self.cmax,
                                               self.coverage)
            if k is not None:
                add_split(RepetitionSplit(rep.node_id, k))

    # -- rule 4a: type split ----------------------------------------------
    def _type_split_candidates(self, context: SchemaNode,
                               referenced: list[SchemaNode],
                               add_split) -> None:
        for node in [context] + referenced:
            annotation = self.mapping.annotation_of(node.node_id)
            if annotation is None:
                continue
            sharers = self.mapping.nodes_with_annotation(annotation)
            if len(sharers) < 2:
                continue
            add_split(TypeSplit(node.node_id, f"{annotation}_s{node.node_id}"))

    # -- rule 4b: deep type merge ------------------------------------------
    def _type_merge_candidates(self, contexts: list[SchemaNode],
                               add_merge) -> None:
        tree = self.tree
        by_signature: dict[tuple, list[SchemaNode]] = {}
        for node in contexts:
            by_signature.setdefault(
                tree.structural_signature(node), []).append(node)
        for nodes in by_signature.values():
            if len(nodes) < 2:
                continue
            annotations = {self.mapping.annotation_of(n.node_id)
                           for n in nodes}
            if len(annotations) == 1 and None not in annotations:
                continue  # already merged
            name = nodes[0].name or "merged"
            add_merge(TypeMerge(tuple(n.node_id for n in nodes),
                                f"{name}_m"))


def apply_splits(mapping: Mapping,
                 splits: list[Transformation]) -> tuple[Mapping, list[Transformation]]:
    """Apply all split candidates to build M0 (Fig. 3 line 2).

    Type splits go first (they can unlock distributions), then union
    distributions, then repetition splits. Candidates that fail to
    validate in combination are dropped. Returns (M0, applied)."""
    def order(t: Transformation) -> int:
        if isinstance(t, TypeSplit):
            return 0
        if isinstance(t, UnionDistribute):
            return 1
        return 2

    applied: list[Transformation] = []
    current = mapping
    for transformation in sorted(splits, key=order):
        try:
            current = transformation.validate_applied(current)
        except MappingError as exc:
            note_suppressed(exc, "selection.apply_splits", get_tracer())
            continue
        applied.append(transformation)
    return current, applied
