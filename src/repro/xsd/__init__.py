"""XSD schema trees: model, parsers (XSD subset + DTD), and validation."""

from .dtd import parse_dtd
from .nodes import UNBOUNDED, BaseType, NodeKind, SchemaNode
from .parser import parse_xsd, parse_xsd_file
from .tree import SchemaTree, TreeBuilder, walk_particles
from .validate import Validator, validate

__all__ = [
    "BaseType",
    "NodeKind",
    "SchemaNode",
    "SchemaTree",
    "TreeBuilder",
    "UNBOUNDED",
    "walk_particles",
    "parse_xsd",
    "parse_xsd_file",
    "parse_dtd",
    "Validator",
    "validate",
]
