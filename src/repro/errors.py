"""Exception hierarchy for the repro package.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch all library failures with one handler while still being able to
distinguish parse errors from engine errors, etc.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class XMLParseError(ReproError):
    """Malformed XML text.

    Carries the 1-based ``line`` and ``column`` of the offending input
    position when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class XSDError(ReproError):
    """Malformed or unsupported XSD/DTD schema document."""


class SchemaTreeError(ReproError):
    """Invalid schema-tree structure or annotation."""


class ValidationError(ReproError):
    """XML instance does not conform to its schema tree."""


class XPathError(ReproError):
    """Malformed or unsupported XPath expression."""


class SQLError(ReproError):
    """Base class for SQL layer errors."""


class SQLParseError(SQLError):
    """Malformed SQL text."""


class CatalogError(SQLError):
    """Unknown/duplicate table, column, or index."""


class PlanError(SQLError):
    """The optimizer could not build a plan for a statement."""


class ExecutionError(SQLError):
    """Runtime failure while executing a plan."""


class MappingError(ReproError):
    """Invalid XML-to-relational mapping or transformation."""


class TransformError(MappingError):
    """A schema transformation is not applicable at the requested node."""


class ShreddingError(MappingError):
    """A document cannot be shredded under the given mapping."""


class TranslationError(ReproError):
    """An XPath query cannot be translated to SQL under a mapping."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class SearchError(ReproError):
    """Design-search failure (e.g. no feasible configuration)."""


class ResilienceError(ReproError):
    """Base class for the fault-injection / recovery layer."""


class InjectedFault(ResilienceError):
    """A fault deliberately raised by an active :class:`FaultPlan`.

    ``retryable`` distinguishes transient faults (the retry policy may
    re-attempt the operation) from fatal ones (propagate immediately —
    used by tests to kill a search at a deterministic point).
    """

    def __init__(self, site: str, retryable: bool = True):
        kind = "transient" if retryable else "fatal"
        super().__init__(f"injected {kind} fault at site {site!r}")
        self.site = site
        self.retryable = retryable


class EvaluationTimeout(ResilienceError):
    """A pooled evaluation exceeded the per-evaluation deadline."""


class CheckpointError(ResilienceError):
    """A checkpoint cannot be used (wrong problem, wrong algorithm)."""


class CheckError(ReproError):
    """A static-analysis pass found ERROR-severity violations.

    Raised by :func:`repro.check.enforce` when ``REPRO_CHECK`` is
    enabled and an analyzer reports at least one ERROR finding; carries
    the findings for programmatic inspection.
    """

    def __init__(self, message: str, findings=None):
        super().__init__(message)
        self.findings = findings
