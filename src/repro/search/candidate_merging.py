"""Candidate merging (paper Section 4.7).

Individual implicit-union candidates optimize single queries; merging a
pair ``c_i, c_j`` on the same table into a candidate over the *union* of
their optional node sets can benefit several queries at once (the
``c_3`` example: partition movies into "has year or avg_rating" vs.
"has neither").

The greedy merger repeatedly merges the pair with the largest estimated
benefit under the paper's heuristic I/O-saving model::

    s(c_i, Q) = ((|R| - sum |R_A|) / sum |R_S(Q)|) * cost(Q)

where |R_A| are the partitions Q accesses and |R_S(Q)| the relations it
references; an exhaustive variant enumerates every subset merge (used by
the Fig. 8 ablation).
"""

from __future__ import annotations

import itertools
from collections import Counter

from ..mapping import (CollectedStats, Mapping, UnionDistribution,
                       derive_schema)
from ..translate import resolve_steps
from ..workload import Workload
from ..xpath import XPathQuery
from ..xsd import NodeKind, SchemaTree
from .candidate_selection import _option_ancestor, _referenced_leaves


class CandidateMerger:
    """Greedy (or exhaustive) merging of implicit-union candidates."""

    def __init__(self, mapping: Mapping, stats: CollectedStats,
                 workload: Workload,
                 base_costs: dict[int, float] | None = None):
        self.mapping = mapping
        self.tree = mapping.tree
        self.stats = stats
        self.workload = workload
        # cost(Q) under the current mapping; uniform when not provided.
        self.base_costs = base_costs or {
            i: 1.0 for i in range(len(workload))}

    # ------------------------------------------------------------------
    def merge_greedy(self, candidates: list[UnionDistribution]
                     ) -> list[UnionDistribution]:
        """The paper's O(|C0|^3) greedy pairwise merging."""
        pool = list(dict.fromkeys(candidates))
        while True:
            best = None
            for a, b in itertools.combinations(pool, 2):
                merged = self._mergeable(a, b)
                if merged is None:
                    continue
                benefit = self.total_benefit(merged)
                if benefit <= 0:
                    continue
                if best is None or benefit > best[0]:
                    best = (benefit, a, b, merged)
            if best is None:
                return pool
            _, a, b, merged = best
            pool = [c for c in pool if c not in (a, b)]
            pool.append(merged)

    def merge_exhaustive(self, candidates: list[UnionDistribution]
                         ) -> list[UnionDistribution]:
        """Enumerate all subset merges and keep the best partitioning.

        Exponential in |C0| (the Fig. 8 baseline); candidates grouped by
        owner, each owner's best-benefit subset union is kept together
        with the unmerged remainder.
        """
        pool = list(dict.fromkeys(candidates))
        by_owner: dict[int, list[UnionDistribution]] = {}
        for candidate in pool:
            owner = self.mapping.distribution_owner(candidate)
            by_owner.setdefault(owner, []).append(candidate)
        out: list[UnionDistribution] = []
        for owner, group in by_owner.items():
            best_subset: tuple[UnionDistribution, ...] | None = None
            best_benefit = 0.0
            for size in range(2, len(group) + 1):
                for subset in itertools.combinations(group, size):
                    merged = UnionDistribution(optional_ids=frozenset(
                        itertools.chain.from_iterable(
                            c.optional_ids for c in subset)))
                    benefit = self.total_benefit(merged)
                    if benefit > best_benefit:
                        best_benefit, best_subset = benefit, subset
            if best_subset is None:
                out.extend(group)
            else:
                merged = UnionDistribution(optional_ids=frozenset(
                    itertools.chain.from_iterable(
                        c.optional_ids for c in best_subset)))
                out.append(merged)
                out.extend(c for c in group if c not in best_subset)
        return out

    # ------------------------------------------------------------------
    def _mergeable(self, a: UnionDistribution,
                   b: UnionDistribution) -> UnionDistribution | None:
        """Mergeable: same owner table, neither optional set contains
        the other (paper Section 4.7)."""
        if not (a.is_implicit and b.is_implicit):
            return None
        if self.mapping.distribution_owner(a) != \
                self.mapping.distribution_owner(b):
            return None
        if a.optional_ids <= b.optional_ids or \
                b.optional_ids <= a.optional_ids:
            return None
        return UnionDistribution(
            optional_ids=a.optional_ids | b.optional_ids)

    # ------------------------------------------------------------------
    # The heuristic I/O-saving benefit model
    # ------------------------------------------------------------------
    def total_benefit(self, candidate: UnionDistribution) -> float:
        total = 0.0
        for i, weighted in enumerate(self.workload):
            saving = self.query_benefit(candidate, weighted.query)
            total += weighted.weight * saving * self.base_costs.get(i, 1.0)
        return total

    def query_benefit(self, candidate: UnionDistribution,
                      query: XPathQuery) -> float:
        """Fractional I/O saving of the candidate for one query."""
        tree = self.tree
        owner = self.mapping.distribution_owner(candidate)
        owner_node = tree.node(owner)
        contexts = resolve_steps(tree, query.steps)
        relevant = [c for c in contexts
                    if self._region_owner(c) == owner]
        if not relevant:
            return 0.0
        owner_rows = self.stats.instances(owner)
        if owner_rows == 0:
            return 0.0
        has_rows = self._has_partition_rows(owner, candidate.optional_ids)
        none_rows = owner_rows - has_rows
        saving = 0.0
        for context in relevant:
            accessed = self._accessed_rows(context, query, candidate,
                                           owner_rows, has_rows, none_rows)
            if accessed >= owner_rows:
                continue  # accesses both partitions: no benefit
            saving = max(saving, (owner_rows - accessed) / owner_rows)
        return saving

    def _region_owner(self, context) -> int:
        node = context
        if self.tree.is_leaf_element(node):
            parent = self.tree.nearest_tag_ancestor(node)
            if parent is not None:
                node = parent
        return self.mapping.owner_of(node.node_id)

    def _has_partition_rows(self, owner: int,
                            optional_ids: frozenset[int]) -> int:
        joint = self.stats.joint.get(owner, Counter())
        return sum(freq for signature, freq in joint.items()
                   if any(("opt", oid) in signature for oid in optional_ids))

    def _accessed_rows(self, context, query: XPathQuery,
                       candidate: UnionDistribution, owner_rows: int,
                       has_rows: int, none_rows: int) -> int:
        tree = self.tree
        region_root = (context if not tree.is_leaf_element(context)
                       else tree.nearest_tag_ancestor(context)) or context
        projections, predicates = _referenced_leaves(tree, query, context)
        inside = frozenset(candidate.optional_ids)

        def under_candidate(leaf) -> bool:
            option = _option_ancestor(tree, leaf, region_root)
            return option is not None and option.node_id in inside

        if predicates and all(under_candidate(p) for p in predicates):
            return has_rows  # presence forced by the selection
        if not predicates and projections and \
                all(under_candidate(p) for p in projections):
            return has_rows
        return owner_rows  # touches common columns: both partitions
