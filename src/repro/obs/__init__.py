"""Structured observability: span tracer, events, metric registries.

The search stack (``GreedySearch``, ``MappingEvaluator``,
``IndexTuningAdvisor``, ``Database.estimate``) is instrumented against
this package; pass a :class:`Tracer` (or install one ambiently with
:func:`set_tracer`) to get a per-phase breakdown of a design search.
See docs/observability.md.
"""

from .export import (find_spans, iter_spans, render_tree, sum_attribute,
                     summarize, to_json, trace_to_dicts)
from .metrics import (NULL_METRICS, LatencyHistogram, MetricRegistry,
                      NullMetricRegistry)
from .trace import (NULL_TRACER, Event, NullTracer, Span, Tracer,
                    get_tracer, set_tracer)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "Event",
    "get_tracer",
    "set_tracer",
    "MetricRegistry",
    "LatencyHistogram",
    "NullMetricRegistry",
    "NULL_METRICS",
    "render_tree",
    "to_json",
    "trace_to_dicts",
    "summarize",
    "iter_spans",
    "find_spans",
    "sum_attribute",
]
