#!/usr/bin/env python
"""SIGKILL load smoke test: kill a bulk load -9 mid-flight, reopen the
database, and require resume to reproduce the uninterrupted load.

tests/test_backends.py::TestCrashSafeLoad proves the same property with
an injected fatal fault (deterministic, in-process). This script is the
CI complement with a *real* ``SIGKILL``: the child slows every
bulk-load batch with ``hang`` faults so the parent can watch committed
watermarks appear in the load manifest, then kill the process between
transactions. The parent reopens the file, checks the manifest reports
an incomplete fresh load, resumes it, and compares every table against
a clean load byte for byte.

Usage: python scripts/load_kill_smoke.py [--scale N]
Exit 0 on success, 1 on mismatch/failure.
"""

import argparse
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.backends import MANIFEST_TABLE, SQLiteBackend  # noqa: E402
from repro.experiments import DatasetBundle  # noqa: E402
from repro.mapping import derive_schema, hybrid_inlining  # noqa: E402
from repro.resilience import install_fault_plan  # noqa: E402

# Every batch sleeps in the child, giving the parent a comfortable
# window between "first watermark committed" and "load done" in which
# to deliver the SIGKILL.
HANG_SPEC = "backend.load.batch:1:hang:0.05"
BATCH_ROWS = 200


def _problem(scale):
    bundle = DatasetBundle.dblp(scale=scale, seed=11)
    schema = derive_schema(hybrid_inlining(bundle.tree))
    return schema, bundle.docs


def _table_digests(path, schema):
    with SQLiteBackend(str(path), read_only=True) as backend:
        return {name: sorted(backend.execute_sql(
                    f'SELECT * FROM "{name}"'))
                for name in schema.table_names}


def _committed_rows(path) -> int:
    """Sum of committed watermarks, read through an independent
    read-only connection (0 until the manifest header lands)."""
    try:
        connection = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
    except sqlite3.Error:
        return 0
    try:
        rows = connection.execute(
            f'SELECT "value" FROM "{MANIFEST_TABLE}" '
            f'WHERE "key" LIKE \'rows:%\'').fetchall()
        return sum(int(value) for (value,) in rows)
    except sqlite3.Error:
        return 0
    finally:
        connection.close()


def _child(scale, db_path):
    install_fault_plan(HANG_SPEC)
    schema, docs = _problem(scale)
    with SQLiteBackend(db_path) as backend:
        backend.load(schema, docs, batch_size=BATCH_ROWS,
                     txn_rows=BATCH_ROWS)
    return 0


def _parent(scale, workdir):
    schema, docs = _problem(scale)
    clean_db = Path(workdir) / "clean.db"
    crash_db = Path(workdir) / "crash.db"

    print("load-kill-smoke: running uninterrupted baseline load ...",
          flush=True)
    with SQLiteBackend(str(clean_db)) as backend:
        backend.load(schema, docs)
        clean_counts = dict(backend.row_counts)
    total_rows = sum(clean_counts.values())

    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(
                   filter(None, [str(REPO / "src"),
                                 os.environ.get("PYTHONPATH")])))
    child = subprocess.Popen(
        [sys.executable, __file__, "--child", "--scale", str(scale),
         "--db", str(crash_db)], env=env)
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if child.poll() is not None:
                # Finished before we struck — the complete manifest
                # makes the reopen checks below trivially pass, so
                # treat it as a setup problem instead.
                print("load-kill-smoke: FAIL — child finished before "
                      "the kill; raise --scale")
                return 1
            committed = _committed_rows(crash_db)
            if 0 < committed < total_rows:
                print(f"load-kill-smoke: {committed}/{total_rows} rows "
                      f"committed, sending SIGKILL", flush=True)
                child.send_signal(signal.SIGKILL)
                child.wait(timeout=30)
                break
            time.sleep(0.05)
        else:
            print("load-kill-smoke: FAIL — no committed batch within 120s")
            return 1
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    print("load-kill-smoke: reopening the killed database ...", flush=True)
    with SQLiteBackend(str(crash_db)) as backend:
        manifest = backend.load_manifest()
        if manifest is None:
            print("load-kill-smoke: FAIL — no manifest after the kill")
            return 1
        if manifest.complete:
            print("load-kill-smoke: FAIL — manifest claims completion")
            return 1
        if manifest.mode != "fresh":
            print("load-kill-smoke: FAIL — unexpected manifest mode "
                  f"{manifest.mode!r}")
            return 1
        committed = sum(manifest.watermarks.values())
        print(f"load-kill-smoke: incomplete fresh load detected "
              f"({committed}/{total_rows} rows), resuming ...", flush=True)
        backend.load(schema, docs, batch_size=BATCH_ROWS,
                     txn_rows=BATCH_ROWS, resume=True)
        if backend.row_counts != clean_counts:
            print("load-kill-smoke: FAIL — resumed row counts differ")
            print(f"  baseline: {clean_counts}")
            print(f"  resumed:  {backend.row_counts}")
            return 1

    if _table_digests(crash_db, schema) != _table_digests(clean_db, schema):
        print("load-kill-smoke: FAIL — resumed tables differ from the "
              "clean load")
        return 1
    print(f"load-kill-smoke: PASS — resumed load identical "
          f"({total_rows} rows across {len(clean_counts)} tables)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=400)
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--db", default=None)
    args = parser.parse_args()
    if args.child:
        return _child(args.scale, args.db)
    import tempfile
    with tempfile.TemporaryDirectory(prefix="load-kill-smoke-") as tmp:
        return _parent(args.scale, tmp)


if __name__ == "__main__":
    sys.exit(main())
