"""Fig. 5 — running time of the search algorithms, normalized to
Two-Step.

Paper shapes asserted: Greedy's running time is comparable to Two-Step
(within a small factor), while Naive-Greedy is one to two orders of
magnitude slower than Greedy.
"""

import statistics

from conftest import build_comparison


def _check_shapes(comparison, naive_factor):
    greedy = comparison.by_algorithm("greedy")
    naive = comparison.by_algorithm("naive-greedy")
    twostep = comparison.by_algorithm("two-step")
    ratios = [greedy[name].wall_time / max(twostep[name].wall_time, 1e-9)
              for name in greedy if name in twostep]
    assert statistics.median(ratios) < 25, \
        "Greedy must stay within a modest factor of Two-Step"
    naive_ratios = [run.wall_time / max(greedy[name].wall_time, 1e-9)
                    for name, run in naive.items() if name in greedy]
    if naive_ratios:
        # The paper reports ~2 orders of magnitude on DBLP; our advisor
        # caches what-if calls aggressively (which speeds Naive up too),
        # so the asserted gap is the conservative floor.
        assert statistics.median(naive_ratios) > naive_factor, \
            f"Naive-Greedy should be far slower than Greedy " \
            f"(ratios: {naive_ratios})"


def test_fig5_dblp(benchmark, dblp_bundle, comparison_cache, emit):
    comparison = benchmark.pedantic(
        lambda: build_comparison(dblp_bundle, comparison_cache, emit=emit),
        rounds=1, iterations=1)
    emit(comparison.fig5())
    _check_shapes(comparison, naive_factor=10)


def test_fig5_movie(benchmark, movie_bundle, comparison_cache, emit):
    comparison = benchmark.pedantic(
        lambda: build_comparison(movie_bundle, comparison_cache, emit=emit),
        rounds=1, iterations=1)
    emit(comparison.fig5())
    # The paper reports a lower Naive/Greedy gap on Movie (smaller schema).
    _check_shapes(comparison, naive_factor=3)
