"""Property-based tests: serialize/parse round-trips for random trees."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit import Element, parse, serialize

_tag_names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
# Text without raw control chars; parser/writer must round-trip the rest.
_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
    max_size=40,
)
_attr_values = _text


@st.composite
def elements(draw, depth=3):
    tag = draw(_tag_names)
    attrs = draw(st.dictionaries(_tag_names, _attr_values, max_size=3))
    el = Element(tag, attrs)
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                el.add_text(draw(_text))
            el.append(draw(elements(depth=depth - 1)))
    el.add_text(draw(_text))
    return el


@given(elements())
@settings(max_examples=150, deadline=None)
def test_serialize_parse_roundtrip(el):
    text = serialize(el)
    reparsed = parse(text).root

    def same(a, b):
        assert a.tag == b.tag
        assert a.attributes == b.attributes
        assert a.string_value() == b.string_value()
        assert len(a.children) == len(b.children)
        for ca, cb in zip(a.children, b.children):
            same(ca, cb)

    same(el, reparsed)


@given(elements())
@settings(max_examples=50, deadline=None)
def test_double_roundtrip_is_stable(el):
    once = serialize(parse(serialize(el)).root)
    twice = serialize(parse(once).root)
    assert once == twice
