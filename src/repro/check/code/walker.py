"""Source-tree loading for the code lints.

The code passes (:mod:`det`, :mod:`conc`, :mod:`res`) all walk stdlib
``ast`` trees of the repro source itself. This module owns the shared
plumbing: discovering ``.py`` files under a lint root in a
deterministic (sorted) order, parsing each into a :class:`SourceModule`
that carries a parent map (stdlib ``ast`` nodes do not know their
parents), and honoring inline suppression pragmas.

Suppression pragma
------------------

A finding can be silenced at its site with a comment, either on the
offending line or on the line directly above it::

    risky_call()  # lint: allow(DET002) - wall clock is the payload here

Passes never read the pragma themselves; :func:`SourceModule.suppressed`
is applied once by :func:`repro.check.code.lint_source_tree`, so every
suppression is counted and reported instead of vanishing.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = ["SourceModule", "load_module", "load_source_tree",
           "iter_source_files", "parent_map"]

_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*([A-Z]{3,4}\d{3}(?:\s*,\s*[A-Z]{3,4}\d{3})*)\s*\)")


def parent_map(tree: ast.AST) -> dict[ast.AST, ast.AST]:
    """Child node -> parent node, for upward navigation."""
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _suppressions(source: str) -> dict[int, set[str]]:
    """Line number -> codes allowed on that line (pragma comments)."""
    out: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            codes = {c.strip() for c in match.group(1).split(",")}
            out.setdefault(lineno, set()).update(codes)
    return out


@dataclass
class SourceModule:
    """One parsed source file plus the lint bookkeeping around it."""

    path: Path                    # absolute file path
    rel: str                      # posix path relative to the lint root
    name: str                     # dotted module name under the root
    tree: ast.Module
    parents: dict[ast.AST, ast.AST] = field(repr=False)
    suppressions: dict[int, set[str]] = field(repr=False)

    def location(self, node: ast.AST) -> str:
        lineno = getattr(node, "lineno", 0)
        return f"{self.rel}:{lineno}"

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def suppressed(self, node: ast.AST, code: str) -> bool:
        """Is ``code`` pragma-allowed on this node's line (or above it)?"""
        lineno = getattr(node, "lineno", None)
        if lineno is None:
            return False
        for candidate in (lineno, lineno - 1):
            if code in self.suppressions.get(candidate, set()):
                return True
        return False


def iter_source_files(root: Path) -> list[Path]:
    """Every ``.py`` file under ``root``, sorted (deterministic)."""
    if root.is_file():
        return [root]
    return [p for p in sorted(root.rglob("*.py"))
            if "__pycache__" not in p.parts]


def load_module(path: Path, root: Path) -> SourceModule:
    """Parse one file; raises :class:`SyntaxError` on unparsable input."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    if path == root:
        rel = path.name
    else:
        rel = path.relative_to(root).as_posix()
    name = rel[:-3].replace("/", ".").removesuffix(".__init__")
    return SourceModule(path=path, rel=rel, name=name, tree=tree,
                        parents=parent_map(tree),
                        suppressions=_suppressions(source))


def load_source_tree(root: str | Path) -> list[SourceModule]:
    """Parse every source file under ``root``, in sorted path order."""
    root = Path(root).resolve()
    return [load_module(path, root) for path in iter_source_files(root)]
