"""Unit + property tests for the B+-tree."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BPlusTree, encode_key


class TestBasics:
    def test_empty_tree(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert tree.search(("x",)) == []
        assert list(tree.scan_all()) == []

    def test_insert_and_search(self):
        tree = BPlusTree(order=4)
        for i in range(100):
            tree.insert((i,), f"v{i}")
        assert tree.search((42,)) == ["v42"]
        assert tree.search((1000,)) == []
        assert len(tree) == 100

    def test_duplicates(self):
        tree = BPlusTree(order=4)
        for i in range(50):
            tree.insert(("dup",), i)
        assert sorted(tree.search(("dup",))) == list(range(50))

    def test_bulk_load_matches_inserts(self):
        data = [((i % 17,), i) for i in range(200)]
        bulk = BPlusTree.bulk_load(data)
        incremental = BPlusTree(order=8)
        for key, value in data:
            incremental.insert(key, value)
        for key in range(17):
            assert sorted(bulk.search((key,))) == \
                sorted(incremental.search((key,)))

    def test_bulk_load_duplicates_across_leaves(self):
        # Regression: duplicate keys spanning several leaves must all be
        # found from the leftmost occurrence.
        entries = [(("A",), i) for i in range(500)]
        entries += [(("B",), i) for i in range(10)]
        tree = BPlusTree.bulk_load(entries)
        assert len(tree.search(("A",))) == 500
        assert len(tree.search(("B",))) == 10

    def test_range_scan_bounds(self):
        tree = BPlusTree.bulk_load([((i,), i) for i in range(100)])
        got = [p for _, p in tree.range_scan((10,), (20,))]
        assert got == list(range(10, 21))
        got = [p for _, p in tree.range_scan((10,), (20,),
                                             lo_inclusive=False,
                                             hi_inclusive=False)]
        assert got == list(range(11, 20))

    def test_range_scan_open_bounds(self):
        tree = BPlusTree.bulk_load([((i,), i) for i in range(50)])
        assert [p for _, p in tree.range_scan(None, (5,))] == list(range(6))
        assert [p for _, p in tree.range_scan((45,), None)] == list(range(45, 50))

    def test_prefix_range_on_composite_key(self):
        entries = [((c, i), (c, i)) for c in "abc" for i in range(10)]
        tree = BPlusTree.bulk_load(entries)
        got = [p for _, p in tree.range_scan(("b",), ("b",))]
        assert got == [("b", i) for i in range(10)]

    def test_none_sorts_first(self):
        tree = BPlusTree.bulk_load([((None,), "null"), ((1,), "one"),
                                    (("z",), "str")])
        scan = [p for _, p in tree.scan_all()]
        assert scan == ["null", "one", "str"]

    def test_mixed_type_keys(self):
        tree = BPlusTree.bulk_load([((1,), "int"), (("1",), "str")])
        assert tree.search((1,)) == ["int"]
        assert tree.search(("1",)) == ["str"]

    def test_order_too_small_rejected(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_scan_all_is_sorted(self):
        values = random.Random(7).sample(range(10000), 1000)
        tree = BPlusTree(order=8)
        for v in values:
            tree.insert((v,), v)
        scanned = [p for _, p in tree.scan_all()]
        assert scanned == sorted(values)


class TestEncodeKey:
    def test_total_order_none_first(self):
        assert encode_key((None,)) < encode_key((0,)) < encode_key(("a",))

    def test_numeric_before_string(self):
        assert encode_key((999999,)) < encode_key(("0",))

    def test_bool_as_int(self):
        assert encode_key((True,)) == encode_key((1,))


@given(st.lists(st.tuples(st.integers(-50, 50), st.integers(0, 10**6))))
@settings(max_examples=100, deadline=None)
def test_property_insert_then_search(pairs):
    tree = BPlusTree(order=5)
    for key, value in pairs:
        tree.insert((key,), value)
    by_key: dict[int, list[int]] = {}
    for key, value in pairs:
        by_key.setdefault(key, []).append(value)
    for key, values in by_key.items():
        assert sorted(tree.search((key,))) == sorted(values)
    assert len(tree) == len(pairs)


@given(st.lists(st.integers(-100, 100), min_size=1),
       st.integers(-100, 100), st.integers(-100, 100))
@settings(max_examples=100, deadline=None)
def test_property_range_scan_equals_filter(values, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = BPlusTree.bulk_load([((v,), v) for v in values])
    got = sorted(p for _, p in tree.range_scan((lo,), (hi,)))
    expected = sorted(v for v in values if lo <= v <= hi)
    assert got == expected
