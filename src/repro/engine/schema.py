"""Catalog objects: columns, tables, foreign keys, materialized views.

A :class:`Table` can exist in two modes:

* *stats-only* — metadata plus statistics, enough for the optimizer and
  the physical design advisor to cost queries (what-if mode). This is how
  the design search evaluates thousands of candidate mappings without
  loading data.
* *materialized* — metadata plus actual rows, used for the final
  evaluation runs.

Materialized views are tables carrying a :class:`JoinViewDefinition`; the
optimizer may substitute them into matching plans, and the index
machinery treats them exactly like base tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import CatalogError
from .types import PAGE_FILL_FACTOR, PAGE_SIZE, ROW_OVERHEAD, SQLType


@dataclass
class Column:
    """One table column."""

    name: str
    sql_type: SQLType
    nullable: bool = True
    avg_width: int | None = None  # override of the type's default width

    @property
    def width(self) -> int:
        return self.avg_width if self.avg_width is not None else self.sql_type.default_width

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Column {self.name} {self.sql_type.value}>"


@dataclass(frozen=True)
class ForeignKey:
    """``child.column`` references ``parent.column``."""

    column: str
    parent_table: str
    parent_column: str = "ID"


@dataclass(frozen=True)
class JoinViewDefinition:
    """Definition of a two-table join materialized view.

    The view materializes::

        SELECT <columns> FROM parent P, child C WHERE C.<fk> = P.ID

    ``columns`` maps view column name -> (source table, source column).
    """

    parent_table: str
    child_table: str
    child_fk_column: str
    columns: tuple[tuple[str, tuple[str, str]], ...]

    @property
    def column_map(self) -> dict[str, tuple[str, str]]:
        return dict(self.columns)


class Table:
    """A base table or materialized view."""

    def __init__(self, name: str, columns: list[Column],
                 primary_key: str | None = "ID",
                 foreign_keys: list[ForeignKey] | None = None,
                 view_def: JoinViewDefinition | None = None):
        if len({c.name for c in columns}) != len(columns):
            raise CatalogError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self.primary_key = primary_key
        self.foreign_keys = list(foreign_keys or [])
        self.view_def = view_def
        self.rows: list[tuple] | None = None  # None => stats-only
        self._column_index = {c.name: i for i, c in enumerate(columns)}
        self.row_count_estimate: int = 0

    # ------------------------------------------------------------------
    @property
    def is_view(self) -> bool:
        return self.view_def is not None

    @property
    def is_materialized(self) -> bool:
        return self.rows is not None

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._column_index[name]]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._column_index

    def column_position(self, name: str) -> int:
        if name not in self._column_index:
            raise CatalogError(f"table {self.name!r} has no column {name!r}")
        return self._column_index[name]

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def set_rows(self, rows: list[tuple]) -> None:
        width = len(self.columns)
        for row in rows:
            if len(row) != width:
                raise CatalogError(
                    f"row width {len(row)} != {width} columns in {self.name!r}")
        self.rows = rows
        self.row_count_estimate = len(rows)

    def insert(self, row: tuple) -> None:
        if self.rows is None:
            self.rows = []
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row width {len(row)} != {len(self.columns)} columns "
                f"in {self.name!r}")
        self.rows.append(row)
        self.row_count_estimate = len(self.rows)

    @property
    def row_count(self) -> int:
        if self.rows is not None:
            return len(self.rows)
        return self.row_count_estimate

    # ------------------------------------------------------------------
    # Page model
    # ------------------------------------------------------------------
    @property
    def row_width(self) -> int:
        return ROW_OVERHEAD + sum(c.width for c in self.columns)

    @property
    def page_count(self) -> int:
        usable = PAGE_SIZE * PAGE_FILL_FACTOR
        rows_per_page = max(1, int(usable // self.row_width))
        return max(1, math.ceil(self.row_count / rows_per_page))

    @property
    def size_bytes(self) -> int:
        return self.page_count * PAGE_SIZE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "view" if self.is_view else "table"
        return f"<{kind} {self.name} cols={len(self.columns)} rows={self.row_count}>"


class Catalog:
    """Named collection of tables, views, and indexes."""

    def __init__(self):
        self.tables: dict[str, Table] = {}
        self.indexes: dict[str, "Index"] = {}  # noqa: F821 - see index.py

    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self.tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        self.tables.pop(name, None)
        for index_name in [n for n, ix in self.indexes.items()
                           if ix.table_name == name]:
            del self.indexes[index_name]

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def add_index(self, index: "Index") -> "Index":  # noqa: F821
        if index.name in self.indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self.table(index.table_name)  # must exist
        self.indexes[index.name] = index
        return index

    def drop_index(self, name: str) -> None:
        if name not in self.indexes:
            raise CatalogError(f"unknown index {name!r}")
        del self.indexes[name]

    def indexes_on(self, table_name: str) -> list["Index"]:  # noqa: F821
        return [ix for ix in self.indexes.values() if ix.table_name == table_name]

    def base_tables(self) -> list[Table]:
        return [t for t in self.tables.values() if not t.is_view]

    def views(self) -> list[Table]:
        return [t for t in self.tables.values() if t.is_view]

    def total_data_bytes(self) -> int:
        """Size of base tables only (views/indexes count as design)."""
        return sum(t.size_bytes for t in self.base_tables())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Catalog tables={len(self.tables)} "
                f"indexes={len(self.indexes)}>")
