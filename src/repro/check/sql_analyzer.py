"""Static semantic analysis of :class:`repro.sqlast.Query` ASTs.

Checks one query against a :class:`repro.engine.Catalog` (plus optional
hypothetical tables):

* every ``FROM`` table exists and aliases are unique (SQL001/SQL002),
* every ``ColumnRef`` resolves to exactly one alias/table/column
  (SQL003/SQL004),
* comparison operands are type-compatible (SQL005) — mindful that the
  XPath translator emits *string* literals against numeric columns
  (``year >= '1995'``) and the engine coerces them, so only genuinely
  impossible combinations (a non-numeric string against a numeric
  column) are errors; comparisons against NULL literals warn (SQL009),
* UNION ALL branches agree in arity and column-type families (SQL006),
* ORDER BY positions are within the output width (SQL007),
* EXISTS subqueries are shaped and correlated the way the optimizer
  requires: one inner table, one outer correlation alias, at least one
  correlation equality (SQL008).
"""

from __future__ import annotations

from ..engine import SQLType, Table
from ..engine.schema import Catalog
from ..sqlast import (And, BoolExpr, ColumnRef, Comparison, ComparisonOp,
                      Exists, IsNull, Literal, Or, Query, Select)
from .findings import Findings

_NUMERIC = {SQLType.INTEGER, SQLType.DECIMAL, SQLType.BOOLEAN}
_TEXT = {SQLType.VARCHAR, SQLType.DATE}

#: Type family descriptors: "numeric" | "text" | "any" (NULL / numeric
#: strings, compatible with everything).
_FAMILY_OF_TYPE = {**{t: "numeric" for t in _NUMERIC},
                   **{t: "text" for t in _TEXT}}


def _is_numeric_string(value: str) -> bool:
    try:
        float(value)
        return True
    except ValueError:
        return False


def _literal_family(literal: Literal) -> str:
    value = literal.value
    if value is None:
        return "any"
    if isinstance(value, bool):
        return "numeric"
    if isinstance(value, (int, float)):
        return "numeric"
    # Strings that parse as numbers are what the XPath translator emits
    # against numeric columns; the engine coerces them, so they are
    # compatible with both families.
    if _is_numeric_string(value):
        return "any"
    return "text"


class _Scope:
    """Alias -> Table bindings for one SELECT (plus an outer scope)."""

    def __init__(self, alias_tables: dict[str, Table],
                 outer: "_Scope | None" = None):
        self.alias_tables = alias_tables
        self.outer = outer

    def table_of(self, alias: str) -> Table | None:
        if alias in self.alias_tables:
            return self.alias_tables[alias]
        if self.outer is not None:
            return self.outer.table_of(alias)
        return None

    def owners_of(self, column: str) -> list[str]:
        """Local aliases whose table has the column (no outer search —
        unqualified references never escape their own SELECT)."""
        return [alias for alias, table in self.alias_tables.items()
                if table.has_column(column)]


class _QueryAnalyzer:
    def __init__(self, catalog: Catalog,
                 extra_tables: dict[str, Table] | None = None):
        self.catalog = catalog
        self.extra_tables = extra_tables or {}
        self.findings = Findings()

    # ------------------------------------------------------------------
    def _lookup_table(self, name: str) -> Table | None:
        if name in self.catalog.tables:
            return self.catalog.tables[name]
        return self.extra_tables.get(name)

    def run(self, query: Query) -> Findings:
        branch_types: list[list[str]] = []
        for i, select in enumerate(query.selects):
            scope = self._check_from(select, f"select[{i}]")
            self._check_bool(select.where, scope, f"select[{i}].where")
            types: list[str] = []
            for j, item in enumerate(select.items):
                types.append(self._scalar_family(
                    item.expr, scope, f"select[{i}].item[{j}]"))
            branch_types.append(types)
        self._check_union(query, branch_types)
        self._check_order_by(query)
        return self.findings

    # ------------------------------------------------------------------
    def _check_from(self, select: Select, where: str) -> _Scope:
        alias_tables: dict[str, Table] = {}
        for ref in select.from_tables:
            table = self._lookup_table(ref.table)
            if table is None:
                self.findings.add(
                    "SQL001", f"unknown table {ref.table!r}", where)
                continue
            if ref.name in alias_tables:
                self.findings.add(
                    "SQL002", f"alias {ref.name!r} appears more than once "
                              f"in one FROM list", where)
                continue
            alias_tables[ref.name] = table
        return _Scope(alias_tables)

    # ------------------------------------------------------------------
    # Column resolution
    # ------------------------------------------------------------------
    def _resolve(self, ref: ColumnRef, scope: _Scope,
                 where: str) -> SQLType | None:
        """Resolve a column ref to its SQL type; report on failure."""
        if ref.table:
            table = scope.table_of(ref.table)
            if table is None:
                self.findings.add(
                    "SQL003", f"column {ref} references unknown alias "
                              f"{ref.table!r}", where)
                return None
            if not table.has_column(ref.column):
                self.findings.add(
                    "SQL003", f"table {table.name!r} (alias {ref.table!r}) "
                              f"has no column {ref.column!r}", where)
                return None
            return table.column(ref.column).sql_type
        owners = scope.owners_of(ref.column)
        if not owners:
            self.findings.add(
                "SQL003", f"unqualified column {ref.column!r} matches no "
                          f"table in scope", where)
            return None
        if len(owners) > 1:
            self.findings.add(
                "SQL004", f"unqualified column {ref.column!r} is ambiguous "
                          f"(candidate aliases: {sorted(owners)})", where)
            return None
        table = scope.alias_tables[owners[0]]
        return table.column(ref.column).sql_type

    def _scalar_family(self, expr, scope: _Scope, where: str) -> str:
        if isinstance(expr, Literal):
            return _literal_family(expr)
        sql_type = self._resolve(expr, scope, where)
        if sql_type is None:
            return "any"
        return _FAMILY_OF_TYPE[sql_type]

    # ------------------------------------------------------------------
    # Boolean expressions
    # ------------------------------------------------------------------
    def _check_bool(self, expr: BoolExpr | None, scope: _Scope,
                    where: str) -> None:
        if expr is None:
            return
        if isinstance(expr, (And, Or)):
            for item in expr.items:
                self._check_bool(item, scope, where)
        elif isinstance(expr, Comparison):
            self._check_comparison(expr, scope, where)
        elif isinstance(expr, IsNull):
            self._resolve(expr.operand, scope, where)
        elif isinstance(expr, Exists):
            self._check_exists(expr, scope, where)

    def _check_comparison(self, expr: Comparison, scope: _Scope,
                          where: str) -> None:
        left = self._comparand(expr.left, scope, where)
        right = self._comparand(expr.right, scope, where)
        for operand in (expr.left, expr.right):
            if isinstance(operand, Literal) and operand.value is None:
                self.findings.add(
                    "SQL009", f"comparison {expr} against NULL is always "
                              f"false; use IS NULL", where)
                return
        if left is None or right is None:
            return  # resolution already failed; reported as SQL003/004
        if "any" in (left, right):
            return
        if left != right:
            self.findings.add(
                "SQL005", f"comparison {expr} mixes a {left} operand with "
                          f"a {right} operand", where)

    def _comparand(self, operand, scope: _Scope, where: str) -> str | None:
        """Family of a comparison operand; None when unresolvable."""
        if isinstance(operand, Literal):
            return _literal_family(operand)
        sql_type = self._resolve(operand, scope, where)
        if sql_type is None:
            return None
        return _FAMILY_OF_TYPE[sql_type]

    # ------------------------------------------------------------------
    # EXISTS
    # ------------------------------------------------------------------
    def _check_exists(self, exists: Exists, outer: _Scope,
                      where: str) -> None:
        sub = exists.subquery
        if len(sub.from_tables) != 1:
            self.findings.add(
                "SQL008", f"EXISTS subquery must reference exactly one "
                          f"table, found {len(sub.from_tables)}", where)
            return
        inner_scope = _Scope(
            self._check_from(sub, where + ".exists").alias_tables,
            outer=outer)
        inner_aliases = set(inner_scope.alias_tables)
        correlations = 0
        outer_aliases: set[str] = set()
        for conjunct in _conjuncts(sub.where):
            if isinstance(conjunct, Comparison) and \
                    conjunct.op == ComparisonOp.EQ and \
                    isinstance(conjunct.left, ColumnRef) and \
                    isinstance(conjunct.right, ColumnRef):
                sides = {self._side_of(ref, inner_aliases, outer)
                         for ref in (conjunct.left, conjunct.right)}
                if sides == {"inner", "outer"}:
                    correlations += 1
                    for ref in (conjunct.left, conjunct.right):
                        if self._side_of(ref, inner_aliases,
                                         outer) == "outer":
                            outer_aliases.add(ref.table)
            self._check_bool(conjunct, inner_scope, where + ".exists")
        if correlations == 0:
            self.findings.add(
                "SQL008", "EXISTS subquery has no correlation equality "
                          "with the outer query", where)
        elif len(outer_aliases) > 1:
            self.findings.add(
                "SQL008", f"EXISTS subquery correlates with more than one "
                          f"outer alias: {sorted(outer_aliases)}", where)

    @staticmethod
    def _side_of(ref: ColumnRef, inner_aliases: set[str],
                 outer: _Scope) -> str:
        if ref.table in inner_aliases:
            return "inner"
        if ref.table and outer.table_of(ref.table) is not None:
            return "outer"
        return "inner"  # unqualified refs default to the inner table

    # ------------------------------------------------------------------
    # Query-level checks
    # ------------------------------------------------------------------
    def _check_union(self, query: Query,
                     branch_types: list[list[str]]) -> None:
        widths = {len(types) for types in branch_types}
        if len(widths) > 1:
            self.findings.add(
                "SQL006", f"UNION ALL branches have diverging widths "
                          f"{sorted(widths)}", "query")
            return
        if len(branch_types) < 2:
            return
        for position in range(len(branch_types[0])):
            families = {types[position] for types in branch_types}
            families.discard("any")
            if len(families) > 1:
                self.findings.add(
                    "SQL006", f"UNION ALL output position {position + 1} "
                              f"mixes {sorted(families)} branches",
                    f"item[{position}]")

    def _check_order_by(self, query: Query) -> None:
        width = query.width
        for k, position in enumerate(query.order_by):
            if not 1 <= position <= width:
                self.findings.add(
                    "SQL007", f"ORDER BY position {position} is outside "
                              f"1..{width}", f"order_by[{k}]")


def _conjuncts(expr: BoolExpr | None) -> list[BoolExpr]:
    if expr is None:
        return []
    if isinstance(expr, And):
        out: list[BoolExpr] = []
        for item in expr.items:
            out.extend(_conjuncts(item))
        return out
    return [expr]


def analyze_query(query: Query, catalog: Catalog,
                  extra_tables: dict[str, Table] | None = None) -> Findings:
    """Run the SQL semantic analyzer; returns the findings."""
    return _QueryAnalyzer(catalog, extra_tables).run(query)
