"""Synthetic DBLP data set (paper Fig. 1a).

The real DBLP XML file is not redistributable here, so this generator
produces data with the distributional properties the paper exploits:

* ``inproceedings`` records with title, booktitle, year, authors, pages,
  optional ``ee``/``cdrom``/``editor`` and repeated ``cite``;
* ``book`` records whose ``title`` is a *shared type* with the
  inproceedings title (the book title carries the ``title1`` annotation,
  exactly as in the paper's Fig. 1a);
* ``author`` as a shared annotation between books and inproceedings;
* skewed author cardinality: ~99% of publications have at most five
  authors, with a maximum of 20 (Section 4.6 uses exactly this skew to
  pick the repetition-split count k = 5);
* booktitle values with a skewed conference distribution so that
  equality selections span the paper's selectivity ranges.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..xmlkit import Document, Element, LazyElement
from ..xsd import BaseType, SchemaTree, TreeBuilder

# ~50 venues with a mildly skewed distribution: equality selections on
# booktitle land in the paper's "low selectivity" band (~0.01-0.1).
CONFERENCES = [
    "VLDB", "ICDE", "KDD", "WWW", "CIKM", "EDBT", "ICDT", "PODS",
    "SIGIR", "SODA", "STOC", "FOCS", "NIPS", "ICML", "AAAI", "IJCAI",
    "ACL", "OSDI", "SOSP", "SIGMOD CONFERENCE", "USENIX", "EUROSYS",
    "MIDDLEWARE", "ICDM", "PAKDD", "PKDD", "DASFAA", "DEXA", "SSDBM",
    "WEBDB", "XSYM", "WISE", "ER", "CAISE", "ICSE", "FSE", "PLDI",
    "POPL", "OOPSLA", "CAV", "LICS", "CONCUR", "ISCA", "MICRO", "HPCA",
    "SC", "PPOPP", "SPAA", "PODC", "DISC",
]

PUBLISHERS = ["Springer", "ACM Press", "Morgan Kaufmann", "IEEE CS",
              "Addison-Wesley", "MIT Press", "Prentice Hall"]

_WORDS = [
    "efficient", "scalable", "adaptive", "parallel", "distributed",
    "incremental", "robust", "optimal", "approximate", "secure",
    "query", "index", "join", "storage", "stream", "cache", "graph",
    "transaction", "schema", "workload", "view", "partition",
    "processing", "optimization", "evaluation", "management", "mining",
    "integration", "compression", "replication",
]


def dblp_schema() -> SchemaTree:
    """The DBLP schema tree of Fig. 1a."""
    b = TreeBuilder("dblp")
    dblp = b.tag("dblp", annotation="dblp")

    inproc_rep = b.rep(dblp)
    inproc = b.tag("inproceedings", inproc_rep, annotation="inproc")
    b.leaf("title", inproc)
    b.leaf("booktitle", inproc)
    b.leaf("year", inproc, BaseType.INTEGER)
    b.repeated_leaf("author", inproc, annotation="author")
    b.leaf("pages", inproc)
    b.optional_leaf("ee", inproc)
    b.optional_leaf("cdrom", inproc)
    b.repeated_leaf("cite", inproc, annotation="cite")
    b.optional_leaf("editor", inproc)

    book_rep = b.rep(dblp)
    book = b.tag("book", book_rep, annotation="book")
    b.leaf("title", book, annotation="title1")
    b.leaf("year", book, BaseType.INTEGER)
    b.leaf("publisher", book)
    b.optional_leaf("isbn", book)
    b.repeated_leaf("author", book, annotation="author")
    b.leaf("pages", book)
    return b.build(dblp)


def author_count(rng: random.Random, max_authors: int = 20) -> int:
    """Skewed author cardinality: 99% have <= 5, tail up to the max."""
    roll = rng.random()
    if roll < 0.30:
        return 1
    if roll < 0.60:
        return 2
    if roll < 0.82:
        return 3
    if roll < 0.94:
        return 4
    if roll < 0.99:
        return 5
    return rng.randint(6, max_authors)


def _title(rng: random.Random, serial: int) -> str:
    words = rng.sample(_WORDS, 3)
    return f"{words[0].capitalize()} {words[1]} {words[2]} {serial}"


def _conference(rng: random.Random) -> str:
    # Mild Zipf skew: the most common venue holds ~5-6% of publications,
    # the tail ~1% (SIGMOD CONFERENCE sits around 2%).
    weights = [1.0 / (rank + 10) for rank in range(len(CONFERENCES))]
    return rng.choices(CONFERENCES, weights=weights, k=1)[0]


_FIRST_NAMES = ["Alice", "Bogdan", "Chandra", "Dmitri", "Elena", "Farid",
                "Giulia", "Hannah", "Ichiro", "Jennifer", "Katerina",
                "Leonard", "Margaret", "Nikolai", "Oliver", "Priyanka"]
_LAST_NAMES = ["Abiteboul", "Bernstein", "Chaudhuri", "DeWitt", "Eswaran",
               "Florescu", "Gray", "Haritsa", "Ioannidis", "Jagadish",
               "Kossmann", "Lindsay", "Mohan", "Naughton", "Ozsu",
               "Papadimitriou", "Quass", "Ramakrishnan", "Stonebraker",
               "Tufte", "Ullman", "Valduriez", "Widom", "Yannakakis"]


def _author_pool(rng: random.Random, size: int) -> list[str]:
    """Realistic 'First Last NNN' author names (~20 characters)."""
    return [f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)} {i}"
            for i in range(size)]


def iter_dblp_publications(n_publications: int = 2000, seed: int = 7,
                           book_fraction: float = 0.12) -> Iterator[Element]:
    """Yield DBLP publication elements one at a time.

    This is the streaming core shared by the eager and lazy document
    forms: the RNG is created inside the generator, so every fresh
    iterator over the same ``(n_publications, seed, book_fraction)``
    produces an identical element sequence, and only one publication
    subtree is alive at a time.
    """
    rng = random.Random(seed)
    n_books = int(n_publications * book_fraction)
    n_inproc = n_publications - n_books
    author_pool = _author_pool(rng, max(200, n_publications // 3))
    for i in range(n_inproc):
        pub = Element("inproceedings")
        pub.make_child("title", _title(rng, i))
        pub.make_child("booktitle", _conference(rng))
        pub.make_child("year", str(rng.randint(1970, 2004)))
        for _ in range(author_count(rng)):
            pub.make_child("author", rng.choice(author_pool))
        first = rng.randint(1, 500)
        pub.make_child("pages", f"{first}-{first + rng.randint(2, 25)}")
        if rng.random() < 0.45:
            pub.make_child("ee", f"db/conf/x/{i}.html")
        if rng.random() < 0.20:
            pub.make_child("cdrom", f"CD/{i}")
        if rng.random() < 0.25:
            for _ in range(rng.randint(1, 5)):
                pub.make_child("cite", f"ref{rng.randrange(n_publications)}")
        if rng.random() < 0.10:
            pub.make_child("editor", f"Editor {rng.randrange(50)}")
        yield pub
    for i in range(n_books):
        book = Element("book")
        book.make_child("title", _title(rng, n_inproc + i))
        book.make_child("year", str(rng.randint(1970, 2004)))
        book.make_child("publisher", rng.choice(PUBLISHERS))
        if rng.random() < 0.7:
            book.make_child("isbn", f"0-{rng.randint(10000, 99999)}-{i:04d}")
        for _ in range(author_count(rng, max_authors=8)):
            book.make_child("author", rng.choice(author_pool))
        book.make_child("pages", str(rng.randint(80, 900)))
        yield book


def generate_dblp(n_publications: int = 2000, seed: int = 7,
                  book_fraction: float = 0.12,
                  stream: bool = False) -> Document:
    """Generate a synthetic DBLP document.

    ``n_publications`` counts inproceedings + books together.
    ``stream=True`` returns a document whose root generates its
    publications lazily (a re-iterable :class:`~repro.xmlkit.LazyElement`)
    instead of materializing one giant element tree — the form the
    streaming shred path consumes at 10^5-10^7 publications. Both forms
    contain element-for-element identical content.
    """
    if stream:
        return Document(LazyElement(
            "dblp",
            lambda: iter_dblp_publications(n_publications, seed,
                                           book_fraction)))
    root = Element("dblp")
    for pub in iter_dblp_publications(n_publications, seed, book_fraction):
        root.append(pub)
    return Document(root)
