"""Static analysis over the repro *source code* itself.

PR 2's ``repro.check`` lints the artifacts the system produces (SQL,
mappings, plans); this package points the same Findings engine at the
code that produces them. Three pass families, three code families:

* :mod:`det` — **DET0xx** determinism (unseeded RNG, wall clock,
  unordered set/directory iteration),
* :mod:`conc` — **CONC0xx** concurrency (unlocked shared writes on
  thread-pool paths, cross-thread sqlite3 connections, lock-order
  cycles),
* :mod:`res` — **RES0xx** resources (swallowed broad excepts,
  unclosed handles).

:func:`lint_source_tree` is the driver: it loads every module under a
root (the installed ``repro`` package by default), runs all passes,
honors inline ``# lint: allow(CODE)`` pragmas, deduplicates, sorts,
and applies the committed baseline (:mod:`baseline`). The ``repro
check --code`` CLI and the CI ``code-lint`` gate are thin wrappers
around it. See docs/static-analysis.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..findings import Findings
from .baseline import (Baseline, BaselineEntry, finding_key, load_baseline,
                       write_baseline)
from .callgraph import LockOrderGraph, ModuleCallGraph
from .conc import build_lock_order, check_concurrency, check_lock_order
from .det import check_determinism
from .res import check_resources
from .walker import SourceModule, load_module, load_source_tree

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CodeReport",
    "LockOrderGraph",
    "ModuleCallGraph",
    "SourceModule",
    "build_lock_order",
    "check_concurrency",
    "check_determinism",
    "check_lock_order",
    "check_resources",
    "default_source_root",
    "finding_key",
    "lint_source_tree",
    "load_baseline",
    "load_module",
    "load_source_tree",
    "write_baseline",
]


def default_source_root() -> Path:
    """The installed ``repro`` package — the tree that lints itself."""
    return Path(__file__).resolve().parents[2]


@dataclass
class CodeReport:
    """Outcome of one source-tree lint."""

    findings: Findings = field(default_factory=Findings)
    grandfathered: Findings = field(default_factory=Findings)
    modules_checked: int = 0
    inline_suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings.errors

    def summary(self) -> str:
        errors = len(self.findings.errors)
        warnings = len(self.findings.warnings)
        status = "OK" if self.ok else "FAILED"
        line = (f"{status}: {self.modules_checked} module(s) linted, "
                f"{errors} error(s), {warnings} warning(s)")
        extras = []
        if len(self.grandfathered):
            extras.append(f"{len(self.grandfathered)} baselined")
        if self.inline_suppressed:
            extras.append(f"{self.inline_suppressed} inline-suppressed")
        if extras:
            line += f" ({', '.join(extras)})"
        return line


def _sort_key(finding) -> tuple[str, int, str]:
    location = finding.location
    path, _, line = location.rpartition(":")
    try:
        lineno = int(line)
    except ValueError:
        path, lineno = location, 0
    return (path, lineno, finding.code)


def lint_source_tree(root: str | Path | None = None,
                     baseline: Baseline | None = None) -> CodeReport:
    """Run every code pass over the tree rooted at ``root``."""
    modules = load_source_tree(root if root is not None
                               else default_source_root())
    report = CodeReport(modules_checked=len(modules))
    collected = Findings()
    for module in modules:
        for pass_findings in (check_determinism(module),
                              check_concurrency(module),
                              check_resources(module)):
            for finding in pass_findings:
                lineno = int(finding.location.rsplit(":", 1)[-1])
                if finding.code in module.suppressions.get(lineno, set()) \
                        or finding.code in module.suppressions.get(
                            lineno - 1, set()):
                    report.inline_suppressed += 1
                else:
                    collected.items.append(finding)
    collected.extend(check_lock_order(modules))
    deduped = collected.dedupe()
    deduped.items.sort(key=_sort_key)
    fresh, matched = (baseline or Baseline()).apply(deduped)
    report.findings = fresh
    report.grandfathered = matched
    return report
