"""Property-based tests for statistics invariants.

The optimizer's plan choices (and therefore the whole design search)
rest on these estimates behaving sanely, so the invariants are pinned
with hypothesis across arbitrary value distributions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Column, ColumnStats, Database, Index, SQLType, Table

values_strategy = st.lists(
    st.one_of(st.integers(-1000, 1000), st.none()),
    min_size=1, max_size=300)

string_values = st.lists(
    st.one_of(st.text(min_size=1, max_size=8), st.none()),
    min_size=1, max_size=200)


@given(values_strategy, st.integers(-1000, 1000))
@settings(max_examples=200, deadline=None)
def test_selectivities_are_probabilities(values, probe):
    stats = ColumnStats.from_values(values)
    assert 0.0 <= stats.eq_selectivity(probe) <= 1.0
    for op in ("<", "<=", ">", ">="):
        assert 0.0 <= stats.range_selectivity(op, probe) <= 1.0


@given(values_strategy, st.integers(-1000, 1000))
@settings(max_examples=200, deadline=None)
def test_le_plus_gt_covers_non_null(values, probe):
    stats = ColumnStats.from_values(values)
    le = stats.range_selectivity("<=", probe)
    gt = stats.range_selectivity(">", probe)
    assert le + gt <= stats.non_null_fraction + 1e-6
    # And the pair partitions the non-null mass (within histogram error).
    assert le + gt >= stats.non_null_fraction - 0.2


@given(values_strategy, st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=200, deadline=None)
def test_range_selectivity_monotone(values, a, b):
    lo, hi = min(a, b), max(a, b)
    stats = ColumnStats.from_values(values)
    assert stats.range_selectivity("<=", lo) <= \
        stats.range_selectivity("<=", hi) + 1e-9
    assert stats.range_selectivity(">=", hi) <= \
        stats.range_selectivity(">=", lo) + 1e-9


@given(values_strategy)
@settings(max_examples=200, deadline=None)
def test_le_selectivity_tracks_truth(values):
    """Histogram estimate of <= median stays near the actual fraction."""
    stats = ColumnStats.from_values(values)
    non_null = sorted(v for v in values if v is not None)
    if not non_null:
        return
    probe = non_null[len(non_null) // 2]
    actual = sum(1 for v in non_null if v <= probe) / len(values)
    estimate = stats.range_selectivity("<=", probe)
    assert abs(estimate - actual) <= 0.25


@given(values_strategy, st.integers(1, 500))
@settings(max_examples=100, deadline=None)
def test_scaled_preserves_probability_bounds(values, new_rows):
    stats = ColumnStats.from_values(values).scaled(new_rows)
    assert stats.row_count == new_rows
    assert 0 <= stats.null_count <= new_rows
    assert stats.n_distinct <= max(new_rows, 1)
    assert 0.0 <= stats.eq_selectivity(0) <= 1.0


@given(st.lists(values_strategy, min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_merged_row_accounting(parts_values):
    parts = [ColumnStats.from_values(v) for v in parts_values]
    merged = ColumnStats.merged(parts)
    assert merged.row_count == sum(p.row_count for p in parts)
    assert merged.null_count == sum(p.null_count for p in parts)
    for op in ("<", ">="):
        assert 0.0 <= merged.range_selectivity(op, 0) <= 1.0


# ----------------------------------------------------------------------
# Disjoint-partition round trips: merging the per-partition statistics
# of a horizontally split column must agree with analyzing the unsplit
# column directly. This pins the merged() bugfixes (n_distinct used to
# take the max over parts; avg_width ignored partition sizes; the
# histogram concatenated boundaries without re-bucketing).
# ----------------------------------------------------------------------

disjoint_parts = st.lists(
    st.lists(st.one_of(st.integers(0, 999), st.none()),
             min_size=1, max_size=120),
    min_size=1, max_size=4)


def _shift_parts(parts_values):
    """Offset each partition into its own value range (disjoint sets)."""
    return [[None if v is None else v + 10_000 * i for v in part]
            for i, part in enumerate(parts_values)]


@given(disjoint_parts)
@settings(max_examples=100, deadline=None)
def test_merged_disjoint_n_distinct_is_additive(parts_values):
    shifted = _shift_parts(parts_values)
    parts = [ColumnStats.from_values(v) for v in shifted]
    merged = ColumnStats.merged(parts)
    union = [v for part in shifted for v in part]
    assert merged.n_distinct == ColumnStats.from_values(union).n_distinct


@given(disjoint_parts)
@settings(max_examples=100, deadline=None)
def test_merged_round_trips_against_unsplit_column(parts_values):
    shifted = _shift_parts(parts_values)
    parts = [ColumnStats.from_values(v) for v in shifted]
    merged = ColumnStats.merged(parts)
    union = [v for part in shifted for v in part]
    direct = ColumnStats.from_values(union)
    assert merged.row_count == direct.row_count
    assert merged.null_count == direct.null_count
    assert merged.min_value == direct.min_value
    assert merged.max_value == direct.max_value
    # The re-bucketed histogram estimates must track the unsplit ones.
    non_null = sorted(v for v in union if v is not None)
    if non_null:
        probe = non_null[len(non_null) // 2]
        assert abs(merged.range_selectivity("<=", probe)
                   - direct.range_selectivity("<=", probe)) <= 0.25


@given(st.lists(st.lists(st.text(min_size=1, max_size=12), min_size=1,
                         max_size=60), min_size=2, max_size=4))
@settings(max_examples=100, deadline=None)
def test_merged_avg_width_is_row_weighted(parts_values):
    parts = [ColumnStats.from_values(v, is_string=True)
             for v in parts_values]
    merged = ColumnStats.merged(parts)
    union = [v for part in parts_values for v in part]
    mean = sum(len(v) for v in union) / len(union)
    # Partition widths are already rounded, so the reconstruction can
    # sit one byte off the unsplit mean — never proportional to the
    # largest partition's width as the old max/uniform logic allowed.
    assert abs(merged.avg_width - mean) <= 1.5


def test_merged_avg_width_weighted_example():
    wide = ColumnStats.from_values(["aaaa"] * 3, is_string=True)
    narrow = ColumnStats.from_values(["x"], is_string=True)
    merged = ColumnStats.merged([wide, narrow])
    # (4*3 + 1*1) / 4 = 3.25 -> 3; an unweighted mean would say 2.5 -> 3,
    # but reversing the part sizes separates the two rules:
    assert merged.avg_width == 3
    flipped = ColumnStats.merged([
        ColumnStats.from_values(["aaaa"], is_string=True),
        ColumnStats.from_values(["x"] * 3, is_string=True)])
    assert flipped.avg_width == 2  # (4 + 3*1) / 4 = 1.75 -> 2


def test_merged_n_distinct_capped_by_non_null_rows():
    parts = [ColumnStats.from_values([1, 2, None]),
             ColumnStats.from_values([3, 4])]
    merged = ColumnStats.merged(parts)
    assert merged.n_distinct == 4  # additive, not max(2, 2) = 2
    overlapping_cap = ColumnStats.merged([
        ColumnStats.from_values([1]), ColumnStats.from_values([2])])
    assert overlapping_cap.n_distinct <= 2


# ----------------------------------------------------------------------
# from_values width rounding: regression pinning the storage estimates
# that consume Column.avg_width. int() truncation used to floor the
# mean ("abcd", "ef" -> 3.0 bytes stored as 3, but "abc", "ef", "ab"
# -> 2.33 stored as 2 while 2.33 rounds to 2; "abcd", "efg" -> 3.5
# must store as 4, not 3).
# ----------------------------------------------------------------------


def test_from_values_width_rounds_half_up():
    stats = ColumnStats.from_values(["abcd", "efg"], is_string=True)
    assert stats.avg_width == 4
    assert ColumnStats.from_values(["ab"], is_string=True).avg_width == 2


def test_width_rounding_pins_table_and_index_sizes():
    db = Database(name="width-regression")
    table = Table(name="t", columns=[
        Column("ID", SQLType.INTEGER),
        Column("s", SQLType.VARCHAR),
    ], primary_key="ID")
    db.register_table(table)
    db.insert_rows("t", [(i, "abcd" if i % 2 == 0 else "efg")
                         for i in range(100)])
    db.analyze()
    assert table.column("s").width == 4  # mean 3.5 rounds up
    # Width feeds pages-per-table and index entry width directly.
    assert table.row_width == 12 + table.column("ID").width + 4
    index = Index(name="ix_s", table_name="t", key_columns=("s",))
    rounded_entry = index.entry_width(table)
    assert index.size_bytes(table) > 0 and table.size_bytes > 0
    table.column("s").avg_width = 3  # the old truncated estimate
    assert index.entry_width(table) == rounded_entry - 1


@given(string_values, st.text(min_size=1, max_size=8))
@settings(max_examples=150, deadline=None)
def test_string_columns_behave(values, probe):
    stats = ColumnStats.from_values(values, is_string=True)
    assert 0.0 <= stats.eq_selectivity(probe) <= 1.0
    assert 0.0 <= stats.range_selectivity("<=", probe) <= 1.0
    if any(v is not None for v in values):
        assert stats.avg_width and stats.avg_width >= 1
