"""Unit tests for schema trees, the XSD/DTD parsers, and validation."""

import pytest

from repro.errors import SchemaTreeError, ValidationError, XSDError
from repro.xmlkit import parse
from repro.xsd import (BaseType, NodeKind, SchemaTree, TreeBuilder, UNBOUNDED,
                       parse_dtd, parse_xsd, validate)

MOVIE_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
           xmlns:sdb="urn:repro:storage">
  <xs:element name="movies" sdb:table="movies">
    <xs:complexType><xs:sequence>
      <xs:element name="movie" minOccurs="0" maxOccurs="unbounded" sdb:table="movie">
        <xs:complexType><xs:sequence>
          <xs:element name="title" type="xs:string"/>
          <xs:element name="year" type="xs:integer"/>
          <xs:element name="aka_title" type="xs:string" minOccurs="0"
                      maxOccurs="unbounded" sdb:table="aka_title"/>
          <xs:element name="avg_rating" type="xs:decimal" minOccurs="0"/>
          <xs:choice>
            <xs:element name="box_office" type="xs:integer"/>
            <xs:element name="seasons" type="xs:integer"/>
          </xs:choice>
        </xs:sequence></xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>
"""

SHARED_TYPE_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
           xmlns:sdb="urn:repro:storage">
  <xs:complexType name="PersonType">
    <xs:sequence>
      <xs:element name="name" type="xs:string"/>
    </xs:sequence>
  </xs:complexType>
  <xs:element name="org" sdb:table="org">
    <xs:complexType><xs:sequence>
      <xs:element name="employee" maxOccurs="unbounded" type="PersonType"
                  sdb:table="employee"/>
      <xs:element name="contractor" maxOccurs="unbounded" type="PersonType"
                  sdb:table="contractor"/>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>
"""


@pytest.fixture
def movie_tree():
    return parse_xsd(MOVIE_XSD, name="movie")


class TestTreeBuilder:
    def test_leaf_and_classification(self):
        b = TreeBuilder()
        root = b.tag("r", annotation="r")
        title = b.leaf("title", root)
        tree = b.build(root)
        assert tree.is_leaf_element(title)
        assert tree.leaf_base_type(title) == BaseType.STRING
        assert not tree.is_leaf_element(root)

    def test_must_annotate_root_and_under_repetition(self):
        b = TreeBuilder()
        root = b.tag("r", annotation="r")
        rep = b.rep(root)
        item = b.leaf("item", rep)
        inlined = b.leaf("note", root)
        tree = b.build(root)
        assert tree.must_annotate(tree.root)
        assert tree.must_annotate(item)
        assert not tree.must_annotate(inlined)

    def test_tag_path(self):
        b = TreeBuilder()
        root = b.tag("a", annotation="a")
        rep = b.rep(root)
        mid = b.tag("b", rep, annotation="b")
        leaf = b.leaf("c", mid)
        tree = b.build(root)
        assert tree.tag_path(leaf) == ("a", "b", "c")

    def test_find_tag_by_path(self):
        b = TreeBuilder()
        root = b.tag("a", annotation="a")
        leaf = b.leaf("b", root)
        tree = b.build(root)
        assert tree.find_tag_by_path(("a", "b")) is leaf
        with pytest.raises(SchemaTreeError):
            tree.find_tag_by_path(("a", "zzz"))

    def test_structural_equivalence(self):
        b = TreeBuilder()
        root = b.tag("r", annotation="r")
        x = b.leaf("t", root)
        y = b.leaf("t", root)
        z = b.leaf("t", root, BaseType.INTEGER)
        tree = b.build(root)
        assert tree.equivalent(x, y)
        assert not tree.equivalent(x, z)

    def test_invalid_choice_rejected(self):
        b = TreeBuilder()
        root = b.tag("r", annotation="r")
        choice = b.choice(root)
        b.leaf("only", choice)
        with pytest.raises(SchemaTreeError):
            b.build(root)

    def test_enclosing_repetition(self):
        b = TreeBuilder()
        root = b.tag("r", annotation="r")
        rep = b.rep(root)
        item = b.leaf("item", rep)
        plain = b.leaf("plain", root)
        tree = b.build(root)
        assert tree.enclosing_repetition(item) is rep
        assert tree.enclosing_repetition(plain) is None


class TestXSDParser:
    def test_movie_schema_shape(self, movie_tree):
        assert movie_tree.root.name == "movies"
        movie = movie_tree.find_tag_by_path(("movies", "movie"))
        assert movie.annotation == "movie"
        kinds = [c.kind for c in movie_tree.children(movie)]
        assert kinds == [NodeKind.TAG, NodeKind.TAG, NodeKind.REPETITION,
                         NodeKind.OPTION, NodeKind.CHOICE]

    def test_occurrence_bounds(self, movie_tree):
        aka = movie_tree.find_tag_by_path(("movies", "movie", "aka_title"))
        rep = movie_tree.parent(aka)
        assert rep.kind == NodeKind.REPETITION
        assert rep.max_occurs == UNBOUNDED

    def test_base_types(self, movie_tree):
        year = movie_tree.find_tag_by_path(("movies", "movie", "year"))
        assert movie_tree.leaf_base_type(year) == BaseType.INTEGER

    def test_shared_types_are_equivalent(self):
        tree = parse_xsd(SHARED_TYPE_XSD)
        employee = tree.find_tag_by_path(("org", "employee"))
        contractor = tree.find_tag_by_path(("org", "contractor"))
        emp_name = tree.children(employee)[0]
        con_name = tree.children(contractor)[0]
        assert tree.equivalent(emp_name, con_name)

    def test_unknown_type_rejected(self):
        with pytest.raises(XSDError):
            parse_xsd("""<xs:schema xmlns:xs="x">
                <xs:element name="a" type="NoSuchType"/></xs:schema>""")

    def test_two_roots_rejected(self):
        with pytest.raises(XSDError):
            parse_xsd("""<xs:schema xmlns:xs="x">
                <xs:element name="a" type="xs:string"/>
                <xs:element name="b" type="xs:string"/></xs:schema>""")


class TestDTD:
    DTD = """
    <!ELEMENT dblp (inproceedings | book)*>
    <!ELEMENT inproceedings (title, booktitle, year, author*, pages, ee?)>
    <!ELEMENT book (title, year, publisher, author*)>
    <!ELEMENT title (#PCDATA)>
    <!ELEMENT booktitle (#PCDATA)>
    <!ELEMENT year (#PCDATA)>
    <!ELEMENT author (#PCDATA)>
    <!ELEMENT pages (#PCDATA)>
    <!ELEMENT ee (#PCDATA)>
    <!ELEMENT publisher (#PCDATA)>
    """

    def test_parses_to_tree(self):
        tree = parse_dtd(self.DTD, root="dblp")
        assert tree.root.name == "dblp"
        inproc = tree.find_tag_by_path(("dblp", "inproceedings"))
        assert inproc.annotation == "inproceedings"

    def test_repeated_elements_are_annotated(self):
        tree = parse_dtd(self.DTD, root="dblp")
        authors = tree.find_tags("author")
        assert len(authors) == 2
        assert all(a.annotation == "author" for a in authors)

    def test_optional_modelled_as_option(self):
        tree = parse_dtd(self.DTD, root="dblp")
        ee = tree.find_tag_by_path(("dblp", "inproceedings", "ee"))
        assert tree.parent(ee).kind == NodeKind.OPTION

    def test_missing_root_rejected(self):
        with pytest.raises(XSDError):
            parse_dtd("<!ELEMENT a (#PCDATA)>", root="b")

    def test_undeclared_reference_rejected(self):
        with pytest.raises(XSDError):
            parse_dtd("<!ELEMENT a (b)>", root="a")

    def test_mixed_separators_rejected(self):
        with pytest.raises(XSDError):
            parse_dtd("<!ELEMENT a (b, c | d)><!ELEMENT b (#PCDATA)>"
                      "<!ELEMENT c (#PCDATA)><!ELEMENT d (#PCDATA)>", root="a")


class TestValidator:
    def _tree(self):
        return parse_xsd(MOVIE_XSD)

    def test_valid_document(self):
        doc = parse("""<movies>
          <movie><title>Titanic</title><year>1997</year>
                 <aka_title>Le Titanic</aka_title>
                 <avg_rating>7.9</avg_rating><box_office>2000000</box_office></movie>
          <movie><title>Lost</title><year>2004</year><seasons>6</seasons></movie>
        </movies>""".replace("\n", "").replace("  ", ""))
        validate(doc, self._tree())

    def test_missing_required_element(self):
        doc = parse("<movies><movie><title>X</title>"
                    "<box_office>1</box_office></movie></movies>")
        with pytest.raises(ValidationError):
            validate(doc, self._tree())

    def test_choice_requires_exactly_one_branch(self):
        doc = parse("<movies><movie><title>X</title><year>1</year>"
                    "</movie></movies>")
        with pytest.raises(ValidationError):
            validate(doc, self._tree())

    def test_wrong_order_rejected(self):
        doc = parse("<movies><movie><year>1</year><title>X</title>"
                    "<box_office>1</box_office></movie></movies>")
        with pytest.raises(ValidationError):
            validate(doc, self._tree())

    def test_bad_integer_rejected(self):
        doc = parse("<movies><movie><title>X</title><year>not-a-year</year>"
                    "<box_office>1</box_office></movie></movies>")
        with pytest.raises(ValidationError):
            validate(doc, self._tree())

    def test_unexpected_element_rejected(self):
        doc = parse("<movies><movie><title>X</title><year>1</year>"
                    "<box_office>1</box_office><bogus>z</bogus></movie></movies>")
        with pytest.raises(ValidationError):
            validate(doc, self._tree())

    def test_wrong_root_rejected(self):
        with pytest.raises(ValidationError):
            validate(parse("<films/>"), self._tree())

    def test_repetition_bounds_enforced(self):
        b = TreeBuilder()
        root = b.tag("r", annotation="r")
        rep = b.rep(root, min_occurs=1, max_occurs=2)
        b.leaf("x", rep, annotation="x")
        tree = b.build(root)
        validate(parse("<r><x>1</x></r>"), tree)
        validate(parse("<r><x>1</x><x>2</x></r>"), tree)
        with pytest.raises(ValidationError):
            validate(parse("<r></r>"), tree)
        with pytest.raises(ValidationError):
            validate(parse("<r><x>1</x><x>2</x><x>3</x></r>"), tree)
