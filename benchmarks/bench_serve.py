"""Serving throughput and latency — the query service under load.

The other benchmarks measure the *advisor* (how fast it finds a design
and how good the design is). This one measures the artifact the design
exists for: a long-lived :class:`repro.serve.QueryService` answering a
Zipf-distributed query stream through its plan cache. For each bundled
dataset and each worker count it runs the seeded closed-loop harness
twice — a cold run (every plan translated) and a warm run (plans
served from the cache) — and records p50/p99 latency, QPS, and the
warm-run plan-cache hit rate to ``BENCH_serve.json`` so the serving
perf trajectory is tracked across PRs.

Run standalone with ``--smoke`` for the quick CI variant::

    PYTHONPATH=src python benchmarks/bench_serve.py --smoke
"""

import json
import sys
from pathlib import Path

from repro.experiments import DatasetBundle
from repro.serve import LoadGenerator, QueryService
from repro.workload import zipf_mix

SEED = 7
WORKER_COUNTS = (2, 4)
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def _measure(bundle, workers: int, requests: int, queries: int) -> dict:
    """Cold + warm closed-loop runs of one (dataset, workers) cell."""
    from repro.mapping import derive_schema, hybrid_inlining

    schema = derive_schema(hybrid_inlining(bundle.tree))
    workload = bundle.workload_generator(seed=SEED).generate(queries)
    mix = zipf_mix(workload)
    with QueryService(schema, bundle.docs, workers=workers) as service:
        generator = LoadGenerator(service, mix, seed=SEED,
                                  clients=workers)
        cold = generator.run(requests=requests)
        warm_base = service.plan_cache.stats()
        warm = generator.run(requests=requests)
        warm_cache = service.plan_cache.stats()
        warm_hits = warm_cache["hits"] - warm_base["hits"]
        warm_total = warm_hits + warm_cache["misses"] - warm_base["misses"]
        assert cold.errors == 0 and warm.errors == 0
        return {
            "dataset": bundle.name,
            "workers": workers,
            "requests": requests,
            "cold": {
                "qps": round(cold.qps, 1),
                "p50_ms": round(cold.latency(50) * 1e3, 3),
                "p99_ms": round(cold.latency(99) * 1e3, 3),
            },
            "warm": {
                "qps": round(warm.qps, 1),
                "p50_ms": round(warm.latency(50) * 1e3, 3),
                "p99_ms": round(warm.latency(99) * 1e3, 3),
                "plan_cache_hit_rate": round(
                    warm_hits / warm_total if warm_total else 0.0, 4),
            },
            "sequence_digest": warm.sequence_digest,
        }


def _run(scale: int, requests: int, queries: int) -> dict:
    cells = []
    for make in (DatasetBundle.dblp, DatasetBundle.movie):
        bundle = make(scale=scale, seed=SEED)
        for workers in WORKER_COUNTS:
            cell = _measure(bundle, workers, requests, queries)
            cells.append(cell)
            print(f"{cell['dataset']:>6} workers={workers}: "
                  f"warm {cell['warm']['qps']:.0f} QPS, "
                  f"p50 {cell['warm']['p50_ms']:.3f}ms, "
                  f"p99 {cell['warm']['p99_ms']:.3f}ms, "
                  f"hit rate {cell['warm']['plan_cache_hit_rate']:.1%}")
    return {"benchmark": "serve", "seed": SEED, "scale": scale,
            "mode": "closed", "results": cells}


def _assert_sane(payload: dict) -> None:
    for cell in payload["results"]:
        assert cell["warm"]["qps"] > 0, f"{cell['dataset']}: zero QPS"
        assert cell["warm"]["plan_cache_hit_rate"] > 0.9, \
            f"{cell['dataset']}: warm run should serve from the cache"
        assert cell["warm"]["p50_ms"] <= cell["warm"]["p99_ms"]


def test_serve_throughput(benchmark, emit):
    payload = benchmark.pedantic(
        lambda: _run(scale=400, requests=400, queries=8),
        rounds=1, iterations=1)
    _assert_sane(payload)
    emit(json.dumps(payload["results"], indent=2))


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    payload = _run(scale=150 if smoke else 400,
                   requests=150 if smoke else 400,
                   queries=6 if smoke else 8)
    _assert_sane(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    print(f"wrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
