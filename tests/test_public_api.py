"""Tests exercising the documented public API (README / quickstart)."""

import pytest

import repro
from repro import (Database, GreedySearch, Workload, collect_statistics,
                   derive_schema, hybrid_inlining, load_documents, parse_dtd,
                   parse_xml, translate_xpath)

DTD = """
<!ELEMENT catalog (product*)>
<!ELEMENT product (name, category, price, tag*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT category (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
"""

XML = """
<catalog>
  <product><name>Espresso machine</name><category>kitchen</category>
           <price>229</price><tag>coffee</tag><tag>steel</tag></product>
  <product><name>Chef knife</name><category>kitchen</category>
           <price>89</price><tag>steel</tag></product>
  <product><name>Desk lamp</name><category>office</category>
           <price>39</price></product>
</catalog>
"""


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_quickstart_flow():
    tree = parse_dtd(DTD, root="catalog")
    doc = parse_xml(XML)
    schema = derive_schema(hybrid_inlining(tree))
    db = Database()
    load_documents(db, schema, doc)

    sql = translate_xpath(
        schema, '/catalog/product[category = "kitchen"]/(name | price | tag)')
    result = db.execute(sql)
    names = {row[1] for row in result.rows if row[1] is not None}
    assert names == {"Espresso machine", "Chef knife"}
    tags = [row[3] for row in result.rows if row[3] is not None]
    assert sorted(tags) == ["coffee", "steel", "steel"]


def test_greedy_search_on_custom_schema():
    tree = parse_dtd(DTD, root="catalog")
    doc = parse_xml(XML)
    stats = collect_statistics(tree, doc)
    workload = Workload.from_strings("w", [
        '/catalog/product[category = "kitchen"]/(name | tag)'])
    result = GreedySearch(tree, workload, stats).run()
    assert result.estimated_cost >= 0
    assert "greedy" in result.describe()


def test_version_is_set():
    assert repro.__version__


@pytest.mark.parametrize("script", [
    "examples/quickstart.py",
    "examples/movie_union_distribution.py",
])
def test_examples_are_importable_and_run(script, monkeypatch, capsys):
    """Examples must run to completion (fast ones only)."""
    import runpy
    import sys
    monkeypatch.setattr(sys, "argv", [script])
    # Shrink the movie example's data for test speed.
    import repro.datasets.movie as movie_module
    original = movie_module.generate_movies

    def small(n_movies=2000, seed=11, tv_fraction=0.35):
        return original(min(n_movies, 200), seed, tv_fraction)

    monkeypatch.setattr("repro.datasets.movie.generate_movies", small)
    monkeypatch.setattr("repro.datasets.generate_movies", small)
    runpy.run_path(script, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()
