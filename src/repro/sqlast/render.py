"""Pretty-printing of SQL ASTs.

``str(query)`` already yields valid single-line SQL; :func:`render`
produces a multi-line layout like the listings in the paper, which the
examples print for the user.
"""

from __future__ import annotations

from .ast import Query, Select


def render_select(select: Select, indent: str = "") -> str:
    lines = [indent + "SELECT " + ", ".join(str(i) for i in select.items)]
    lines.append(indent + "FROM " + ", ".join(str(t) for t in select.from_tables))
    if select.where is not None:
        lines.append(indent + f"WHERE {select.where}")
    return "\n".join(lines)


def render(query: Query, indent: str = "") -> str:
    """Multi-line SQL text for a query."""
    blocks = [render_select(s, indent) for s in query.selects]
    body = ("\n" + indent + "UNION ALL\n").join(blocks)
    if query.order_by:
        body += "\n" + indent + "ORDER BY " + ", ".join(
            str(i) for i in query.order_by)
    return body
