"""Backend matrix — load and query timings per executor, plus the
cross-backend comparator verdict.

For each bundled dataset the hybrid-inlined design is built once, then
every available backend (the in-memory engine, SQLite, and DuckDB when
the optional driver is installed) loads the same shredded documents,
applies the same physical configuration, and times the same translated
workload. The cell records bulk-load seconds, total/median query
timings (wall-clock for the real engines; the in-memory engine's
``time_query`` reports deterministic model-cost units, flagged by the
cell's ``unit`` field), and — for each real-DBMS pair — the comparator
status, so a
renderer or executor drift shows up next to the perf numbers it would
otherwise hide behind. Results go to ``BENCH_matrix.json``.

Run standalone with ``--smoke`` for the quick CI variant::

    PYTHONPATH=src python benchmarks/bench_backend_matrix.py --smoke
"""

import json
import statistics
import sys
import time
from pathlib import Path

from repro.backends import backend_factory, duckdb_available
from repro.backends.compare import compare_loaded
from repro.datasets import (dblp_schema, generate_dblp, generate_movies,
                            movie_schema)
from repro.mapping import collect_statistics, derive_schema, hybrid_inlining
from repro.physdesign import Configuration
from repro.translate import Translator
from repro.workload import WorkloadGenerator

SEED = 7
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_matrix.json"


def _available_backends() -> list[str]:
    names = ["engine", "sqlite"]
    if duckdb_available():
        names.append("duckdb")
    return names


def _design(dataset: str, scale: int, queries: int):
    if dataset == "dblp":
        tree, docs = dblp_schema(), generate_dblp(scale, seed=SEED)
    else:
        tree, docs = movie_schema(), generate_movies(scale, seed=SEED)
    schema = derive_schema(hybrid_inlining(tree))
    stats = collect_statistics(tree, docs)
    workload = WorkloadGenerator(tree, stats, seed=3).generate(queries)
    translator = Translator(schema)
    translated = [translator.translate(w.query) for w in workload.queries]
    return schema, docs, translated


def _measure_cell(name: str, schema, docs, queries) -> tuple[dict, object]:
    backend = backend_factory(name)()
    start = time.perf_counter()
    backend.load(schema, docs)
    load_seconds = time.perf_counter() - start
    backend.apply_configuration(Configuration())
    per_query = [backend.time_query(q, repeat=3, warmup=1).seconds
                 for q in queries]
    cell = {
        "backend": name,
        # EngineBackend.time_query reports deterministic model cost,
        # not wall-clock; keep the two regimes distinguishable.
        "unit": "model-cost" if name == "engine" else "seconds",
        "load_seconds": round(load_seconds, 4),
        "query_total": round(sum(per_query), 6),
        "query_median": round(statistics.median(per_query), 6),
        "queries": len(per_query),
    }
    return cell, backend


def _run(scale: int, queries: int) -> dict:
    results = []
    for dataset in ("dblp", "movie"):
        schema, docs, translated = _design(dataset, scale, queries)
        backends = {}
        try:
            for name in _available_backends():
                cell, backend = _measure_cell(name, schema, docs,
                                              translated)
                backends[name] = backend
                results.append({"dataset": dataset, **cell})
                print(f"{dataset:>6} {name:>7}: load "
                      f"{cell['load_seconds']:.3f}s, median query "
                      f"{cell['query_median']:.6g} {cell['unit']}")
            if "duckdb" in backends:
                report = compare_loaded(backends["sqlite"],
                                        backends["duckdb"], translated,
                                        schema=schema,
                                        context={"dataset": dataset})
                results.append({"dataset": dataset,
                                "comparator": "sqlite-vs-duckdb",
                                "status": report.status})
                print(f"{dataset:>6} comparator sqlite vs duckdb: "
                      f"{report.status}")
        finally:
            for backend in backends.values():
                backend.close()
    return {"benchmark": "backend_matrix", "seed": SEED, "scale": scale,
            "backends": _available_backends(), "results": results}


def _assert_sane(payload: dict) -> None:
    for cell in payload["results"]:
        if "comparator" in cell:
            assert cell["status"] == "OK", cell
        else:
            assert cell["query_median"] >= 0, cell


def test_backend_matrix(benchmark, emit):
    payload = benchmark.pedantic(lambda: _run(scale=400, queries=8),
                                 rounds=1, iterations=1)
    _assert_sane(payload)
    emit(json.dumps(payload["results"], indent=2))


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    payload = _run(scale=150 if smoke else 400,
                   queries=6 if smoke else 8)
    _assert_sane(payload)
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    print(f"wrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
