"""The execution-backend protocol and the in-memory reference backend.

Everywhere else in this library, "execution time" is the deterministic
cost accumulated by the engine's :class:`~repro.engine.cost.CostCounter`.
The paper's headline numbers (Sec. 1.1, Sec. 7 / Fig. 4), however, are
*measured* wall-clock times on a real DBMS. :class:`SQLBackend` is the
seam that closes that gap: anything that can

1. bulk-load a :class:`~repro.mapping.MappedSchema`'s shredded tables,
2. apply a physical :class:`~repro.physdesign.Configuration`,
3. execute a translated :class:`~repro.sqlast.Query`, and
4. time repeated executions,

can serve as an execution backend. :class:`EngineBackend` adapts the
in-memory engine to the protocol (its "seconds" are cost units);
:class:`repro.backends.sqlite.SQLiteBackend` is the real-DBMS
implementation. The differential validator and the calibration harness
are written against the protocol only.
"""

from __future__ import annotations

import statistics as _statistics
import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..engine import Database
from ..mapping import MappedSchema, load_documents
from ..obs import NullTracer, Tracer, get_tracer
from ..physdesign import Configuration, materialize
from ..sqlast import Query


@dataclass
class QueryTiming:
    """Wall-clock measurements of one query on one backend."""

    seconds: float                    # the headline number (median run)
    runs: list[float] = field(default_factory=list)
    rows: int = 0

    @property
    def best(self) -> float:
        return min(self.runs) if self.runs else self.seconds


@runtime_checkable
class SQLBackend(Protocol):
    """What the validator and calibration harness need from a backend."""

    name: str

    def load(self, schema: MappedSchema, docs) -> None:
        """Shred the documents and bulk-load every mapped table."""
        ...  # pragma: no cover - protocol

    def apply_configuration(self, configuration: Configuration) -> None:
        """Build the physical design (indexes, materialized views)."""
        ...  # pragma: no cover - protocol

    def execute(self, query: Query) -> list[tuple]:
        """Run a translated query and return its rows (in result order)."""
        ...  # pragma: no cover - protocol

    def time_query(self, query: Query, repeat: int = 3,
                   warmup: int = 1) -> QueryTiming:
        """Execute with warmup, then ``repeat`` timed runs."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        ...  # pragma: no cover - protocol


def timed_runs(run, repeat: int, warmup: int,
               clock=time.perf_counter) -> QueryTiming:
    """Shared warmup/repetition protocol: median of ``repeat`` runs."""
    rows: list[tuple] = []
    for _ in range(max(0, warmup)):
        rows = run()
    runs: list[float] = []
    for _ in range(max(1, repeat)):
        started = clock()
        rows = run()
        runs.append(clock() - started)
    return QueryTiming(seconds=_statistics.median(runs), runs=runs,
                       rows=len(rows))


class EngineBackend:
    """The in-memory cost-model engine behind the backend protocol.

    ``time_query`` reports the deterministic executed *cost* (not
    seconds) so differential runs stay reproducible; the calibration
    harness uses :meth:`estimate`/:meth:`executed_cost` explicitly and
    never mixes the units.
    """

    name = "engine"

    def __init__(self, tracer: Tracer | NullTracer | None = None):
        self.tracer = tracer if tracer is not None else get_tracer()
        self.db = Database(name="engine-backend", tracer=self.tracer)
        self._metrics = self.tracer.metrics("backend.engine")

    def load(self, schema: MappedSchema, docs) -> None:
        with self.tracer.span("backend.load", backend=self.name):
            load_documents(self.db, schema, docs)
            self._metrics.incr("tables_loaded", len(schema.table_names))

    def apply_configuration(self, configuration: Configuration) -> None:
        with self.tracer.span("backend.ddl", backend=self.name,
                              structures=len(configuration)):
            materialize(self.db, configuration)

    def execute(self, query: Query) -> list[tuple]:
        return self.db.execute(query).rows

    def executed_cost(self, query: Query) -> float:
        """Deterministic executed cost (the engine's native measure)."""
        return self.db.execute(query).cost

    def time_query(self, query: Query, repeat: int = 3,
                   warmup: int = 1) -> QueryTiming:
        with self.tracer.span("backend.query", backend=self.name):
            result = self.db.execute(query)
        return QueryTiming(seconds=result.cost, runs=[result.cost],
                           rows=len(result.rows))

    def close(self) -> None:
        pass
