"""Lightweight span tracer for the search/advisor hot paths.

A :class:`Tracer` collects a tree of timed :class:`Span` objects plus
point-in-time :class:`Event` records. Spans are context managers::

    tracer = Tracer()
    with tracer.span("tune", queries=4) as span:
        ...
        span.set("optimizer_calls", 17)
        span.incr("cache_hits")
        tracer.event("cache_hit", kind="exact")

Design constraints (see docs/observability.md):

* **Zero overhead when disabled.** The module-level :data:`NULL_TRACER`
  singleton implements the whole surface as no-ops that allocate
  nothing; instrumented code holds a tracer reference and never
  branches on "is tracing on?".
* **Deterministic ordering.** Every span and event carries a
  monotonically increasing sequence number; exporters order children
  and interleaved events by it and render attributes sorted by key, so
  two identical runs produce byte-identical trees (wall times aside).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from .metrics import NULL_METRICS, MetricRegistry, NullMetricRegistry

__all__ = ["Event", "Span", "Tracer", "NullTracer", "NULL_TRACER",
           "get_tracer", "set_tracer"]


@dataclass
class Event:
    """A point-in-time record attached to the span it occurred under."""

    name: str
    seq: int
    attributes: dict[str, Any] = field(default_factory=dict)


class Span:
    """One timed, attributed node of the trace tree."""

    __slots__ = ("name", "seq", "attributes", "children", "events",
                 "wall_time", "_tracer", "_start")

    def __init__(self, name: str, tracer: "Tracer",
                 attributes: dict[str, Any]):
        self.name = name
        self.seq = -1
        self.attributes: dict[str, Any] = dict(attributes)
        self.children: list[Span] = []
        self.events: list[Event] = []
        self.wall_time = 0.0
        self._tracer = tracer
        self._start = 0.0

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._push(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.wall_time += time.perf_counter() - self._start
        self._tracer._pop(self)
        return False

    # -- attributes / events --------------------------------------------
    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def incr(self, key: str, delta: float = 1) -> None:
        self.attributes[key] = self.attributes.get(key, 0) + delta

    def event(self, name: str, **attributes: Any) -> None:
        self.events.append(Event(name, self._tracer._next_seq(), attributes))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Span {self.name!r} seq={self.seq} "
                f"children={len(self.children)}>")


class Tracer:
    """Collects a deterministic tree of timed spans and counters."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []      # completed/open top-level spans
        self.events: list[Event] = []    # events outside any span
        self._stack: list[Span] = []
        self._seq = 0
        self._registries: dict[str, MetricRegistry] = {}

    # -- span / event construction --------------------------------------
    def span(self, name: str, **attributes: Any) -> Span:
        return Span(name, self, attributes)

    def event(self, name: str, **attributes: Any) -> None:
        event = Event(name, self._next_seq(), attributes)
        if self._stack:
            self._stack[-1].events.append(event)
        else:
            self.events.append(event)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- metric registries ----------------------------------------------
    def metrics(self, component: str) -> MetricRegistry:
        registry = self._registries.get(component)
        if registry is None:
            registry = self._registries[component] = MetricRegistry(component)
        return registry

    def metric_snapshot(self) -> dict[str, dict[str, float]]:
        """All registries, components and counters sorted by name."""
        return {name: self._registries[name].snapshot()
                for name in sorted(self._registries)}

    # -- internals -------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _push(self, span: Span) -> None:
        span.seq = self._next_seq()
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exceptions unwinding through several open spans.
        while self._stack:
            if self._stack.pop() is span:
                break


class _NullSpan:
    """No-op span; a single shared instance, nothing is recorded."""

    __slots__ = ()
    name = ""
    seq = -1
    wall_time = 0.0
    attributes: dict[str, Any] = {}
    children: list = []
    events: list = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def incr(self, key: str, delta: float = 1) -> None:
        pass

    def event(self, name: str, **attributes: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Instrumented code paths keep a reference to this singleton by
    default, so tracing costs one attribute lookup and an empty call
    when off — no allocation, no branching at the call sites.
    """

    enabled = False
    spans: tuple = ()
    events: tuple = ()
    current = None

    def span(self, name: str, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def metrics(self, component: str) -> NullMetricRegistry:
        return NULL_METRICS

    def metric_snapshot(self) -> dict:
        return {}


NULL_TRACER = NullTracer()

# ----------------------------------------------------------------------
# Ambient tracer: lets a harness (the benchmark conftest, a notebook)
# turn tracing on for every search constructed while it is installed,
# without threading a tracer argument through existing call sites.
# ----------------------------------------------------------------------

_ACTIVE: Tracer | NullTracer = NULL_TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | NullTracer:
    """Install (or, with ``None``, clear) the ambient tracer."""
    global _ACTIVE
    _ACTIVE = tracer if tracer is not None else NULL_TRACER
    return _ACTIVE


def get_tracer() -> Tracer | NullTracer:
    """The ambient tracer; :data:`NULL_TRACER` unless one is installed."""
    return _ACTIVE
