"""Fault injection, retry/degradation policy, and chaos determinism.

The contract under test: a seeded fault plan whose faults are all
*retryable* must leave a search's :class:`DesignResult` — and its
evaluation counters — identical to a fault-free run, at ``jobs=1`` and
``jobs=4``; non-retryable paths must degrade loudly (counters, metrics)
but never crash the search or poison a cache.
"""

import threading

import pytest

from repro.errors import InjectedFault
from repro.experiments import DatasetBundle
from repro.mapping import hybrid_inlining
from repro.obs import Tracer
from repro.resilience import (NULL_PLAN, FaultPlan, FaultRule, RetryPolicy,
                              classify, install_fault_plan)
from repro.search import (CacheKey, EvaluationCache, GreedySearch,
                          MappingEvaluator, mapping_digest)


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    """Every test starts and ends with fault injection disabled."""
    install_fault_plan(NULL_PLAN)
    yield
    install_fault_plan(NULL_PLAN)


@pytest.fixture(scope="module")
def problem():
    bundle = DatasetBundle.dblp(scale=150, seed=11)
    workload = bundle.workload_generator(seed=5).generate(4)
    return bundle, workload


def _fingerprint(result):
    return (mapping_digest(result.mapping), tuple(result.applied),
            result.estimated_cost, result.configuration.describe())


# ----------------------------------------------------------------------
# FaultPlan mechanics
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=42;evaluate:0.2:transient;cache.write:1:torn;"
            "whatif:0.1:hang:0.5;advisor:1:fatal:0:7")
        assert plan.seed == 42
        assert plan.rules["evaluate"].rate == 0.2
        assert plan.rules["cache.write"].kind == "torn"
        assert plan.rules["whatif"].duration == 0.5
        assert plan.rules["advisor"].after == 7
        rebuilt = FaultPlan.from_spec(plan.to_spec())
        assert rebuilt.seed == plan.seed
        assert rebuilt.rules == plan.rules

    def test_same_seed_same_sequence(self):
        plan = FaultPlan([FaultRule("evaluate", 0.3)], seed=9)
        first = [plan.fire("evaluate") is not None for _ in range(200)]
        plan.reset()
        second = [plan.fire("evaluate") is not None for _ in range(200)]
        assert first == second
        assert any(first) and not all(first)

    def test_sites_do_not_perturb_each_other(self):
        solo = FaultPlan([FaultRule("evaluate", 0.3)], seed=9)
        both = FaultPlan([FaultRule("evaluate", 0.3),
                          FaultRule("whatif", 0.5)], seed=9)
        solo_fires = [solo.fire("evaluate") is not None for _ in range(100)]
        both_fires = []
        for _ in range(100):
            both.fire("whatif")
            both_fires.append(both.fire("evaluate") is not None)
        assert solo_fires == both_fires

    def test_after_threshold_is_exact(self):
        plan = FaultPlan([FaultRule("evaluate", 1.0, "fatal", after=3)])
        fires = [plan.fire("evaluate") is not None for _ in range(5)]
        assert fires == [False, False, False, True, True]

    def test_counts_survive_eight_thread_hammer(self):
        """Regression: the per-site invocation counter was a bare
        read-modify-write, so concurrent ``fire`` calls could claim the
        same invocation number — double-firing one scheduled fault and
        skipping another. Under the lock, 8 threads hammering one site
        must fire exactly as often as a serial replay of the plan."""
        threads_n, per_thread = 8, 500
        plan = FaultPlan([FaultRule("evaluate", 0.3)], seed=13)
        fired = [0] * threads_n
        barrier = threading.Barrier(threads_n)

        def worker(slot: int) -> None:
            barrier.wait()
            count = 0
            for _ in range(per_thread):
                if plan.fire("evaluate") is not None:
                    count += 1
            fired[slot] = count

        workers = [threading.Thread(target=worker, args=(i,))
                   for i in range(threads_n)]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        serial = FaultPlan([FaultRule("evaluate", 0.3)], seed=13)
        expected = sum(1 for _ in range(threads_n * per_thread)
                       if serial.fire("evaluate") is not None)
        assert sum(fired) == expected
        assert plan._counts["evaluate"] == threads_n * per_thread

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("evaluate:2.0")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("evaluate:0.5:explode")
        with pytest.raises(ValueError):
            FaultPlan.from_spec("evaluate")

    def test_null_plan_never_fires(self):
        assert not NULL_PLAN.enabled
        assert NULL_PLAN.fire("evaluate") is None
        NULL_PLAN.maybe_raise("evaluate")  # no-op


class TestClassify:
    def test_buckets(self):
        import pickle
        from concurrent.futures.process import BrokenProcessPool

        from repro.errors import (CheckError, EvaluationTimeout,
                                  MappingError, TranslationError)

        assert classify(InjectedFault("s", retryable=True)) == "transient"
        assert classify(InjectedFault("s", retryable=False)) == "fatal"
        assert classify(EvaluationTimeout("late")) == "timeout"
        assert classify(TimeoutError()) == "timeout"  # 3.12: is an OSError
        assert classify(TranslationError("no")) == "infeasible"
        assert classify(MappingError("no")) == "inapplicable"
        assert classify(CheckError("bug")) == "fatal"
        assert classify(BrokenProcessPool()) == "infrastructure"
        assert classify(OSError()) == "infrastructure"
        assert classify(pickle.PicklingError()) == "infrastructure"
        assert classify(ValueError()) == "fatal"

    def test_self_declared_retryable_repro_errors_are_transient(self):
        """A ReproError carrying ``retryable = True`` (the SQLite
        backend's SQLITE_BUSY wrapper) is transient without this module
        importing backend exception types."""
        from repro.backends import BackendBusyError, BackendError

        assert classify(BackendBusyError("database busy")) == "transient"
        assert classify(BackendError("query failed")) == "fatal"


# ----------------------------------------------------------------------
# Retry policy at the evaluator
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_exhausted_retries_become_infeasible_by_fault(self, problem):
        bundle, workload = problem
        install_fault_plan(FaultPlan([FaultRule("evaluate", 1.0)]))
        evaluator = MappingEvaluator(
            workload, bundle.stats, bundle.storage_bound,
            policy=RetryPolicy(max_attempts=3, backoff=0.0))
        mapping = hybrid_inlining(bundle.tree)
        assert evaluator.evaluate(mapping) is None
        counters = evaluator.counters
        assert counters.mappings_evaluated == 1
        assert counters.fault_retries == 2
        assert counters.faulted_evaluations == 1
        # A fault-caused None is never cached: the candidate stays
        # evaluable once the faults stop.
        install_fault_plan(NULL_PLAN)
        assert evaluator.cached(mapping) is None
        assert evaluator.evaluate(mapping) is not None

    def test_recovered_retry_is_counter_invisible(self, problem):
        bundle, workload = problem
        mapping = hybrid_inlining(bundle.tree)
        clean = MappingEvaluator(workload, bundle.stats,
                                 bundle.storage_bound)
        clean_result = clean.evaluate(mapping)
        # Half the attempts fail (seeded, deterministic); with 4
        # attempts per logical evaluation, recovery is the common case.
        install_fault_plan(FaultPlan([FaultRule("evaluate", 0.5)], seed=1))
        chaotic = MappingEvaluator(
            workload, bundle.stats, bundle.storage_bound, use_cache=False,
            policy=RetryPolicy(max_attempts=4, backoff=0.0))
        result = None
        attempts = 0
        while result is None and attempts < 20:
            attempts += 1
            result, _ = chaotic._execute_uncached(
                "exact", mapping, None, None)
        assert result is not None
        assert result.total_cost == clean_result.total_cost
        # Evaluations are counted once per logical evaluation, not per
        # attempt: retries only ever show up under fault_retries.
        assert chaotic.counters.mappings_evaluated == attempts
        assert chaotic.counters.fault_retries >= 1

    def test_fatal_faults_propagate(self, problem):
        bundle, workload = problem
        install_fault_plan(FaultPlan(
            [FaultRule("evaluate", 1.0, "fatal")]))
        evaluator = MappingEvaluator(workload, bundle.stats,
                                     bundle.storage_bound)
        with pytest.raises(InjectedFault):
            evaluator.evaluate(hybrid_inlining(bundle.tree))


# ----------------------------------------------------------------------
# Chaos determinism: retryable faults leave the result unchanged
# ----------------------------------------------------------------------


class TestChaosDeterminism:
    @pytest.fixture(scope="class")
    def baseline(self, problem):
        bundle, workload = problem
        return _fingerprint(GreedySearch(
            bundle.tree, workload, bundle.stats,
            bundle.storage_bound).run())

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_greedy_under_transient_faults(self, problem, baseline, jobs,
                                           monkeypatch):
        bundle, workload = problem
        monkeypatch.setenv("REPRO_RETRY_ATTEMPTS", "6")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        install_fault_plan("seed=13;evaluate:0.1:transient")
        chaotic = GreedySearch(bundle.tree, workload, bundle.stats,
                               bundle.storage_bound, jobs=jobs).run()
        assert _fingerprint(chaotic) == baseline
        if jobs == 1:
            # Deterministic at jobs=1: the seeded plan must actually
            # have fired (otherwise this test proves nothing).
            assert chaotic.counters.fault_retries > 0
        assert chaotic.counters.faulted_evaluations == 0


# ----------------------------------------------------------------------
# Deadline + pool degradation
# ----------------------------------------------------------------------


def _distinct_variants(base, count):
    """``count`` mappings with pairwise-distinct signatures, base first."""
    from repro.mapping import enumerate_transformations

    variants = [base]
    signatures = {base.signature()}
    for transformation in enumerate_transformations(base):
        try:
            mapping = transformation.apply(base)
        except Exception:
            continue
        if mapping.signature() in signatures:
            continue
        signatures.add(mapping.signature())
        variants.append(mapping)
        if len(variants) == count:
            break
    assert len(variants) == count
    return variants


class TestTimeoutDegradation:
    def test_hung_worker_times_out_and_pool_degrades(self, problem):
        bundle, workload = problem
        # Every worker's second-and-later evaluation hangs well past the
        # deadline; the first per worker stays fast. With 3 tasks on 2
        # workers, some worker must draw a second task.
        install_fault_plan(FaultPlan(
            [FaultRule("evaluate", 1.0, "hang", duration=3.0, after=1)]))
        evaluator = MappingEvaluator(
            workload, bundle.stats, bundle.storage_bound, jobs=2,
            policy=RetryPolicy(max_attempts=1, backoff=0.0, timeout=0.75))
        try:
            variants = _distinct_variants(hybrid_inlining(bundle.tree), 3)
            results = evaluator.evaluate_many(variants)
        finally:
            evaluator.close()
        counters = evaluator.counters
        # At least one task hit the deadline, the pool stepped down a
        # tier, and the batch still completed with aligned results.
        assert len(results) == len(variants)
        assert counters.timeouts >= 1
        assert counters.pool_degradations >= 1
        assert counters.faulted_evaluations >= 1

    def test_timed_out_candidate_is_not_cached(self, problem):
        bundle, workload = problem
        install_fault_plan(FaultPlan(
            [FaultRule("evaluate", 1.0, "hang", duration=2.0)]))
        evaluator = MappingEvaluator(
            workload, bundle.stats, bundle.storage_bound, jobs=2,
            policy=RetryPolicy(max_attempts=1, backoff=0.0, timeout=0.5))
        try:
            base, other = _distinct_variants(hybrid_inlining(bundle.tree), 2)
            results = evaluator.evaluate_many([base, other])
            assert None in results
            install_fault_plan(NULL_PLAN)
            assert evaluator.cached(base) is None or \
                evaluator.cached(other) is None
        finally:
            evaluator.close()


# ----------------------------------------------------------------------
# Persistent-cache resilience
# ----------------------------------------------------------------------


class TestCacheResilience:
    def test_torn_write_recovers_as_miss(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        key = CacheKey(problem="p" * 40, mapping="m" * 12)
        install_fault_plan(FaultPlan(
            [FaultRule("cache.write", 1.0, "torn")]))
        cache.put(key, {"cost": 123.0})
        install_fault_plan(NULL_PLAN)
        found, value = cache.get(key)
        assert not found and value is None
        assert cache.recoveries() == 1
        assert "corrupt entries recovered: 1" in cache.report()
        # The torn entry was unlinked: a clean re-put heals the store.
        cache.put(key, {"cost": 123.0})
        assert cache.get(key) == (True, {"cost": 123.0})

    def test_write_fault_degrades_to_noop(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        key = CacheKey(problem="p" * 40, mapping="m" * 12)
        install_fault_plan(FaultPlan([FaultRule("cache.write", 1.0)]))
        cache.put(key, 1)
        install_fault_plan(NULL_PLAN)
        assert cache.get(key) == (False, None)

    def test_read_fault_degrades_to_miss(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        key = CacheKey(problem="p" * 40, mapping="m" * 12)
        cache.put(key, 7)
        install_fault_plan(FaultPlan([FaultRule("cache.read", 1.0)]))
        assert cache.get(key) == (False, None)
        install_fault_plan(NULL_PLAN)
        assert cache.get(key) == (True, 7)

    def test_clear_resets_recovery_accounting(self, tmp_path):
        cache = EvaluationCache(tmp_path)
        key = CacheKey(problem="p" * 40, mapping="m" * 12)
        install_fault_plan(FaultPlan(
            [FaultRule("cache.write", 1.0, "torn")]))
        cache.put(key, 1)
        install_fault_plan(NULL_PLAN)
        cache.get(key)
        assert cache.recoveries() == 1
        cache.clear()
        assert cache.recoveries() == 0

    def test_torn_writes_never_poison_a_warm_search(self, problem,
                                                    tmp_path):
        """A cold run writing torn entries must not change the warm
        rerun's result: corrupt entries read back as misses and are
        recomputed."""
        bundle, workload = problem
        kwargs = dict(storage_bound=bundle.storage_bound)
        clean = GreedySearch(bundle.tree, workload, bundle.stats,
                             **kwargs).run()
        install_fault_plan("seed=3;cache.write:0.5:torn")
        cold = GreedySearch(bundle.tree, workload, bundle.stats,
                            cache=EvaluationCache(tmp_path), **kwargs).run()
        install_fault_plan(NULL_PLAN)
        warm = GreedySearch(bundle.tree, workload, bundle.stats,
                            cache=EvaluationCache(tmp_path), **kwargs).run()
        assert _fingerprint(cold) == _fingerprint(clean)
        assert _fingerprint(warm) == _fingerprint(clean)


# ----------------------------------------------------------------------
# Suppressed-failure accounting (the narrowed except blocks)
# ----------------------------------------------------------------------


class TestSuppressedFailures:
    def test_note_suppressed_counts_and_classifies(self):
        from repro.errors import MappingError
        from repro.resilience import note_suppressed

        tracer = Tracer()
        category = note_suppressed(MappingError("nope"), "greedy.x", tracer)
        assert category == "inapplicable"
        metrics = tracer.metric_snapshot()["resilience"]
        assert metrics["suppressed.inapplicable.greedy.x"] == 1
