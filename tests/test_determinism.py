"""Determinism guarantees: identical inputs give identical outputs.

DESIGN.md promises bit-for-bit reproducibility (the substitution for the
paper's wall-clock measurements); these tests pin it across the whole
pipeline.
"""

from repro.datasets import generate_dblp, generate_movies
from repro.experiments import DatasetBundle, measure_design
from repro.mapping import collect_statistics, derive_schema, hybrid_inlining
from repro.search import GreedySearch
from repro.workload import WorkloadGenerator
from repro.xmlkit import serialize


class TestGeneratorDeterminism:
    def test_dblp_documents_identical(self):
        a = serialize(generate_dblp(120, seed=3))
        b = serialize(generate_dblp(120, seed=3))
        assert a == b

    def test_movie_documents_identical(self):
        assert serialize(generate_movies(120, seed=4)) == \
            serialize(generate_movies(120, seed=4))

    def test_different_seeds_differ(self):
        assert serialize(generate_dblp(120, seed=3)) != \
            serialize(generate_dblp(120, seed=4))


class TestPipelineDeterminism:
    def test_search_and_measurement_reproducible(self):
        results = []
        for _ in range(2):
            bundle = DatasetBundle.dblp(scale=300, seed=5)
            workload = bundle.workload_generator(seed=6).generate(4)
            search = GreedySearch(bundle.tree, workload, bundle.stats,
                                  bundle.storage_bound)
            result = search.run()
            measured = measure_design(result, bundle)
            results.append((result.mapping.signature(),
                            tuple(result.applied),
                            round(result.estimated_cost, 9),
                            round(measured, 9)))
        assert results[0] == results[1]

    def test_derived_stats_reproducible(self):
        from repro.datasets import dblp_schema
        from repro.mapping import derive_table_stats
        snapshots = []
        for _ in range(2):
            tree = dblp_schema()
            doc = generate_dblp(150, seed=9)
            stats = collect_statistics(tree, doc)
            schema = derive_schema(hybrid_inlining(tree))
            derived = derive_table_stats(schema, stats)
            snapshots.append({
                name: (s.row_count,
                       tuple(sorted((c, cs.row_count, cs.null_count,
                                     cs.n_distinct)
                                    for c, cs in s.columns.items())))
                for name, s in derived.items()})
        assert snapshots[0] == snapshots[1]


class TestWhatIfNaming:
    """What-if database names must be derived from the mapping, not
    from object identity (``id()`` varies run to run and poisons any
    cache or trace keyed on the name)."""

    def test_stats_only_database_name_reproducible(self):
        from repro.datasets import dblp_schema
        from repro.search import build_stats_only_database
        names = []
        for _ in range(2):
            tree = dblp_schema()
            doc = generate_dblp(150, seed=9)
            stats = collect_statistics(tree, doc)
            schema = derive_schema(hybrid_inlining(tree))
            names.append(build_stats_only_database(schema, stats).name)
        assert names[0] == names[1]
        assert names[0].startswith("whatif:")

    def test_evaluated_database_name_tracks_mapping(self):
        from repro.datasets import dblp_schema
        from repro.search import MappingEvaluator, mapping_digest
        from repro.workload import Workload
        tree = dblp_schema()
        doc = generate_dblp(150, seed=9)
        stats = collect_statistics(tree, doc)
        wl = Workload.from_strings("w", ["/dblp/inproceedings/title"])
        mapping = hybrid_inlining(tree)
        evaluated = MappingEvaluator(wl, stats).evaluate(mapping)
        assert evaluated.database.name == f"whatif:{mapping_digest(mapping)}"
        # A structurally identical mapping built from scratch hashes
        # the same way.
        assert mapping_digest(hybrid_inlining(dblp_schema())) == \
            mapping_digest(mapping)
