"""The schema tree ``T(V, E, A)`` and its builder.

Structural conventions
----------------------

* A ``TAG`` node's children are its content particles, in order. A leaf
  element has a single ``SIMPLE`` child.
* ``REPETITION`` and ``OPTION`` nodes have exactly one child.
* ``CHOICE`` nodes have two or more children.
* ``SEQUENCE`` nodes are only produced by associativity groupings; the
  builder emits flat particle lists.

Any ``TAG`` node whose in-degree is not one in the paper's sense — the
root, and any element under a ``REPETITION`` — *must* carry a table
annotation in every mapping (they cannot be inlined into a parent row).
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..errors import SchemaTreeError
from .nodes import UNBOUNDED, BaseType, NodeKind, SchemaNode


class SchemaTree:
    """An immutable-structure schema tree.

    Build one with :class:`TreeBuilder` or the parsers in
    :mod:`repro.xsd.parser` / :mod:`repro.xsd.dtd`.
    """

    def __init__(self, nodes: list[SchemaNode], root_id: int, name: str = "schema"):
        self._nodes = nodes
        self.root_id = root_id
        self.name = name
        self._validate()

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> SchemaNode:
        """The node with the given id."""
        try:
            return self._nodes[node_id]
        except IndexError:
            raise SchemaTreeError(f"no node with id {node_id}") from None

    @property
    def root(self) -> SchemaNode:
        return self._nodes[self.root_id]

    @property
    def nodes(self) -> tuple[SchemaNode, ...]:
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def children(self, node: SchemaNode | int) -> list[SchemaNode]:
        if isinstance(node, int):
            node = self.node(node)
        return [self._nodes[cid] for cid in node.child_ids]

    def parent(self, node: SchemaNode | int) -> SchemaNode | None:
        if isinstance(node, int):
            node = self.node(node)
        if node.parent_id is None:
            return None
        return self._nodes[node.parent_id]

    def iter_nodes(self) -> Iterator[SchemaNode]:
        """Pre-order traversal from the root."""
        stack = [self.root_id]
        while stack:
            node = self._nodes[stack.pop()]
            yield node
            stack.extend(reversed(node.child_ids))

    def nodes_of_kind(self, kind: NodeKind) -> list[SchemaNode]:
        return [n for n in self.iter_nodes() if n.kind == kind]

    # ------------------------------------------------------------------
    # Classification helpers used by the mapping layer
    # ------------------------------------------------------------------
    def is_leaf_element(self, node: SchemaNode | int) -> bool:
        """True for a TAG node whose only non-attribute child is SIMPLE."""
        if isinstance(node, int):
            node = self.node(node)
        if node.kind != NodeKind.TAG:
            return False
        kids = [c for c in self.children(node)
                if c.kind != NodeKind.ATTRIBUTE]
        return len(kids) == 1 and kids[0].kind == NodeKind.SIMPLE

    def is_attribute(self, node: SchemaNode | int) -> bool:
        if isinstance(node, int):
            node = self.node(node)
        return node.kind == NodeKind.ATTRIBUTE

    def is_value_node(self, node: SchemaNode | int) -> bool:
        """Leaf element or attribute: anything holding one simple value."""
        return self.is_leaf_element(node) or self.is_attribute(node)

    def attributes_of(self, node: SchemaNode | int) -> list[SchemaNode]:
        """ATTRIBUTE children of a TAG node."""
        if isinstance(node, int):
            node = self.node(node)
        return [c for c in self.children(node)
                if c.kind == NodeKind.ATTRIBUTE]

    def leaf_base_type(self, node: SchemaNode | int) -> BaseType:
        """Base type of a leaf element or attribute."""
        if isinstance(node, int):
            node = self.node(node)
        if not self.is_value_node(node):
            raise SchemaTreeError(f"{node!r} is not a leaf element/attribute")
        simple = [c for c in self.children(node)
                  if c.kind == NodeKind.SIMPLE]
        base = simple[0].base_type
        assert base is not None
        return base

    def must_annotate(self, node: SchemaNode | int) -> bool:
        """Whether this TAG node must map to its own table in any mapping.

        Per Section 2: any node with in-degree not equal to one — the
        root, or an element under a ``*`` — must have an annotation.
        """
        if isinstance(node, int):
            node = self.node(node)
        if node.kind != NodeKind.TAG:
            return False
        if node.node_id == self.root_id:
            return True
        parent = self.parent(node)
        return parent is not None and parent.kind == NodeKind.REPETITION

    def nearest_tag_ancestor(self, node: SchemaNode | int) -> SchemaNode | None:
        """Closest enclosing TAG node (skipping constructor nodes)."""
        if isinstance(node, int):
            node = self.node(node)
        current = self.parent(node)
        while current is not None and current.kind != NodeKind.TAG:
            current = self.parent(current)
        return current

    def enclosing_repetition(self, node: SchemaNode | int) -> SchemaNode | None:
        """The REPETITION node directly above this node, if any.

        Constructor nodes (OPTION/CHOICE/SEQUENCE) between the node and
        the repetition are skipped, but a TAG boundary stops the walk.
        """
        if isinstance(node, int):
            node = self.node(node)
        current = self.parent(node)
        while current is not None and current.kind not in (NodeKind.TAG, NodeKind.REPETITION):
            current = self.parent(current)
        if current is not None and current.kind == NodeKind.REPETITION:
            return current
        return None

    def tag_path(self, node: SchemaNode | int) -> tuple[str, ...]:
        """Tag names from the root down to (and including) this node.

        Only TAG nodes contribute; constructor nodes are transparent.
        """
        if isinstance(node, int):
            node = self.node(node)
        names: list[str] = []
        current: SchemaNode | None = node
        while current is not None:
            if current.kind == NodeKind.TAG:
                names.append(current.name)
            current = self.parent(current)
        return tuple(reversed(names))

    def find_tags(self, name: str) -> list[SchemaNode]:
        """All TAG nodes with the given element name."""
        return [n for n in self.iter_nodes()
                if n.kind == NodeKind.TAG and n.name == name]

    def find_tag_by_path(self, path: tuple[str, ...] | list[str]) -> SchemaNode:
        """The unique TAG node at an absolute tag path (root included)."""
        matches = [n for n in self.iter_nodes()
                   if n.kind == NodeKind.TAG and self.tag_path(n) == tuple(path)]
        if not matches:
            raise SchemaTreeError(f"no element at path {'/'.join(path)!r}")
        if len(matches) > 1:
            raise SchemaTreeError(f"ambiguous path {'/'.join(path)!r}")
        return matches[0]

    # ------------------------------------------------------------------
    # Structural equivalence (for shared types / type merge)
    # ------------------------------------------------------------------
    def structural_signature(self, node: SchemaNode | int) -> tuple:
        """A hashable signature capturing the subtree's structure.

        Two nodes are *logically equivalent* (candidates for type merge /
        shared types) when their signatures are equal. Annotations are
        deliberately excluded.
        """
        if isinstance(node, int):
            node = self.node(node)
        children = tuple(self.structural_signature(c) for c in self.children(node))
        occurs = (node.min_occurs, node.max_occurs) if node.kind == NodeKind.REPETITION else ()
        base = node.base_type.value if node.base_type is not None else ""
        return (node.kind.value, node.name, base, occurs, children)

    def equivalent(self, a: SchemaNode | int, b: SchemaNode | int) -> bool:
        return self.structural_signature(a) == self.structural_signature(b)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._nodes:
            raise SchemaTreeError("schema tree has no nodes")
        root = self._nodes[self.root_id]
        if root.kind != NodeKind.TAG:
            raise SchemaTreeError("root node must be a TAG")
        for node in self._nodes:
            if node.node_id != self._nodes.index(node):
                pass  # ids are positional; enforced by the builder
            if node.kind in (NodeKind.REPETITION, NodeKind.OPTION):
                if len(node.child_ids) != 1:
                    raise SchemaTreeError(
                        f"{node.kind.value} node #{node.node_id} must have exactly one child")
            if node.kind == NodeKind.CHOICE and len(node.child_ids) < 2:
                raise SchemaTreeError(
                    f"choice node #{node.node_id} must have at least two children")
            if node.kind == NodeKind.ATTRIBUTE:
                parent = self.parent(node)
                if parent is None or parent.kind != NodeKind.TAG:
                    raise SchemaTreeError(
                        f"attribute node #{node.node_id} must sit on a TAG")
                kids = self.children(node)
                if len(kids) != 1 or kids[0].kind != NodeKind.SIMPLE:
                    raise SchemaTreeError(
                        f"attribute node #{node.node_id} needs one simple type")
            if node.kind == NodeKind.SIMPLE:
                if node.child_ids:
                    raise SchemaTreeError("simple nodes cannot have children")
                if node.base_type is None:
                    raise SchemaTreeError("simple nodes must carry a base type")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SchemaTree {self.name!r} nodes={len(self._nodes)}>"

    def pretty(self) -> str:
        """Human-readable indented dump (used in docs and debugging)."""
        lines: list[str] = []

        def walk(node: SchemaNode, depth: int) -> None:
            label = node.name or node.kind.value
            marks = ""
            if node.kind == NodeKind.REPETITION:
                bound = "*" if node.max_occurs == UNBOUNDED else str(node.max_occurs)
                marks = f" [{node.min_occurs}..{bound}]"
            if node.annotation:
                marks += f" ({node.annotation})"
            lines.append("  " * depth + f"{node.kind.value}:{label}{marks}")
            for child in self.children(node):
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


class TreeBuilder:
    """Fluent builder for schema trees.

    Example::

        b = TreeBuilder("movie-db")
        movies = b.tag("movies", annotation="movies")
        movie = b.tag("movie", parent=b.rep(movies), annotation="movie")
        b.leaf("title", movie)
        b.leaf("year", movie, BaseType.INTEGER)
        tree = b.build(root=movies)
    """

    def __init__(self, name: str = "schema"):
        self.name = name
        self._nodes: list[SchemaNode] = []

    def _add(self, kind: NodeKind, parent: SchemaNode | None, **kwargs) -> SchemaNode:
        node = SchemaNode(node_id=len(self._nodes), kind=kind, **kwargs)
        if parent is not None:
            node.parent_id = parent.node_id
            parent.child_ids.append(node.node_id)
        self._nodes.append(node)
        return node

    def tag(self, name: str, parent: SchemaNode | None = None,
            annotation: str | None = None) -> SchemaNode:
        return self._add(NodeKind.TAG, parent, name=name, annotation=annotation)

    def rep(self, parent: SchemaNode, min_occurs: int = 0,
            max_occurs: int = UNBOUNDED) -> SchemaNode:
        return self._add(NodeKind.REPETITION, parent,
                         min_occurs=min_occurs, max_occurs=max_occurs)

    def opt(self, parent: SchemaNode) -> SchemaNode:
        return self._add(NodeKind.OPTION, parent, min_occurs=0, max_occurs=1)

    def choice(self, parent: SchemaNode) -> SchemaNode:
        return self._add(NodeKind.CHOICE, parent)

    def seq(self, parent: SchemaNode) -> SchemaNode:
        return self._add(NodeKind.SEQUENCE, parent)

    def attribute(self, name: str, parent: SchemaNode,
                  base_type: BaseType = BaseType.STRING,
                  required: bool = False) -> SchemaNode:
        """Declare an XML attribute on a TAG node.

        ``min_occurs`` encodes use: 1 = required, 0 = optional.
        """
        node = self._add(NodeKind.ATTRIBUTE, parent, name=name,
                         min_occurs=1 if required else 0, max_occurs=1)
        self.simple(node, base_type)
        return node

    def simple(self, parent: SchemaNode, base_type: BaseType = BaseType.STRING) -> SchemaNode:
        return self._add(NodeKind.SIMPLE, parent, name=base_type.value,
                         base_type=base_type)

    def leaf(self, name: str, parent: SchemaNode,
             base_type: BaseType = BaseType.STRING,
             annotation: str | None = None) -> SchemaNode:
        """Create ``<name>`` as a leaf element with a simple type."""
        tag = self.tag(name, parent, annotation=annotation)
        self.simple(tag, base_type)
        return tag

    def optional_leaf(self, name: str, parent: SchemaNode,
                      base_type: BaseType = BaseType.STRING) -> SchemaNode:
        """Create ``<name>?`` — returns the TAG node."""
        option = self.opt(parent)
        return self.leaf(name, option, base_type)

    def repeated_leaf(self, name: str, parent: SchemaNode,
                      base_type: BaseType = BaseType.STRING,
                      annotation: str | None = None,
                      max_occurs: int = UNBOUNDED) -> SchemaNode:
        """Create ``<name>*`` — returns the TAG node (annotated)."""
        rep = self.rep(parent, max_occurs=max_occurs)
        return self.leaf(name, rep, base_type, annotation=annotation or name)

    def build(self, root: SchemaNode) -> SchemaTree:
        return SchemaTree(self._nodes, root.node_id, name=self.name)


def walk_particles(tree: SchemaTree, tag: SchemaNode,
                   visit: Callable[[SchemaNode], None]) -> None:
    """Visit every descendant particle of ``tag`` without crossing into
    nested TAG subtrees (their particles belong to the nested element)."""
    stack = list(reversed(tree.children(tag)))
    while stack:
        node = stack.pop()
        visit(node)
        if node.kind != NodeKind.TAG:
            stack.extend(reversed(tree.children(node)))
