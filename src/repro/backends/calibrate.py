"""Cost-model calibration against measured SQLite execution times.

The paper's Fig. 4 story rests on the optimizer's *estimated* costs
ranking designs the same way a real DBMS's *measured* execution times
do (Greedy ~2x faster than Two-Step, ~20x over considering the logical
design alone). This module closes the loop end to end:

1. run the design searches (greedy, two-step) plus the logical-only
   baseline (the starting mapping with **no** physical structures),
2. realize every design in SQLite — bulk-load, real CREATE INDEX,
   populated view tables — and time the workload with warmup and
   repetition,
3. report the Spearman rank correlation between estimated cost and
   measured wall-clock time, at design granularity and across all
   (design, query) points.

A positive correlation is the end-to-end check that the deterministic
cost counter is a faithful stand-in for a real DBMS on this workload.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..mapping import MappedSchema, derive_schema, hybrid_inlining
from ..obs import NullTracer, Tracer, get_tracer
from ..physdesign import Configuration
from ..search import GreedySearch, TwoStepSearch
from ..search.evaluator import build_stats_only_database
from ..sqlast import Query
from ..translate import Translator
from ..workload import Workload
from .sqlite import SQLiteBackend


def _ranks(values: list[float]) -> list[float]:
    """Average ranks (1-based), ties sharing their mean rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and \
                values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: list[float], ys: list[float]) -> float:
    """Spearman rank correlation with average ranks for ties."""
    if len(xs) != len(ys) or len(xs) < 2:
        return 0.0
    rx, ry = _ranks(xs), _ranks(ys)
    mx = sum(rx) / len(rx)
    my = sum(ry) / len(ry)
    num = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    dx = math.sqrt(sum((a - mx) ** 2 for a in rx))
    dy = math.sqrt(sum((b - my) ** 2 for b in ry))
    if dx == 0.0 or dy == 0.0:
        return 0.0
    return num / (dx * dy)


@dataclass
class QueryPoint:
    """One (design, query) calibration point."""

    design: str
    query_index: int
    weight: float
    estimated_cost: float
    measured_seconds: float
    rows: int


@dataclass
class DesignPoint:
    """One design's estimate-vs-measurement summary."""

    label: str
    schema: MappedSchema
    configuration: Configuration
    sql_queries: list[tuple[Query, float]]
    estimated_cost: float
    measured_seconds: float = 0.0
    queries: list[QueryPoint] = field(default_factory=list)


@dataclass
class CalibrationReport:
    """Estimated cost vs measured SQLite time across designs."""

    dataset: str
    workload: str
    repeat: int
    warmup: int
    designs: list[DesignPoint] = field(default_factory=list)

    @property
    def design_rank_correlation(self) -> float:
        return spearman([d.estimated_cost for d in self.designs],
                        [d.measured_seconds for d in self.designs])

    @property
    def query_rank_correlation(self) -> float:
        points = [q for d in self.designs for q in d.queries]
        return spearman([q.estimated_cost for q in points],
                        [q.measured_seconds for q in points])

    def design(self, label: str) -> DesignPoint:
        for point in self.designs:
            if point.label == label:
                return point
        raise KeyError(label)

    def describe(self) -> str:
        lines = [f"calibration — {self.dataset} / {self.workload} "
                 f"(repeat={self.repeat}, warmup={self.warmup})",
                 f"{'design':<14} {'est. cost':>12} {'measured s':>12} "
                 f"{'structures':>10}"]
        for d in sorted(self.designs, key=lambda d: d.measured_seconds):
            lines.append(f"{d.label:<14} {d.estimated_cost:>12.1f} "
                         f"{d.measured_seconds:>12.4f} "
                         f"{len(d.configuration):>10}")
        lines.append(f"rank correlation (designs):        "
                     f"{self.design_rank_correlation:+.3f}")
        lines.append(f"rank correlation (design x query): "
                     f"{self.query_rank_correlation:+.3f}")
        return "\n".join(lines)


def logical_only_design(tree, workload: Workload, collected) -> DesignPoint:
    """The baseline that ignores physical design entirely.

    The default (hybrid inlining) mapping with no indexes or views;
    estimated per-query costs come from the same what-if optimizer the
    searches use, on a stats-only database.
    """
    mapping = hybrid_inlining(tree)
    schema = derive_schema(mapping)
    translator = Translator(schema)
    sql_queries = [(translator.translate(q.query), q.weight)
                   for q in workload.queries]
    db = build_stats_only_database(schema, collected)
    db.build_primary_key_indexes()
    estimated = sum(weight * db.estimate(query).est_cost
                    for query, weight in sql_queries)
    return DesignPoint(label="logical-only", schema=schema,
                       configuration=Configuration(),
                       sql_queries=sql_queries, estimated_cost=estimated)


def _search_design(label: str, search_cls, tree, workload, collected,
                   storage_bound, tracer) -> DesignPoint:
    search = search_cls(tree, workload, collected,
                        storage_bound=storage_bound, tracer=tracer)
    result = search.run()
    return DesignPoint(label=label, schema=result.schema,
                       configuration=result.configuration,
                       sql_queries=result.sql_queries,
                       estimated_cost=result.estimated_cost)


def fill_query_estimates(point: DesignPoint, collected) -> None:
    """Per-query what-if costs of the design (query-level points).

    Uses the same machinery as the searches: a stats-only database with
    statistics derived from the fully-split collection, the design's
    indexes as hypothetical extras, and its views re-derived from the
    base-table statistics.
    """
    from ..engine.matview import derive_view_stats

    db = build_stats_only_database(point.schema, collected,
                                   name=f"calibrate:{point.label}")
    db.build_primary_key_indexes()
    for view in point.configuration.views:
        db.stats.set_table(view.name, derive_view_stats(
            view.table, view.definition, db.stats))
    extra_indexes = list(point.configuration.indexes)
    extra_tables = point.configuration.extra_tables()
    point.queries = [
        QueryPoint(
            design=point.label, query_index=index, weight=weight,
            estimated_cost=db.estimate(
                query, extra_indexes=extra_indexes,
                extra_tables=extra_tables).est_cost,
            measured_seconds=0.0, rows=0)
        for index, (query, weight) in enumerate(point.sql_queries)]


def measure_on_sqlite(point: DesignPoint, docs, repeat: int = 3,
                      warmup: int = 1,
                      tracer: Tracer | NullTracer | None = None) -> None:
    """Fill a design point's measured timings from a fresh SQLite load."""
    with SQLiteBackend(tracer=tracer) as backend:
        backend.load(point.schema, docs)
        backend.apply_configuration(point.configuration)
        total = 0.0
        for index, (query, weight) in enumerate(point.sql_queries):
            timing = backend.time_query(query, repeat=repeat, warmup=warmup)
            total += weight * timing.seconds
            if index < len(point.queries):
                point.queries[index].measured_seconds = timing.seconds
                point.queries[index].rows = timing.rows
        point.measured_seconds = total


def run_calibration(bundle, workload: Workload,
                    algorithms: tuple[str, ...] = ("greedy", "two-step"),
                    repeat: int = 3, warmup: int = 1,
                    tracer: Tracer | NullTracer | None = None
                    ) -> CalibrationReport:
    """The `repro calibrate` entry point.

    ``bundle`` is a :class:`repro.experiments.DatasetBundle`; the report
    covers the searches' designs plus the logical-only baseline.
    """
    tracer = tracer if tracer is not None else get_tracer()
    searches = {"greedy": GreedySearch, "two-step": TwoStepSearch}
    report = CalibrationReport(dataset=bundle.name, workload=workload.name,
                               repeat=repeat, warmup=warmup)
    with tracer.span("calibrate", dataset=bundle.name,
                     workload=workload.name):
        points = [logical_only_design(bundle.tree, workload, bundle.stats)]
        for label in algorithms:
            points.append(_search_design(
                label, searches[label], bundle.tree, workload,
                bundle.stats, bundle.storage_bound, tracer))
        for point in points:
            fill_query_estimates(point, bundle.stats)
            measure_on_sqlite(point, bundle.docs, repeat=repeat,
                              warmup=warmup, tracer=tracer)
        report.designs = points
    return report
