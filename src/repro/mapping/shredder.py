"""Shred XML documents into relational rows under a mapping.

Every element receives a globally unique integer ID in document order;
annotated elements become rows (ID, PID, columns...), inlined leaves
become column values in their owner's row, repetition-split leaves fill
the ``name_1 .. name_k`` columns with the overflow going to the leaf's
own table, and union-distributed owners are routed to the partition
whose condition matches the instance's optional/choice signature.

Streaming
---------

The shredder is a *generator* at its core: :meth:`Shredder.shred_rows`
walks the document and yields one ``(table_name, row)`` pair per
produced row, in emission order, holding only the current root-to-leaf
path of open row contexts. Everything else is a view over that stream:

* :meth:`Shredder.shred` drains it into ``{table: [rows]}`` (the eager
  form — unchanged behaviour);
* :meth:`Shredder.shred_iter` groups it into per-table batches of at
  most ``batch_size`` rows, so peak memory is bounded by the batch
  size, not the document size;
* :func:`shred_typed_batches` applies column-type coercion per batch —
  the shared typed streaming step — and :func:`shred_typed_rows` drains
  it eagerly.

Because eager and streaming forms consume the *same* generator, their
rows (values, IDs, and per-table order) are identical by construction.

ID contract
-----------

Element IDs restart at 1 on every ``shred*`` call, so reusing one
:class:`Shredder` produces exactly the rows a fresh instance would —
the invariant :func:`shred_typed_rows` and the execution backends rely
on. An *incremental* shred (several calls loading into one database)
passes ``continue_ids=True`` to keep numbering where the previous call
stopped; a multi-document list inside one call always numbers
continuously across the documents.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from ..errors import ShreddingError
from ..xmlkit import Document, Element
from ..xsd import NodeKind, SchemaNode, SchemaTree
from .relschema import (BranchCondition, MappedSchema, PartitionSpec,
                        PresenceCondition, TableGroup)

#: Rows buffered per table before a streaming batch is emitted.
DEFAULT_BATCH_SIZE = 5000

#: One emitted (table, row) pair.
RowEvent = tuple[str, tuple]


@dataclass
class _DispatchEntry:
    """How to handle one child tag inside a TAG node's content region."""

    node: SchemaNode
    optional_ids: frozenset[int]
    choice_branch: tuple[int, int] | None  # (choice_id, branch_index)
    kind: str  # 'annotated' | 'leaf' | 'split-leaf' | 'inline-complex'
    column: str | None = None
    split_columns: tuple[str, ...] = ()
    overflow_annotation: str | None = None
    overflow_value_column: str | None = None
    # (attribute name, column) pairs for inlined leaf children whose
    # attributes map into the owner's row.
    attr_columns: tuple[tuple[str, str], ...] = ()


@dataclass
class _RowContext:
    """State accumulated while filling one owner row."""

    element_id: int
    values: dict[str, object] = field(default_factory=dict)
    present_optionals: set[int] = field(default_factory=set)
    choices: dict[int, int] = field(default_factory=dict)
    split_counts: dict[int, int] = field(default_factory=dict)
    filled_leaves: set[int] = field(default_factory=set)


class Shredder:
    """Shreds documents according to one :class:`MappedSchema`."""

    def __init__(self, schema: MappedSchema):
        self.schema = schema
        self.tree: SchemaTree = schema.tree
        self._dispatch_cache: dict[int, dict[str, _DispatchEntry]] = {}
        self._next_id = 1

    # ------------------------------------------------------------------
    def shred(self, docs, *,
              continue_ids: bool = False) -> dict[str, list[tuple]]:
        """Shred one document or a list; returns rows per table name."""
        rows: dict[str, list[tuple]] = {name: []
                                        for name in self.schema.table_names}
        for table_name, row in self.shred_rows(docs,
                                               continue_ids=continue_ids):
            rows[table_name].append(row)
        return rows

    def shred_rows(self, docs, *,
                   continue_ids: bool = False) -> Iterator[RowEvent]:
        """Yield ``(table_name, row)`` pairs in emission order.

        The streaming core: child rows are emitted while their owner's
        region is being filled, and the owner's own row once its region
        is complete, so memory is bounded by the open root-to-leaf path
        (plus the current child subtree), never the document.

        IDs restart at 1 unless ``continue_ids=True`` (see the module
        docstring for the contract).
        """
        if not continue_ids:
            self.reset_ids()
        if isinstance(docs, (Document, Element)):
            docs = [docs]
        for doc in docs:
            root = doc.root if isinstance(doc, Document) else doc
            schema_root = self.tree.root
            if root.tag != schema_root.name:
                raise ShreddingError(
                    f"document root <{root.tag}> does not match schema "
                    f"root <{schema_root.name}>")
            yield from self._shred_annotated(root, schema_root,
                                             parent_id=None)

    def shred_iter(self, docs, batch_size: int = DEFAULT_BATCH_SIZE, *,
                   continue_ids: bool = False
                   ) -> Iterator[tuple[str, list[tuple]]]:
        """Yield ``(table_name, rows)`` batches with bounded memory.

        A batch is emitted as soon as one table accumulates
        ``batch_size`` rows; the remainders are flushed in mapped-schema
        table order at the end. Concatenating the batches per table
        reproduces :meth:`shred` exactly (same rows, same order).
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1 (got {batch_size})")
        buffers: dict[str, list[tuple]] = {}
        for table_name, row in self.shred_rows(docs,
                                               continue_ids=continue_ids):
            buffer = buffers.setdefault(table_name, [])
            buffer.append(row)
            if len(buffer) >= batch_size:
                del buffers[table_name]
                yield table_name, buffer
        for table_name in self.schema.table_names:
            buffer = buffers.get(table_name)
            if buffer:
                yield table_name, buffer

    def reset_ids(self, start: int = 1) -> None:
        """Restart ID numbering (``start`` seeds an append-load that must
        continue above the IDs already stored — see SQLiteBackend.load)."""
        self._next_id = start

    # ------------------------------------------------------------------
    def _new_id(self) -> int:
        element_id = self._next_id
        self._next_id += 1
        return element_id

    def _shred_annotated(self, element: Element, node: SchemaNode,
                         parent_id: int | None) -> Iterator[RowEvent]:
        group = self._group_of(node)
        ctx = _RowContext(element_id=self._new_id())
        ctx.values["ID"] = ctx.element_id
        ctx.values["PID"] = parent_id
        self._apply_attributes(element, node, ctx)
        if self.tree.is_leaf_element(node):
            storage = self.schema.storage_of(node.node_id)
            assert storage.value_column is not None
            ctx.values[storage.value_column] = element.text
        else:
            yield from self._fill_region(element, node, ctx)
        partition = self._route(group, ctx, node)
        row = tuple(ctx.values.get(name) for name in partition.column_names)
        yield partition.table_name, row

    def _group_of(self, node: SchemaNode) -> TableGroup:
        annotation = self.schema.mapping.annotation_of(node.node_id)
        if annotation is None:
            raise ShreddingError(
                f"internal error: node #{node.node_id} is not annotated")
        return self.schema.group(annotation)

    # ------------------------------------------------------------------
    def _fill_region(self, element: Element, node: SchemaNode,
                     ctx: _RowContext) -> Iterator[RowEvent]:
        dispatch = self._dispatch_for(node)
        # Iterating the element itself (not .children) keeps a lazy
        # root's child list unmaterialized on the streaming path.
        for child in element:
            entry = dispatch.get(child.tag)
            if entry is None:
                raise ShreddingError(
                    f"unexpected element <{child.tag}> under "
                    f"<{element.tag}> for this mapping")
            ctx.present_optionals |= entry.optional_ids
            if entry.choice_branch is not None:
                choice_id, branch = entry.choice_branch
                ctx.choices[choice_id] = branch
            if entry.kind == "annotated":
                yield from self._shred_annotated(child, entry.node,
                                                 ctx.element_id)
            elif entry.kind == "leaf":
                if entry.node.node_id in ctx.filled_leaves:
                    raise ShreddingError(
                        f"leaf <{child.tag}> occurs more than once in one "
                        f"<{element.tag}> instance but is mapped to the "
                        f"single column {entry.column!r}; a repeated leaf "
                        f"needs a repetition (split or outlined) in the "
                        f"mapping")
                ctx.filled_leaves.add(entry.node.node_id)
                ctx.values[entry.column] = child.text
                for attr_name, column in entry.attr_columns:
                    if attr_name in child.attributes:
                        ctx.values[column] = child.attributes[attr_name]
            elif entry.kind == "split-leaf":
                count = ctx.split_counts.get(entry.node.node_id, 0) + 1
                ctx.split_counts[entry.node.node_id] = count
                if count <= len(entry.split_columns):
                    ctx.values[entry.split_columns[count - 1]] = child.text
                else:
                    overflow_group = self.schema.group(
                        entry.overflow_annotation)
                    partition = overflow_group.partitions[0]
                    values = {"ID": self._new_id(), "PID": ctx.element_id,
                              entry.overflow_value_column: child.text}
                    yield partition.table_name, tuple(
                        values.get(name) for name in partition.column_names)
            elif entry.kind == "inline-complex":
                self._apply_attributes(child, entry.node, ctx)
                yield from self._fill_region(child, entry.node, ctx)
        # Values are stored as text; column typing happens at load time.

    def _apply_attributes(self, element: Element, node: SchemaNode,
                          ctx: _RowContext) -> None:
        """Write the element's attribute values into the current row."""
        for attr in self.tree.attributes_of(node):
            column = self.schema.column_of_leaf.get(attr.node_id)
            if column is None:
                continue
            value = element.attributes.get(attr.name)
            if value is not None:
                ctx.values[column] = value

    # ------------------------------------------------------------------
    def _dispatch_for(self, node: SchemaNode) -> dict[str, _DispatchEntry]:
        cached = self._dispatch_cache.get(node.node_id)
        if cached is not None:
            return cached
        dispatch: dict[str, _DispatchEntry] = {}
        annotation_map = self.schema.mapping.annotation_map
        split_map = self.schema.mapping.split_map
        tree = self.tree

        def walk(current: SchemaNode, optional_ids: frozenset[int],
                 choice_branch) -> None:
            for child in tree.children(current):
                if child.kind == NodeKind.SIMPLE:
                    continue
                if child.kind == NodeKind.TAG:
                    self._add_entry(dispatch, child, optional_ids,
                                    choice_branch, annotation_map)
                elif child.kind == NodeKind.OPTION:
                    walk(child, optional_ids | {child.node_id}, choice_branch)
                elif child.kind == NodeKind.CHOICE:
                    for index, branch in enumerate(tree.children(child)):
                        if branch.kind == NodeKind.TAG:
                            self._add_entry(dispatch, branch, optional_ids,
                                            (child.node_id, index),
                                            annotation_map)
                        else:
                            walk_branch(branch, optional_ids,
                                        (child.node_id, index))
                elif child.kind == NodeKind.SEQUENCE:
                    walk(child, optional_ids, choice_branch)
                elif child.kind == NodeKind.REPETITION:
                    leaf = tree.children(child)[0]
                    split = split_map.get(child.node_id)
                    if split is not None and tree.is_leaf_element(leaf):
                        storage = self.schema.storage_of(leaf.node_id)
                        overflow = self.schema.group(storage.own_annotation)
                        dispatch[leaf.name] = _DispatchEntry(
                            node=leaf, optional_ids=optional_ids,
                            choice_branch=choice_branch, kind="split-leaf",
                            split_columns=storage.split_columns,
                            overflow_annotation=storage.own_annotation,
                            overflow_value_column=storage.value_column)
                    else:
                        # The repeated element is annotated.
                        self._add_entry(dispatch, leaf, optional_ids,
                                        choice_branch, annotation_map)

        def walk_branch(current: SchemaNode, optional_ids, choice_branch):
            walk(current, optional_ids, choice_branch)

        walk(node, frozenset(), None)
        self._dispatch_cache[node.node_id] = dispatch
        return dispatch

    def _add_entry(self, dispatch, child: SchemaNode,
                   optional_ids: frozenset[int], choice_branch,
                   annotation_map: dict[int, str]) -> None:
        tree = self.tree
        attr_columns: tuple[tuple[str, str], ...] = ()
        if child.node_id in annotation_map:
            kind, column = "annotated", None
        elif tree.is_leaf_element(child):
            kind = "leaf"
            column = self.schema.column_of_leaf.get(child.node_id)
            if column is None:
                raise ShreddingError(
                    f"leaf #{child.node_id} <{child.name}> has no column")
            attr_columns = tuple(
                (attr.name, self.schema.column_of_leaf[attr.node_id])
                for attr in tree.attributes_of(child)
                if attr.node_id in self.schema.column_of_leaf)
        else:
            kind, column = "inline-complex", None
        if child.name in dispatch:
            raise ShreddingError(
                f"ambiguous element name <{child.name}> in one content "
                f"region; not supported by the shredder")
        dispatch[child.name] = _DispatchEntry(
            node=child, optional_ids=optional_ids,
            choice_branch=choice_branch, kind=kind, column=column,
            attr_columns=attr_columns)

    # ------------------------------------------------------------------
    def _route(self, group: TableGroup, ctx: _RowContext,
               node: SchemaNode) -> PartitionSpec:
        if len(group.partitions) == 1:
            return group.partitions[0]
        for partition in group.partitions:
            if all(self._condition_holds(c, ctx)
                   for c in partition.conditions):
                return partition
        raise ShreddingError(
            f"no partition of {group.annotation!r} matches instance "
            f"#{ctx.element_id} of <{node.name}>")

    @staticmethod
    def _condition_holds(condition, ctx: _RowContext) -> bool:
        if isinstance(condition, BranchCondition):
            return ctx.choices.get(condition.choice_id) == condition.branch_index
        if isinstance(condition, PresenceCondition):
            overlap = bool(ctx.present_optionals & condition.optional_ids)
            return overlap == condition.present
        raise ShreddingError(f"unknown condition {condition!r}")


def shred_typed_batches(schema: MappedSchema, docs,
                        batch_size: int = DEFAULT_BATCH_SIZE, *,
                        continue_ids: bool = False,
                        shredder: Shredder | None = None
                        ) -> Iterator[tuple[str, list[tuple]]]:
    """Stream *typed* row batches per table with bounded memory.

    The streaming twin of :func:`shred_typed_rows`: each batch of
    shredded text rows has its column SQL-type coercions applied before
    it is yielded, so any execution backend can load arbitrarily large
    documents while holding at most ``batch_size`` rows per table.
    Both functions share this code path, which is what keeps eager and
    streaming loads byte-identical at the data layer.
    """
    engine_tables = {t.name: t for t in schema.to_engine_tables()}
    coercers = {name: [c.sql_type.coerce for c in table.columns]
                for name, table in engine_tables.items()}
    if shredder is None:
        shredder = Shredder(schema)
    for table_name, rows in shredder.shred_iter(docs, batch_size,
                                                continue_ids=continue_ids):
        coerce_row = coercers[table_name]
        yield table_name, [
            tuple(coerce(v) for coerce, v in zip(coerce_row, row))
            for row in rows]


def shred_typed_rows(schema: MappedSchema, docs) -> dict[str, list[tuple]]:
    """Shred documents into *typed* rows per table name.

    Shredded values are text; this applies each column's SQL-type
    coercion, producing the exact rows any execution backend (the
    in-memory engine, SQLite, ...) should load. It drains
    :func:`shred_typed_batches`, so the eager and streaming load paths
    see byte-identical rows by construction.
    """
    typed_by_table: dict[str, list[tuple]] = {
        name: [] for name in schema.table_names}
    for table_name, batch in shred_typed_batches(schema, docs):
        typed_by_table[table_name].extend(batch)
    return typed_by_table


def load_documents(db, schema: MappedSchema, docs,
                   analyze: bool = True,
                   batch_size: int = DEFAULT_BATCH_SIZE) -> None:
    """Shred documents and load (typed) rows into an engine database.

    Tables are created from the mapped schema if absent. Rows stream
    through :func:`shred_typed_batches`, so only the loaded database —
    never a second full copy of the shredded rows — is held in memory.
    """
    existing = set(db.catalog.tables)
    for table in schema.to_engine_tables():
        if table.name not in existing:
            db.register_table(table)
        # Materialize every mapped table (streaming only emits non-empty
        # batches; a zero-row table must still become executable, not
        # stats-only).
        db.insert_rows(table.name, [])
    for table_name, typed in shred_typed_batches(schema, docs, batch_size):
        db.insert_rows(table_name, typed)
    if analyze:
        db.analyze()
        db.build_primary_key_indexes()
