"""Cost model constants and the runtime cost counter.

The optimizer *estimates* and the executor *measures* in the same unit:
abstract cost where one sequential page read costs 1.0. Random page
reads cost more (seek penalty), CPU work costs a small per-tuple amount.
Because both sides use identical constants, measured workload "execution
time" is deterministic and directly comparable to optimizer estimates —
the property every experiment in the paper relies on (all results are
ratios between configurations).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# One sequential page read = 1.0 cost units.
SEQ_PAGE_COST = 1.0
# A random page read (index traversal, row fetch) is ~4x a sequential one.
RANDOM_PAGE_COST = 4.0
# CPU cost of processing one tuple through an operator. The CPU
# constants are kept low relative to page I/O: the paper's testbed
# (100 MB of data, 2003-era disk) is I/O-bound, and its headline
# orderings (e.g. the Section 1.1 reversal without indexes) only hold in
# an I/O-dominated regime.
CPU_TUPLE_COST = 0.002
# CPU cost of one predicate evaluation / comparison.
CPU_OPERATOR_COST = 0.001
# CPU cost of hashing / probing one tuple.
HASH_TUPLE_COST = 0.002
# Sort cost multiplier: SORT_FACTOR * n * log2(n) comparisons.
SORT_FACTOR = CPU_OPERATOR_COST


@dataclass
class CostCounter:
    """Accumulates measured work during plan execution."""

    seq_pages: float = 0.0
    random_pages: float = 0.0
    cpu_tuples: int = 0
    cpu_operations: int = 0
    hash_tuples: int = 0
    sort_comparisons: float = 0.0

    def charge_seq_pages(self, pages: float) -> None:
        self.seq_pages += pages

    def charge_random_pages(self, pages: float) -> None:
        self.random_pages += pages

    def charge_tuples(self, count: int = 1) -> None:
        self.cpu_tuples += count

    def charge_operations(self, count: int = 1) -> None:
        self.cpu_operations += count

    def charge_hash(self, count: int = 1) -> None:
        self.hash_tuples += count

    def charge_sort(self, comparisons: float) -> None:
        self.sort_comparisons += comparisons

    @property
    def total(self) -> float:
        """Total abstract cost (the unit every experiment reports)."""
        return (self.seq_pages * SEQ_PAGE_COST
                + self.random_pages * RANDOM_PAGE_COST
                + self.cpu_tuples * CPU_TUPLE_COST
                + self.cpu_operations * CPU_OPERATOR_COST
                + self.hash_tuples * HASH_TUPLE_COST
                + self.sort_comparisons * SORT_FACTOR)

    def merge(self, other: "CostCounter") -> None:
        self.seq_pages += other.seq_pages
        self.random_pages += other.random_pages
        self.cpu_tuples += other.cpu_tuples
        self.cpu_operations += other.cpu_operations
        self.hash_tuples += other.hash_tuples
        self.sort_comparisons += other.sort_comparisons
