"""Index objects: definitions, size model, and B+-tree builds.

An index is defined by its key columns plus optional *included* columns
(non-key columns stored in the leaves). An index **covers** a query's
references to its table when every referenced column appears among key,
included, or the table's primary key — exactly the covering-index notion
of the paper's footnote 2: the query "can be evaluated from the index
only, without accessing the table".

Indexes may be *hypothetical* ("what-if"): fully costable from statistics
but never built. The tuning advisor works exclusively with hypothetical
indexes and only materializes the final recommendation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import CatalogError
from .btree import BPlusTree
from .schema import Table
from .types import INDEX_ENTRY_OVERHEAD, PAGE_FILL_FACTOR, PAGE_SIZE


@dataclass
class Index:
    """A (possibly hypothetical) secondary or clustered index."""

    name: str
    table_name: str
    key_columns: tuple[str, ...]
    included_columns: tuple[str, ...] = ()
    clustered: bool = False
    hypothetical: bool = False
    _tree: BPlusTree | None = field(default=None, repr=False, compare=False)
    _table: Table | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise CatalogError(f"index {self.name!r} needs key columns")
        overlap = set(self.key_columns) & set(self.included_columns)
        if overlap:
            raise CatalogError(
                f"index {self.name!r}: columns {sorted(overlap)} are both "
                f"key and included")

    # ------------------------------------------------------------------
    # Coverage
    # ------------------------------------------------------------------
    @property
    def all_columns(self) -> tuple[str, ...]:
        return self.key_columns + self.included_columns

    def covers(self, columns: set[str], table: Table) -> bool:
        """Whether all ``columns`` can be answered from this index alone."""
        available = set(self.all_columns)
        if self.clustered:
            return True  # clustered leaves are the rows themselves
        if table.primary_key:
            available.add(table.primary_key)  # row locator is in the leaf
        return columns <= available

    # ------------------------------------------------------------------
    # Size / shape model (works for hypothetical indexes too)
    # ------------------------------------------------------------------
    def entry_width(self, table: Table) -> int:
        width = INDEX_ENTRY_OVERHEAD
        for name in self.all_columns:
            width += table.column(name).width
        if not self.clustered and table.primary_key and \
                table.primary_key not in self.all_columns:
            width += table.column(table.primary_key).width
        return width

    def leaf_page_count(self, table: Table) -> int:
        if self.clustered:
            return table.page_count
        usable = PAGE_SIZE * PAGE_FILL_FACTOR
        per_page = max(1, int(usable // self.entry_width(table)))
        return max(1, math.ceil(table.row_count / per_page))

    def page_count(self, table: Table) -> int:
        """Leaf plus internal pages."""
        leaf = self.leaf_page_count(table)
        fanout = self.fanout(table)
        total, level = leaf, leaf
        while level > 1:
            level = math.ceil(level / fanout)
            total += level
        return total

    def fanout(self, table: Table) -> int:
        key_width = INDEX_ENTRY_OVERHEAD + sum(
            table.column(c).width for c in self.key_columns)
        return max(2, int(PAGE_SIZE * PAGE_FILL_FACTOR // key_width))

    def height(self, table: Table) -> int:
        leaf = self.leaf_page_count(table)
        return max(1, 1 + math.ceil(math.log(max(leaf, 2),
                                             self.fanout(table))))

    def size_bytes(self, table: Table) -> int:
        if self.clustered:
            return 0  # the clustered index *is* the table
        return self.page_count(table) * PAGE_SIZE

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def build(self, table: Table) -> None:
        """Materialize the B+-tree over the table's rows."""
        if table.rows is None:
            raise CatalogError(
                f"cannot build index {self.name!r}: table {table.name!r} "
                f"has no data")
        positions = [table.column_position(c) for c in self.key_columns]
        entries = [
            (tuple(row[p] for p in positions), i)
            for i, row in enumerate(table.rows)
        ]
        self._tree = BPlusTree.bulk_load(entries)
        self._table = table
        self.hypothetical = False

    @property
    def is_built(self) -> bool:
        return self._tree is not None

    @property
    def tree(self) -> BPlusTree:
        if self._tree is None:
            raise CatalogError(f"index {self.name!r} is not built")
        return self._tree

    def signature(self) -> tuple:
        """Identity of the index's content (for deduplication)."""
        return (self.table_name, self.key_columns,
                tuple(sorted(self.included_columns)), self.clustered)


def primary_key_index(table: Table) -> Index:
    """The implicit clustered primary-key index every table has."""
    if not table.primary_key:
        raise CatalogError(f"table {table.name!r} has no primary key")
    return Index(
        name=f"pk_{table.name}",
        table_name=table.name,
        key_columns=(table.primary_key,),
        clustered=True,
    )
