"""Integration tests: plan and execute SQL on the engine.

These compare executed results against straightforward Python
reimplementations of the same queries, across different physical
designs (which must never change results, only cost).
"""

import random

import pytest

from repro.engine import (Column, Database, ForeignKey, JoinViewDefinition,
                          SQLType)


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.create_table("inproc", [
        Column("ID", SQLType.INTEGER, False),
        Column("PID", SQLType.INTEGER),
        Column("title", SQLType.VARCHAR),
        Column("booktitle", SQLType.VARCHAR),
        Column("year", SQLType.INTEGER),
        Column("ee", SQLType.VARCHAR, nullable=True),
    ])
    database.create_table("author", [
        Column("ID", SQLType.INTEGER, False),
        Column("PID", SQLType.INTEGER),
        Column("name", SQLType.VARCHAR),
    ], foreign_keys=[ForeignKey("PID", "inproc")])
    rng = random.Random(42)
    conferences = ["SIGMOD CONFERENCE", "VLDB", "ICDE", "KDD", "WWW"]
    pubs, authors, next_author = [], [], 0
    for i in range(3000):
        ee = f"http://x/{i}" if rng.random() < 0.3 else None
        pubs.append((i, 0, f"Paper {i}", rng.choice(conferences),
                     1985 + i % 20, ee))
        for _ in range(rng.randint(1, 4)):
            authors.append((next_author, i, f"author{rng.randint(0, 400)}"))
            next_author += 1
    database.insert_rows("inproc", pubs)
    database.insert_rows("author", authors)
    database.analyze()
    database.build_primary_key_indexes()
    return database


def python_filter(db, booktitle):
    return [row for row in db.catalog.table("inproc").rows
            if row[3] == booktitle]


class TestSingleTable:
    def test_equality_filter(self, db):
        result = db.execute(
            "SELECT I.ID FROM inproc I WHERE I.booktitle = 'VLDB'")
        assert len(result.rows) == len(python_filter(db, "VLDB"))

    def test_range_filter(self, db):
        result = db.execute(
            "SELECT I.ID FROM inproc I WHERE I.year >= 2000")
        expected = [r for r in db.catalog.table("inproc").rows if r[4] >= 2000]
        assert len(result.rows) == len(expected)

    def test_conjunction(self, db):
        result = db.execute(
            "SELECT I.ID FROM inproc I "
            "WHERE I.booktitle = 'ICDE' AND I.year = 1990")
        expected = [r for r in db.catalog.table("inproc").rows
                    if r[3] == "ICDE" and r[4] == 1990]
        assert sorted(r[0] for r in result.rows) == sorted(r[0] for r in expected)

    def test_is_null(self, db):
        result = db.execute("SELECT I.ID FROM inproc I WHERE I.ee IS NULL")
        expected = [r for r in db.catalog.table("inproc").rows if r[5] is None]
        assert len(result.rows) == len(expected)

    def test_is_not_null(self, db):
        result = db.execute("SELECT I.ID FROM inproc I WHERE I.ee IS NOT NULL")
        expected = [r for r in db.catalog.table("inproc").rows
                    if r[5] is not None]
        assert len(result.rows) == len(expected)

    def test_or_predicate(self, db):
        result = db.execute(
            "SELECT I.ID FROM inproc I "
            "WHERE I.booktitle = 'KDD' OR I.year = 1985")
        expected = [r for r in db.catalog.table("inproc").rows
                    if r[3] == "KDD" or r[4] == 1985]
        assert len(result.rows) == len(expected)

    def test_projection_values(self, db):
        result = db.execute(
            "SELECT I.title, I.year FROM inproc I WHERE I.ID = 7")
        assert result.rows == [("Paper 7", 1985 + 7 % 20)]


class TestJoins:
    JOIN_SQL = ("SELECT I.ID, A.name FROM inproc I, author A "
                "WHERE I.booktitle = 'SIGMOD CONFERENCE' AND I.ID = A.PID")

    def expected_join(self, db):
        sigmod = {r[0] for r in python_filter(db, "SIGMOD CONFERENCE")}
        return sorted((r[1], r[2]) for r in db.catalog.table("author").rows
                      if r[1] in sigmod)

    def test_hash_join_matches_python(self, db):
        result = db.execute(self.JOIN_SQL)
        assert sorted(result.rows) == self.expected_join(db)

    def test_results_stable_across_indexes(self, db):
        before = sorted(db.execute(self.JOIN_SQL).rows)
        db.create_index("ix_booktitle", "inproc", ["booktitle"],
                        included_columns=["title", "year"])
        db.create_index("ix_author_pid", "author", ["PID"],
                        included_columns=["name"])
        after = sorted(db.execute(self.JOIN_SQL).rows)
        db.catalog.drop_index("ix_booktitle")
        db.catalog.drop_index("ix_author_pid")
        assert before == after

    def test_indexes_reduce_cost(self, db):
        baseline = db.execute(self.JOIN_SQL).cost
        db.create_index("ix_bt2", "inproc", ["booktitle"],
                        included_columns=["title", "year"])
        tuned = db.execute(self.JOIN_SQL).cost
        db.catalog.drop_index("ix_bt2")
        assert tuned < baseline

    def test_union_all_with_order(self, db):
        sql = ("SELECT I.ID, I.title, NULL FROM inproc I "
               "WHERE I.booktitle = 'WWW' "
               "UNION ALL "
               "SELECT I.ID, NULL, A.name FROM inproc I, author A "
               "WHERE I.booktitle = 'WWW' AND I.ID = A.PID ORDER BY 1")
        result = db.execute(sql)
        ids = [r[0] for r in result.rows]
        assert ids == sorted(ids)
        www = python_filter(db, "WWW")
        n_authors = sum(1 for a in db.catalog.table("author").rows
                        if a[1] in {r[0] for r in www})
        assert len(result.rows) == len(www) + n_authors

    def test_exists_subquery(self, db):
        sql = ("SELECT I.ID FROM inproc I WHERE I.year = 1999 AND EXISTS "
               "(SELECT A.ID FROM author A WHERE A.PID = I.ID "
               "AND A.name = 'author7')")
        result = db.execute(sql)
        with_author = {a[1] for a in db.catalog.table("author").rows
                       if a[2] == "author7"}
        expected = [r[0] for r in db.catalog.table("inproc").rows
                    if r[4] == 1999 and r[0] in with_author]
        assert sorted(r[0] for r in result.rows) == sorted(expected)

    def test_exists_uses_index_when_available(self, db):
        sql = ("SELECT I.ID FROM inproc I WHERE I.year = 1999 AND EXISTS "
               "(SELECT A.ID FROM author A WHERE A.PID = I.ID)")
        no_index = db.execute(sql)
        db.create_index("ix_pid_probe", "author", ["PID"])
        with_index = db.execute(sql)
        db.catalog.drop_index("ix_pid_probe")
        assert sorted(no_index.rows) == sorted(with_index.rows)

    def test_or_with_exists(self, db):
        sql = ("SELECT I.ID FROM inproc I "
               "WHERE I.year = 1998 AND (I.title = 'Paper 13' OR EXISTS "
               "(SELECT A.ID FROM author A WHERE A.PID = I.ID "
               "AND A.name = 'author55'))")
        result = db.execute(sql)
        with_author = {a[1] for a in db.catalog.table("author").rows
                       if a[2] == "author55"}
        expected = [r[0] for r in db.catalog.table("inproc").rows
                    if r[4] == 1998 and (r[2] == "Paper 13"
                                         or r[0] in with_author)]
        assert sorted(r[0] for r in result.rows) == sorted(expected)


class TestMaterializedViewPlanning:
    VIEW_DEF = JoinViewDefinition(
        parent_table="inproc", child_table="author", child_fk_column="PID",
        columns=(("pub_id", ("inproc", "ID")),
                 ("booktitle", ("inproc", "booktitle")),
                 ("name", ("author", "name"))))

    SQL = ("SELECT I.ID, A.name FROM inproc I, author A "
           "WHERE I.booktitle = 'ICDE' AND I.ID = A.PID")

    def test_view_substitution_preserves_results(self, db):
        before = sorted(db.execute(self.SQL).rows)
        db.create_materialized_view("v_pub_author", self.VIEW_DEF)
        after_result = db.execute(self.SQL)
        db.catalog.drop_table("v_pub_author")
        assert sorted(after_result.rows) == before
        assert "v_pub_author" in after_result.plan.objects_used()

    def test_view_reduces_cost(self, db):
        baseline = db.execute(self.SQL).cost
        db.create_materialized_view("v_pub_author2", self.VIEW_DEF)
        tuned = db.execute(self.SQL).cost
        db.catalog.drop_table("v_pub_author2")
        assert tuned < baseline


class TestEstimates:
    def test_estimate_close_to_measured_for_scan(self, db):
        sql = "SELECT I.ID FROM inproc I WHERE I.booktitle = 'VLDB'"
        planned = db.estimate(sql)
        measured = db.execute(sql)
        assert planned.est_cost == pytest.approx(measured.cost, rel=0.5)

    def test_what_if_index_lowers_estimate(self, db):
        from repro.engine import Index
        sql = "SELECT I.ID, I.year FROM inproc I WHERE I.booktitle = 'VLDB'"
        base = db.estimate(sql).est_cost
        hypothetical = Index("hyp", "inproc", ("booktitle",),
                             included_columns=("year",), hypothetical=True)
        tuned = db.estimate(sql, extra_indexes=[hypothetical]).est_cost
        assert tuned < base

    def test_execute_never_uses_hypothetical(self, db):
        sql = "SELECT I.ID FROM inproc I WHERE I.booktitle = 'VLDB'"
        result = db.execute(sql)
        assert "hyp" not in result.plan.objects_used()

    def test_objects_used_reports_indexes(self, db):
        db.create_index("ix_year", "inproc", ["year"])
        sql = "SELECT I.ID FROM inproc I WHERE I.year = 1987"
        used = db.execute(sql).plan.objects_used()
        db.catalog.drop_index("ix_year")
        assert "ix_year" in used
