"""Unit tests for catalog, statistics, index model, and expressions."""

import pytest

from repro.engine import (Column, ColumnStats, Database, Index,
                          JoinViewDefinition, SQLType, Table, TableStats)
from repro.engine.expressions import compile_predicate, compile_scalar
from repro.errors import CatalogError
from repro.sqlast import (And, ColumnRef, Comparison, ComparisonOp, IsNull,
                          Literal, Or)


class TestTable:
    def make(self):
        return Table("t", [Column("ID", SQLType.INTEGER, False),
                           Column("name", SQLType.VARCHAR),
                           Column("n", SQLType.INTEGER)])

    def test_column_lookup(self):
        table = self.make()
        assert table.column("name").sql_type == SQLType.VARCHAR
        assert table.column_position("n") == 2
        assert table.has_column("ID")
        with pytest.raises(CatalogError):
            table.column("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            Table("t", [Column("x", SQLType.INTEGER),
                        Column("x", SQLType.INTEGER)])

    def test_insert_checks_width(self):
        table = self.make()
        table.insert((1, "a", 2))
        with pytest.raises(CatalogError):
            table.insert((1, "a"))

    def test_stats_only_row_count(self):
        table = self.make()
        table.row_count_estimate = 5000
        assert not table.is_materialized
        assert table.row_count == 5000

    def test_page_count_grows_with_rows(self):
        table = self.make()
        table.set_rows([(i, "x" * 10, i) for i in range(10000)])
        assert table.page_count > 10
        assert table.size_bytes == table.page_count * 8192


class TestDatabaseDDL:
    def test_create_and_drop(self):
        db = Database()
        db.create_table("a", [Column("ID", SQLType.INTEGER, False)])
        with pytest.raises(CatalogError):
            db.create_table("a", [Column("ID", SQLType.INTEGER, False)])
        db.create_index("ix", "a", ["ID"])
        db.catalog.drop_table("a")
        assert "ix" not in db.catalog.indexes

    def test_index_on_unknown_table_rejected(self):
        db = Database()
        with pytest.raises(CatalogError):
            db.create_index("ix", "nope", ["x"])

    def test_pk_indexes_built_once(self):
        db = Database()
        db.create_table("a", [Column("ID", SQLType.INTEGER, False)])
        db.insert_rows("a", [(1,), (2,)])
        db.build_primary_key_indexes()
        db.build_primary_key_indexes()  # idempotent
        assert "pk_a" in db.catalog.indexes


class TestIndexModel:
    def table(self, rows=10000):
        t = Table("t", [Column("ID", SQLType.INTEGER, False),
                        Column("a", SQLType.VARCHAR),
                        Column("b", SQLType.INTEGER)])
        t.row_count_estimate = rows
        return t

    def test_covering(self):
        table = self.table()
        ix = Index("ix", "t", ("a",), included_columns=("b",))
        assert ix.covers({"a", "b"}, table)
        assert ix.covers({"a", "b", "ID"}, table)  # PK rides in the leaf
        assert not ix.covers({"a", "b", "c"}, table)

    def test_clustered_covers_everything(self):
        table = self.table()
        ix = Index("pk", "t", ("ID",), clustered=True)
        assert ix.covers({"a", "b", "ID"}, table)
        assert ix.size_bytes(table) == 0

    def test_size_scales_with_columns(self):
        table = self.table()
        narrow = Index("n", "t", ("b",))
        wide = Index("w", "t", ("b",), included_columns=("a",))
        assert wide.size_bytes(table) > narrow.size_bytes(table)

    def test_key_and_included_overlap_rejected(self):
        with pytest.raises(CatalogError):
            Index("ix", "t", ("a",), included_columns=("a",))

    def test_height_reasonable(self):
        table = self.table(rows=1_000_000)
        ix = Index("ix", "t", ("b",))
        assert 2 <= ix.height(table) <= 4

    def test_build_requires_data(self):
        table = self.table()
        ix = Index("ix", "t", ("b",))
        with pytest.raises(CatalogError):
            ix.build(table)


class TestColumnStats:
    def test_eq_selectivity_uniform(self):
        stats = ColumnStats.from_values(list(range(100)) * 10)
        assert stats.eq_selectivity(50) == pytest.approx(0.01, rel=0.01)

    def test_eq_out_of_range_is_zero(self):
        stats = ColumnStats.from_values(list(range(100)))
        assert stats.eq_selectivity(1000) == 0.0
        assert stats.eq_selectivity(-5) == 0.0

    def test_range_selectivity(self):
        stats = ColumnStats.from_values(list(range(1000)))
        assert stats.range_selectivity("<", 500) == pytest.approx(0.5, abs=0.06)
        assert stats.range_selectivity(">=", 900) == pytest.approx(0.1, abs=0.06)
        assert stats.range_selectivity(">", 2000) == 0.0
        assert stats.range_selectivity("<=", 2000) == pytest.approx(1.0, abs=0.01)

    def test_null_fraction(self):
        stats = ColumnStats.from_values([1, None, None, 4])
        assert stats.null_fraction == 0.5
        assert stats.eq_selectivity(1) == pytest.approx(0.25, abs=0.05)

    def test_all_null_column(self):
        stats = ColumnStats.from_values([None] * 10)
        assert stats.null_fraction == 1.0
        assert stats.eq_selectivity("x") == 0.0

    def test_string_widths(self):
        stats = ColumnStats.from_values(["abcd", "ef"], is_string=True)
        assert stats.avg_width == 3

    def test_scaled_keeps_distribution(self):
        stats = ColumnStats.from_values(list(range(100)) * 5)
        scaled = stats.scaled(100)
        assert scaled.row_count == 100
        assert scaled.n_distinct == 100
        assert scaled.range_selectivity("<", 50) == \
            pytest.approx(stats.range_selectivity("<", 50), abs=0.02)

    def test_merged_combines(self):
        low = ColumnStats.from_values(list(range(0, 100)))
        high = ColumnStats.from_values(list(range(100, 200)))
        merged = ColumnStats.merged([low, high])
        assert merged.row_count == 200
        assert merged.min_value == 0
        assert merged.max_value == 199
        assert merged.range_selectivity("<", 100) == pytest.approx(0.5, abs=0.06)

    def test_skewed_histogram(self):
        values = [1] * 900 + list(range(2, 102))
        stats = ColumnStats.from_values(values)
        # Equi-depth histogram: most buckets end at 1, so <=1 is ~90%.
        assert stats.range_selectivity("<=", 1) == pytest.approx(0.9, abs=0.1)


class TestExpressions:
    def resolver(self):
        positions = {"x": 0, "y": 1, "s": 2}
        return lambda ref: (ref.table or "t", positions[ref.column])

    def test_scalar_literal_and_column(self):
        resolve = self.resolver()
        lit = compile_scalar(Literal(7), resolve)
        col = compile_scalar(ColumnRef("t", "y"), resolve)
        env = {"t": (1, 2, "a")}
        assert lit(env) == 7
        assert col(env) == 2

    def test_comparison_null_is_false(self):
        resolve = self.resolver()
        pred = compile_predicate(
            Comparison(ColumnRef("t", "x"), ComparisonOp.EQ, Literal(1)),
            resolve)
        assert pred({"t": (1, 0, "")})
        assert not pred({"t": (None, 0, "")})

    def test_cross_type_numeric_coercion(self):
        resolve = self.resolver()
        pred = compile_predicate(
            Comparison(ColumnRef("t", "x"), ComparisonOp.GE, Literal("5")),
            resolve)
        assert pred({"t": (7, 0, "")})
        assert not pred({"t": (3, 0, "")})

    def test_and_or_is_null(self):
        resolve = self.resolver()
        expr = And((
            Or((Comparison(ColumnRef("t", "x"), ComparisonOp.EQ, Literal(1)),
                Comparison(ColumnRef("t", "y"), ComparisonOp.EQ, Literal(9)))),
            IsNull(ColumnRef("t", "s")),
        ))
        pred = compile_predicate(expr, resolve)
        assert pred({"t": (1, 0, None)})
        assert not pred({"t": (1, 0, "set")})
        assert pred({"t": (0, 9, None)})
        assert not pred({"t": (0, 0, None)})


class TestMaterializedView:
    def make_db(self):
        db = Database()
        db.create_table("p", [Column("ID", SQLType.INTEGER, False),
                              Column("name", SQLType.VARCHAR)])
        db.create_table("c", [Column("ID", SQLType.INTEGER, False),
                              Column("PID", SQLType.INTEGER),
                              Column("val", SQLType.INTEGER)])
        db.insert_rows("p", [(1, "a"), (2, "b")])
        db.insert_rows("c", [(10, 1, 100), (11, 1, 110), (12, 2, 120)])
        db.analyze()
        return db

    def definition(self):
        return JoinViewDefinition(
            parent_table="p", child_table="c", child_fk_column="PID",
            columns=(("p_name", ("p", "name")), ("c_val", ("c", "val"))))

    def test_populate(self):
        db = self.make_db()
        view = db.create_materialized_view("v", self.definition())
        assert sorted(view.rows) == [("a", 100), ("a", 110), ("b", 120)]

    def test_view_row_count_derived_without_data(self):
        db = Database()
        db.create_table("p", [Column("ID", SQLType.INTEGER, False),
                              Column("name", SQLType.VARCHAR)])
        db.create_table("c", [Column("ID", SQLType.INTEGER, False),
                              Column("PID", SQLType.INTEGER),
                              Column("val", SQLType.INTEGER)])
        db.set_table_stats("c", TableStats(row_count=500))
        view = db.create_materialized_view("v", self.definition(),
                                           populate=False)
        assert db.stats.table("v").row_count == 500
