"""Per-component metric registries.

A :class:`MetricRegistry` is a named bag of monotonically increasing
counters — cheap enough to increment on hot paths (``database``,
``advisor``, ``evaluator`` components), cheap to snapshot, and
deterministic to render (counters sorted by name). Registries also
hand out :class:`LatencyHistogram` instances for distributions (the
query service records one observation per served request).
"""

from __future__ import annotations

import bisect
import math
import threading

__all__ = ["LatencyHistogram", "MetricRegistry", "NullMetricRegistry",
           "NULL_METRICS"]


def _log_bucket_bounds(lo: float, hi: float, per_decade: int) -> list[float]:
    """Log-spaced upper bounds from ``lo`` to ``hi`` (inclusive)."""
    decades = math.log10(hi / lo)
    n = max(1, round(decades * per_decade))
    return [lo * (hi / lo) ** (i / n) for i in range(n + 1)]


class LatencyHistogram:
    """Fixed log-scale buckets over seconds; thread-safe to observe.

    Buckets span 10 µs .. 100 s with a configurable resolution per
    decade; observations outside the range land in the first/last
    bucket. Percentiles are estimated by linear interpolation inside
    the winning bucket — good to bucket resolution, which is what a
    load report needs (the raw per-request latencies stay available to
    callers that want exact order statistics).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "_max",
                 "_lock")

    def __init__(self, name: str, lo: float = 1e-5, hi: float = 100.0,
                 per_decade: int = 10):
        self.name = name
        self.bounds = _log_bucket_bounds(lo, hi, per_decade)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        index = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self.counts[index] += 1
            self.count += 1
            self.total += seconds
            if seconds > self._max:
                self._max = seconds

    # ------------------------------------------------------------------
    def _state(self) -> tuple[int, float, list[int], float]:
        """One consistent copy of the mutable state, taken under the
        lock. Every read-side statistic is computed from such a copy —
        reading ``count``/``total``/``counts`` individually while
        workers ``observe()`` would tear mid-update (e.g. ``total``
        already bumped, ``count`` not yet)."""
        with self._lock:
            return self.count, self.total, list(self.counts), self._max

    @property
    def mean(self) -> float:
        count, total, _, _ = self._state()
        return total / count if count else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    @staticmethod
    def _percentile_of(state: tuple[int, float, list[int], float],
                       bounds: list[float], p: float) -> float:
        count, _, counts, maximum = state
        if count == 0:
            return 0.0
        rank = p / 100.0 * count
        seen = 0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= rank:
                lo = bounds[index - 1] if index > 0 else 0.0
                hi = (bounds[index] if index < len(bounds) else maximum)
                fraction = (rank - seen) / bucket_count
                return min(lo + (hi - lo) * fraction, maximum)
            seen += bucket_count
        return maximum

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (0 < p <= 100) in seconds."""
        return self._percentile_of(self._state(), self.bounds, p)

    # Locks don't pickle; checkpointed objects (e.g. the evaluator memo)
    # may carry a registry, so serialize the data and rebuild the lock.
    def __getstate__(self) -> dict:
        count, total, counts, maximum = self._state()
        return {"name": self.name, "bounds": self.bounds, "counts": counts,
                "count": count, "total": total, "_max": maximum}

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "_lock", threading.Lock())

    def snapshot(self) -> dict[str, float]:
        """Count, mean, max, and the standard latency percentiles.

        All figures derive from a *single* locked copy of the state, so
        the snapshot is internally consistent even while workers are
        observing (``mean * count == total`` exactly, percentiles and
        count describe the same instant).
        """
        state = self._state()
        count, total, _, maximum = state
        return {
            "count": count,
            "mean": total / count if count else 0.0,
            "max": maximum,
            "p50": self._percentile_of(state, self.bounds, 50),
            "p95": self._percentile_of(state, self.bounds, 95),
            "p99": self._percentile_of(state, self.bounds, 99),
        }

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper bound seconds, count) for occupied buckets, in order."""
        _, _, counts, _ = self._state()
        out = []
        for index, bucket_count in enumerate(counts):
            if bucket_count:
                bound = (self.bounds[index] if index < len(self.bounds)
                         else math.inf)
                out.append((bound, bucket_count))
        return out


class MetricRegistry:
    """Named counters (plus histograms) for one component.

    Thread-safe: ``incr`` is called concurrently from serve-pool worker
    threads, and a bare dict read-modify-write would lose increments
    under load (pinned by the hammer regression test in
    ``tests/test_obs.py``). All counter and histogram-map mutations
    happen under one registry lock.
    """

    __slots__ = ("component", "counters", "histograms", "_lock")

    def __init__(self, component: str):
        self.component = component
        self.counters: dict[str, float] = {}
        self.histograms: dict[str, LatencyHistogram] = {}
        self._lock = threading.Lock()

    def incr(self, name: str, delta: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + delta

    def get(self, name: str) -> float:
        with self._lock:
            return self.counters.get(name, 0)

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = LatencyHistogram(name)
            return histogram

    def snapshot(self) -> dict[str, float]:
        """Counters sorted by name (deterministic rendering order);
        histograms are flattened as ``<name>.<stat>`` entries."""
        with self._lock:
            counters = dict(self.counters)
            histograms = dict(self.histograms)
        out = {name: counters[name] for name in sorted(counters)}
        for name in sorted(histograms):
            for stat, value in histograms[name].snapshot().items():
                out[f"{name}.{stat}"] = value
        return out

    # Same pickling story as LatencyHistogram: drop the lock, rebuild.
    def __getstate__(self) -> dict:
        with self._lock:
            return {"component": self.component,
                    "counters": dict(self.counters),
                    "histograms": dict(self.histograms)}

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "_lock", threading.Lock())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricRegistry {self.component!r} {self.snapshot()}>"


class _NullHistogram(LatencyHistogram):
    """The disabled histogram: observations vanish."""

    def __init__(self):
        super().__init__("null", per_decade=1)

    def observe(self, seconds: float) -> None:
        pass


_NULL_HISTOGRAM = _NullHistogram()


class NullMetricRegistry(MetricRegistry):
    """The disabled registry: increments vanish."""

    def __init__(self):
        super().__init__("null")

    def incr(self, name: str, delta: float = 1) -> None:
        pass

    def histogram(self, name: str) -> LatencyHistogram:
        return _NULL_HISTOGRAM


NULL_METRICS = NullMetricRegistry()
