"""Cross-backend comparator: do two executors agree on *everything*?

The differential validator (:mod:`repro.backends.diff`) answers one
question — do translated queries return the same rows? This module
widens the lens to the whole database state two backends build from
the same logical + physical design, and turns the answer into a
deterministic, machine-checkable report the CI gate can fail on:

* **schema.tables** — the physical table sets match (mapped tables
  plus materialized join views; the load manifest is excluded).
* **schema.columns** — per table, the column name sequence matches,
  and each backend's *declared* column types match what its dialect
  promises for the mapped schema (a type-affinity drift on either
  side names the offending table and column).
* **rows** — per table, the row multisets match (compared as a sorted
  digest of normalized rows, so gigarow tables don't need to cross a
  process boundary; a mismatch re-diffs the multisets and names the
  table with sample missing/extra rows).
* **indexes** — the user-created index name sets match (REVIEW when a
  backend cannot enumerate indexes).
* **queries** — the folded-in differential validator: every workload
  query executes on both backends and the row multisets must match.
* **timings** (optional, ``include_timings=True``) — measured medians
  per query on both backends. Wall-clock is inherently noisy, so this
  check can only ever be OK or REVIEW — never MISMATCH — and it is
  **off by default** precisely so that two runs of the same comparison
  render byte-identical reports.

Statuses escalate ``OK < REVIEW < MISMATCH``: REVIEW means "a human
should look" (non-comparable metadata, suspicious timing skew);
MISMATCH means "the backends disagree on data or semantics" and fails
the gate. See docs/backends.md ("Backend matrix") for the report
format.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..mapping import (MappedSchema, collect_statistics, derive_schema,
                       fully_split, hybrid_inlining, shared_inlining)
from ..obs import NullTracer, Tracer, get_tracer
from ..sqlast import Query
from .base import EngineBackend, SQLBackend
from .dbms import MANIFEST_TABLE, RelationalBackend
from .diff import multiset_diff, normalize_row

__all__ = ["CheckResult", "CompareReport", "compare_loaded",
           "compare_datasets", "backend_factory", "known_backends",
           "OK", "REVIEW", "MISMATCH"]

OK = "OK"
REVIEW = "REVIEW"
MISMATCH = "MISMATCH"

_SEVERITY = {OK: 0, REVIEW: 1, MISMATCH: 2}

#: Mapping presets the dataset-level comparison understands, plus
#: ``greedy`` (the tuned joint search) handled separately.
PRESETS = {
    "hybrid": hybrid_inlining,
    "shared": shared_inlining,
    "fully-split": fully_split,
}

DESIGNS = tuple(sorted(PRESETS)) + ("greedy",)

_SAMPLE_ROWS = 5


@dataclass
class CheckResult:
    """One comparator check: a status plus enough data to act on it."""

    name: str
    status: str
    detail: str
    data: dict = field(default_factory=dict)


@dataclass
class CompareReport:
    """Outcome of one full cross-backend comparison."""

    backend_a: str
    backend_b: str
    context: dict = field(default_factory=dict)
    checks: list[CheckResult] = field(default_factory=list)

    @property
    def status(self) -> str:
        worst = OK
        for check in self.checks:
            if _SEVERITY[check.status] > _SEVERITY[worst]:
                worst = check.status
        return worst

    @property
    def ok(self) -> bool:
        return self.status == OK

    def mismatches(self) -> list[CheckResult]:
        return [c for c in self.checks if c.status == MISMATCH]

    def describe(self) -> str:
        where = " ".join(f"{k}={v}" for k, v in sorted(self.context.items()))
        head = (f"compare {self.backend_a} vs {self.backend_b}"
                + (f" [{where}]" if where else "")
                + f": {self.status}")
        lines = [head]
        for check in self.checks:
            lines.append(f"  {check.status:8s} {check.name}: {check.detail}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "backend_a": self.backend_a,
            "backend_b": self.backend_b,
            "context": dict(self.context),
            "status": self.status,
            "checks": [
                {"name": c.name, "status": c.status, "detail": c.detail,
                 "data": c.data}
                for c in self.checks
            ],
        }

    def to_json_text(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True,
                          default=str)


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------

def known_backends() -> tuple[str, ...]:
    return ("engine", "sqlite", "duckdb")


def backend_factory(name: str):
    """Constructor for a backend by CLI name.

    The duckdb factory resolves even without the driver installed —
    *calling* it then raises the backend's clear
    :class:`~repro.backends.dbms.BackendError`, which the CLI and
    tests turn into a skip.
    """
    if name == "engine":
        return EngineBackend
    if name == "sqlite":
        from .sqlite import SQLiteBackend
        return SQLiteBackend
    if name == "duckdb":
        from .duckdb import DuckDBBackend
        return DuckDBBackend
    raise ValueError(
        f"unknown backend {name!r} (known: {', '.join(known_backends())})")


# ----------------------------------------------------------------------
# Introspection adapters (RelationalBackend hooks; engine catalog)
# ----------------------------------------------------------------------

def _table_names(backend: SQLBackend) -> list[str]:
    if isinstance(backend, RelationalBackend):
        return sorted(n for n in backend.table_names_on_disk()
                      if n != MANIFEST_TABLE)
    if isinstance(backend, EngineBackend):
        return sorted(backend.db.catalog.tables)
    raise TypeError(f"cannot introspect tables of {backend!r}")


def _columns_of(backend: SQLBackend, name: str) -> list[tuple[str, str]]:
    if isinstance(backend, RelationalBackend):
        return backend.table_columns(name)
    table = backend.db.catalog.table(name)  # type: ignore[union-attr]
    return [(c.name, c.sql_type.name) for c in table.columns]


def _rows_of(backend: SQLBackend, name: str) -> list[tuple]:
    if isinstance(backend, RelationalBackend):
        return backend.table_rows(name)
    table = backend.db.catalog.table(name)  # type: ignore[union-attr]
    return list(table.rows or [])


def _index_names(backend: SQLBackend) -> list[str] | None:
    if isinstance(backend, RelationalBackend):
        return backend.index_names()
    if isinstance(backend, EngineBackend):
        # pk_* indexes are the engine's implicit primary keys, the
        # counterpart of what the real engines build for PRIMARY KEY.
        return sorted(n for n in backend.db.catalog.indexes
                      if not n.startswith("pk_"))
    return None


def _expected_types(backend: SQLBackend,
                    schema: MappedSchema) -> dict[str, list[tuple[str, str]]]:
    """table -> [(column, declared type the backend should show)]."""
    if isinstance(backend, RelationalBackend):
        dialect = backend.dialect
        return {table.name: [(c.name, dialect.type_name(c.sql_type))
                             for c in table.columns]
                for table in schema.to_engine_tables()}
    return {table.name: [(c.name, c.sql_type.name)
                         for c in table.columns]
            for table in schema.to_engine_tables()}


def _canon_type(declared: str) -> str:
    return declared.replace(" ", "").upper()


def _sortable(value) -> tuple:
    if value is None:
        return (0, "")
    if isinstance(value, (int, float)):
        return (1, float(value))
    return (2, str(value))


def _row_digest(rows: list[tuple]) -> tuple[int, str]:
    """(count, sha1 over the sorted normalized multiset)."""
    normalized = sorted((normalize_row(r) for r in rows),
                        key=lambda row: tuple(_sortable(v) for v in row))
    digest = hashlib.sha1()
    for row in normalized:
        digest.update(repr(row).encode("utf-8"))
        digest.update(b"\x00")
    return len(normalized), digest.hexdigest()


def _sample(rows: list[tuple]) -> list[list]:
    return [list(row) for row in rows[:_SAMPLE_ROWS]]


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------

def _check_tables(a: SQLBackend, b: SQLBackend) -> tuple[CheckResult,
                                                         list[str]]:
    names_a, names_b = _table_names(a), _table_names(b)
    only_a = sorted(set(names_a) - set(names_b))
    only_b = sorted(set(names_b) - set(names_a))
    common = sorted(set(names_a) & set(names_b))
    if only_a or only_b:
        detail = (f"table sets differ: only in {a.name}: {only_a or '[]'}; "
                  f"only in {b.name}: {only_b or '[]'}")
        return CheckResult("schema.tables", MISMATCH, detail,
                           {"only_a": only_a, "only_b": only_b,
                            "common": common}), common
    return CheckResult("schema.tables", OK,
                       f"{len(common)} tables on both backends",
                       {"common": common}), common


def _check_columns(a: SQLBackend, b: SQLBackend, common: list[str],
                   schema: MappedSchema | None) -> CheckResult:
    problems: list[str] = []
    matrix: dict[str, list[dict]] = {}
    expected_a = _expected_types(a, schema) if schema is not None else {}
    expected_b = _expected_types(b, schema) if schema is not None else {}
    for name in common:
        cols_a, cols_b = _columns_of(a, name), _columns_of(b, name)
        matrix[name] = [
            {"column": col, "a": typ_a, "b": typ_b}
            for (col, typ_a), (_, typ_b) in zip(cols_a, cols_b)
        ] if len(cols_a) == len(cols_b) else [
            {"a_columns": [c for c, _ in cols_a],
             "b_columns": [c for c, _ in cols_b]}]
        if [c for c, _ in cols_a] != [c for c, _ in cols_b]:
            problems.append(f"table {name!r}: column names differ "
                            f"({[c for c, _ in cols_a]} vs "
                            f"{[c for c, _ in cols_b]})")
            continue
        for backend, cols, expected in ((a, cols_a, expected_a),
                                        (b, cols_b, expected_b)):
            for (col, declared), (exp_col, exp_type) in zip(
                    cols, expected.get(name, [])):
                if (col == exp_col
                        and _canon_type(declared) != _canon_type(exp_type)):
                    problems.append(
                        f"table {name!r} column {col!r}: {backend.name} "
                        f"declares {declared!r}, dialect expects "
                        f"{exp_type!r}")
    if problems:
        return CheckResult("schema.columns", MISMATCH,
                           "; ".join(problems[:4])
                           + ("" if len(problems) <= 4
                              else f" (+{len(problems) - 4} more)"),
                           {"problems": problems, "matrix": matrix})
    return CheckResult("schema.columns", OK,
                       f"column names and declared types line up on "
                       f"{len(common)} tables", {"matrix": matrix})


def _check_rows(a: SQLBackend, b: SQLBackend,
                common: list[str]) -> CheckResult:
    digests: dict[str, dict] = {}
    bad: list[str] = []
    samples: dict[str, dict] = {}
    for name in common:
        rows_a, rows_b = _rows_of(a, name), _rows_of(b, name)
        count_a, digest_a = _row_digest(rows_a)
        count_b, digest_b = _row_digest(rows_b)
        digests[name] = {"a_rows": count_a, "b_rows": count_b,
                         "a_digest": digest_a, "b_digest": digest_b}
        if (count_a, digest_a) != (count_b, digest_b):
            missing, extra = multiset_diff(rows_a, rows_b)
            bad.append(f"table {name!r}: {count_a} vs {count_b} rows, "
                       f"{len(missing)} missing / {len(extra)} extra "
                       f"in {b.name}")
            samples[name] = {"missing": _sample(missing),
                             "extra": _sample(extra)}
    if bad:
        return CheckResult("rows", MISMATCH, "; ".join(bad),
                           {"tables": digests, "samples": samples})
    total = sum(entry["a_rows"] for entry in digests.values())
    return CheckResult("rows", OK,
                       f"row multisets match on {len(common)} tables "
                       f"({total} rows)", {"tables": digests})


def _check_indexes(a: SQLBackend, b: SQLBackend) -> CheckResult:
    names_a, names_b = _index_names(a), _index_names(b)
    if names_a is None or names_b is None:
        missing = a.name if names_a is None else b.name
        return CheckResult("indexes", REVIEW,
                           f"{missing} cannot enumerate indexes",
                           {"a": names_a, "b": names_b})
    only_a = sorted(set(names_a) - set(names_b))
    only_b = sorted(set(names_b) - set(names_a))
    if only_a or only_b:
        return CheckResult(
            "indexes", MISMATCH,
            f"index sets differ: only in {a.name}: {only_a or '[]'}; "
            f"only in {b.name}: {only_b or '[]'}",
            {"only_a": only_a, "only_b": only_b})
    return CheckResult("indexes", OK,
                       f"{len(names_a)} indexes on both backends",
                       {"names": sorted(names_a)})


def _check_queries(a: SQLBackend, b: SQLBackend,
                   queries: list[Query]) -> CheckResult:
    results: list[dict] = []
    bad: list[str] = []
    for index, query in enumerate(queries):
        rows_a = a.execute(query)
        rows_b = b.execute(query)
        count_a, digest_a = _row_digest(rows_a)
        count_b, digest_b = _row_digest(rows_b)
        entry = {"query": index, "a_rows": count_a, "b_rows": count_b,
                 "a_digest": digest_a, "b_digest": digest_b}
        if (count_a, digest_a) != (count_b, digest_b):
            missing, extra = multiset_diff(rows_a, rows_b)
            sql = (a.sql_text(query) if hasattr(a, "sql_text")
                   else str(query))
            bad.append(f"query #{index}: {count_a} vs {count_b} rows "
                       f"({sql})")
            entry["missing"] = _sample(missing)
            entry["extra"] = _sample(extra)
            entry["sql"] = sql
        results.append(entry)
    if bad:
        return CheckResult("queries", MISMATCH, "; ".join(bad),
                           {"queries": results})
    return CheckResult("queries", OK,
                       f"{len(queries)} workload queries agree",
                       {"queries": results})


def _check_timings(a: SQLBackend, b: SQLBackend, queries: list[Query],
                   repeat: int, warmup: int) -> CheckResult:
    timings: list[dict] = []
    for index, query in enumerate(queries):
        seconds_a = a.time_query(query, repeat=repeat,
                                 warmup=warmup).seconds
        seconds_b = b.time_query(query, repeat=repeat,
                                 warmup=warmup).seconds
        timings.append({"query": index, "a_seconds": seconds_a,
                        "b_seconds": seconds_b})
    # Wall-clock comparisons are advisory by construction: REVIEW, so
    # a slow CI runner can never turn into a gate failure — and this
    # check is excluded entirely unless asked for, to keep the report
    # deterministic.
    return CheckResult("timings", REVIEW,
                       f"measured {len(queries)} queries on both "
                       f"backends (advisory)", {"timings": timings})


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def compare_loaded(a: SQLBackend, b: SQLBackend, queries: list[Query], *,
                   schema: MappedSchema | None = None,
                   include_timings: bool = False,
                   timing_repeat: int = 3, timing_warmup: int = 1,
                   context: dict | None = None,
                   tracer: Tracer | NullTracer | None = None
                   ) -> CompareReport:
    """Compare two *already loaded and configured* backends.

    Pass the :class:`~repro.mapping.MappedSchema` both were loaded
    with to enable the per-dialect declared-type check; without it the
    columns check still verifies name parity.
    """
    tracer = tracer if tracer is not None else get_tracer()
    report = CompareReport(backend_a=a.name, backend_b=b.name,
                           context=dict(context or {}))
    with tracer.span("backend.compare", a=a.name, b=b.name,
                     queries=len(queries)) as span:
        tables_check, common = _check_tables(a, b)
        report.checks.append(tables_check)
        report.checks.append(_check_columns(a, b, common, schema))
        report.checks.append(_check_rows(a, b, common))
        report.checks.append(_check_indexes(a, b))
        report.checks.append(_check_queries(a, b, queries))
        if include_timings:
            report.checks.append(_check_timings(a, b, queries,
                                                timing_repeat,
                                                timing_warmup))
        span.set("status", report.status)
    return report


def _dataset_bundle(dataset: str, scale: int, seed: int):
    from ..datasets import (dblp_schema, generate_dblp, generate_movies,
                            movie_schema)
    if dataset == "dblp":
        tree = dblp_schema()
        docs = generate_dblp(scale, seed=seed)
    elif dataset == "movie":
        tree = movie_schema()
        docs = generate_movies(scale, seed=seed)
    else:
        raise ValueError(f"unknown dataset {dataset!r} "
                         f"(known: dblp, movie)")
    return tree, docs


def _design_for(design: str, tree, docs, workload_size: int,
                workload_seed: int, storage_bound: int):
    """(schema, configuration, translated queries) for one design."""
    from ..physdesign import Configuration
    from ..search import GreedySearch, MappingEvaluator
    from ..translate import Translator
    from ..workload import WorkloadGenerator
    stats = collect_statistics(tree, docs)
    workload = WorkloadGenerator(tree, stats,
                                 seed=workload_seed).generate(workload_size)
    if design == "greedy":
        result = GreedySearch(tree, workload, stats,
                              storage_bound=storage_bound).run()
        return (result.schema, result.configuration,
                [query for query, _ in result.sql_queries])
    if design not in PRESETS:
        raise ValueError(f"unknown design {design!r} "
                         f"(known: {', '.join(DESIGNS)})")
    mapping = PRESETS[design](tree)
    evaluated = MappingEvaluator(workload, stats,
                                 storage_bound).evaluate(mapping)
    if evaluated is not None:
        return (evaluated.schema, evaluated.tuning.configuration,
                [query for query, _ in evaluated.sql_queries])
    # Infeasible under the bound: compare the bare logical design.
    schema = derive_schema(mapping)
    translator = Translator(schema)
    queries = [translator.translate(w.query) for w in workload.queries]
    return schema, Configuration(), queries


def compare_datasets(dataset: str = "dblp", design: str = "hybrid",
                     backend_a: str = "sqlite", backend_b: str = "duckdb",
                     *, scale: int = 60, seed: int = 7,
                     workload_size: int = 6, workload_seed: int = 3,
                     storage_bound: int = 512 * 1024 * 1024,
                     include_timings: bool = False,
                     tracer: Tracer | NullTracer | None = None
                     ) -> CompareReport:
    """Build, load, and compare two backends end to end.

    The one-call form the CLI and the CI gate use: generate the
    bundled dataset, derive the design (a mapping preset tuned by the
    evaluator, or the full greedy search), load both backends from the
    same documents, apply the same configuration, and run every
    comparator check.
    """
    tree, docs = _dataset_bundle(dataset, scale, seed)
    schema, configuration, queries = _design_for(
        design, tree, docs, workload_size, workload_seed, storage_bound)
    factory_a, factory_b = backend_factory(backend_a), \
        backend_factory(backend_b)
    context = {"dataset": dataset, "design": design, "scale": scale,
               "seed": seed, "workload": workload_size}
    a = factory_a(tracer=tracer)
    try:
        b = factory_b(tracer=tracer)
        try:
            a.load(schema, docs)
            b.load(schema, docs)
            a.apply_configuration(configuration)
            b.apply_configuration(configuration)
            return compare_loaded(a, b, queries, schema=schema,
                                  include_timings=include_timings,
                                  context=context, tracer=tracer)
        finally:
            b.close()
    finally:
        a.close()
