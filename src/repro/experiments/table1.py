"""Table 1 — characteristics of the data sets.

Reports, per data set: element counts, shredded data size, the number of
applicable transformations (total and non-subsumed), and the counts of
unions (explicit choices + optional elements), repetitions, and shared
types — the schema features the non-subsumed transformations exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import Database
from ..mapping import (count_transformations, derive_schema, hybrid_inlining,
                       load_documents)
from ..xsd import NodeKind
from .harness import DatasetBundle


@dataclass
class DatasetCharacteristics:
    name: str
    elements: int
    data_bytes: int
    transformations: int
    non_subsumed: int
    unions: int
    repetitions: int
    shared_types: int

    def row(self) -> list:
        return [self.name, self.elements, f"{self.data_bytes / 1024:.0f} KB",
                self.transformations, self.non_subsumed, self.unions,
                self.repetitions, self.shared_types]


HEADERS = ["data set", "elements", "shredded size", "#transformations",
           "#non-subsumed", "#unions", "#repetitions", "#shared types"]


def characterize(bundle: DatasetBundle) -> DatasetCharacteristics:
    tree = bundle.tree
    mapping = hybrid_inlining(tree)
    total, non_subsumed = count_transformations(mapping)
    unions = len(tree.nodes_of_kind(NodeKind.CHOICE)) + \
        len(tree.nodes_of_kind(NodeKind.OPTION))
    repetitions = len(tree.nodes_of_kind(NodeKind.REPETITION))
    signatures: dict[tuple, int] = {}
    for node in tree.iter_nodes():
        if node.kind == NodeKind.TAG:
            signature = tree.structural_signature(node)
            signatures[signature] = signatures.get(signature, 0) + 1
    shared_types = sum(1 for count in signatures.values() if count > 1)
    db = Database()
    load_documents(db, derive_schema(mapping), bundle.docs, analyze=False)
    return DatasetCharacteristics(
        name=bundle.name,
        elements=bundle.stats.total_elements,
        data_bytes=db.catalog.total_data_bytes(),
        transformations=total,
        non_subsumed=non_subsumed,
        unions=unions,
        repetitions=repetitions,
        shared_types=shared_types,
    )


def run_table1(bundles: list[DatasetBundle] | None = None
               ) -> list[DatasetCharacteristics]:
    bundles = bundles or [DatasetBundle.dblp(), DatasetBundle.movie()]
    return [characterize(bundle) for bundle in bundles]
