"""HTML run report for a load-harness run.

One self-contained page (inline CSS, no external assets — safe to
archive as a CI artifact) built from the generic HTML blocks in
:mod:`repro.experiments.reporting`: run summary, latency percentiles,
a latency-distribution bar chart from the service's histogram metric,
plan-cache statistics, and the per-query traffic breakdown.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path

from ..experiments.reporting import (html_bar_chart, html_definition_list,
                                     html_document, html_table)
from .loadgen import LoadReport
from .service import QueryService

__all__ = ["render_run_report", "write_run_report"]


def _latency_chart(service: QueryService) -> str:
    rows = []
    for bound, count in service.latency_histogram.nonzero_buckets():
        label = ("> last bucket" if bound == float("inf")
                 else f"<= {bound * 1e3:.3g} ms")
        rows.append((label, float(count)))
    return html_bar_chart(rows, unit=" req")


def _traffic_table(report: LoadReport) -> str:
    by_query = Counter(r.xpath for r in report.records)
    errors = Counter(r.xpath for r in report.records if r.error)
    rows = []
    for xpath, count in by_query.most_common():
        share = count / max(len(report.records), 1)
        rows.append([xpath, count, f"{share:.1%}", errors.get(xpath, 0)])
    return html_table(["query", "requests", "share", "errors"], rows)


def _resilience_section(report: LoadReport, stats) -> str:
    breaker = stats.breaker or {}
    summary = {
        "requests shed (client-observed)": report.shed,
        "shed by admission control (service)": stats.shed,
        "transient retries": stats.retries,
        "deadline timeouts": stats.timeouts,
        "breaker state": breaker.get("state", "closed"),
        "breaker trips / probes / fast-fails":
            f"{breaker.get('trips', 0)} / {breaker.get('probes', 0)} / "
            f"{breaker.get('fast_fails', 0)}",
        "results digest": report.results_digest,
    }
    blocks = [html_definition_list(summary)]
    by_type = report.errors_by_type
    if by_type:
        blocks.append(html_table(
            ["error type", "requests"],
            [[name, count] for name, count in by_type.items()]))
    return "\n".join(blocks)


def render_run_report(report: LoadReport, service: QueryService,
                      meta: dict | None = None, stats=None) -> str:
    """The complete HTML page for one load run.

    ``stats`` overrides the service-counter snapshot — pass the one
    taken right after the run when later steps (verify) would add
    requests to the live counters.
    """
    if stats is None:
        stats = service.stats()
    summary = {
        "mode": f"{report.mode} loop",
        "seed": report.seed,
        "clients / workers": f"{report.clients} / {report.workers}",
        "requests": len(report.records),
        "errors": report.errors,
        "wall time": f"{report.wall_seconds:.3f} s",
        "QPS": f"{report.qps:.1f}",
        "sequence digest": report.sequence_digest,
    }
    if report.rate is not None:
        summary["target arrival rate"] = f"{report.rate:g} req/s"
    if meta:
        summary.update(meta)
    latency_rows = [[f"p{p:g}", f"{report.latency(p) * 1e3:.3f} ms"]
                    for p in (50, 90, 95, 99, 100)]
    cache = stats.plan_cache
    cache_summary = {
        "entries": f"{cache['entries']:.0f} / {cache['capacity']:.0f}",
        "hits / misses": f"{cache['hits']:.0f} / {cache['misses']:.0f}",
        "hit rate": f"{cache['hit_rate']:.1%}",
        "evictions": f"{cache['evictions']:.0f}",
        "requests served from cached plan":
            f"{report.cached_plan_rate:.1%}",
    }
    sections = [
        ("Run summary", html_definition_list(summary)),
        ("Latency percentiles (client-observed)",
         html_table(["percentile", "latency"], latency_rows)),
        ("Latency distribution (service-side histogram)",
         _latency_chart(service)),
        ("Resilience", _resilience_section(report, stats)),
        ("Plan cache", html_definition_list(cache_summary)),
        ("Traffic by query", _traffic_table(report)),
    ]
    return html_document("repro serve — load run report", sections)


def write_run_report(path: str | Path, report: LoadReport,
                     service: QueryService,
                     meta: dict | None = None, stats=None) -> Path:
    """Render and write the report; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_run_report(report, service, meta, stats=stats),
                    encoding="utf-8")
    return path
