"""Planted ABBA lock-order inversion for the CONC003 regression test.

``take_ab`` acquires A then B; ``take_ba`` acquires B then A. The
cross-module lock-order graph must contain the two-lock cycle.
"""

import threading

_order_lock_a = threading.Lock()
_order_lock_b = threading.Lock()


def take_ab() -> None:
    with _order_lock_a:
        with _order_lock_b:
            pass


def take_ba() -> None:
    with _order_lock_b:
        with _order_lock_a:
            pass
