"""Recursive schemas are rejected explicitly (paper Section 2 scope)."""

import pytest

from repro.errors import XSDError
from repro.xsd import parse_dtd, parse_xsd


class TestDTDRecursion:
    def test_self_recursive(self):
        with pytest.raises(XSDError, match="recursive"):
            parse_dtd("<!ELEMENT a (a?)>", root="a")

    def test_mutually_recursive(self):
        with pytest.raises(XSDError, match="recursive"):
            parse_dtd("<!ELEMENT a (b?)><!ELEMENT b (a?)>", root="a")

    def test_repeated_nonrecursive_use_is_fine(self):
        # The same element type used twice (shared type) is NOT recursion.
        tree = parse_dtd(
            "<!ELEMENT r (x, y)><!ELEMENT x (n)><!ELEMENT y (n)>"
            "<!ELEMENT n (#PCDATA)>", root="r")
        assert len(tree.find_tags("n")) == 2


class TestXSDRecursion:
    def test_recursive_named_type(self):
        with pytest.raises(XSDError, match="recursive"):
            parse_xsd("""<xs:schema xmlns:xs="x">
              <xs:complexType name="T"><xs:sequence>
                <xs:element name="child" type="T" minOccurs="0"/>
              </xs:sequence></xs:complexType>
              <xs:element name="root" type="T"/></xs:schema>""")

    def test_shared_named_type_is_fine(self):
        tree = parse_xsd("""<xs:schema xmlns:xs="x">
          <xs:complexType name="P"><xs:sequence>
            <xs:element name="name" type="xs:string"/>
          </xs:sequence></xs:complexType>
          <xs:element name="org"><xs:complexType><xs:sequence>
            <xs:element name="a" type="P"/>
            <xs:element name="b" type="P"/>
          </xs:sequence></xs:complexType></xs:element></xs:schema>""")
        assert len(tree.find_tags("name")) == 2
