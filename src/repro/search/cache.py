"""Persistent cross-run evaluation cache.

Costing a mapping is the search layer's unit of work: schema
derivation, workload translation, and a full tuning-advisor run with
dozens of what-if optimizer calls. Repeated benchmark and experiment
runs over the same (workload, statistics, storage bound) problem re-pay
all of it from scratch. This module makes evaluations durable: results
are keyed by ``(mapping digest, workload digest, stats digest,
storage bound)`` and serialized under a cache directory, so a warm
rerun of the same search performs zero evaluations.

Key structure
-------------

* the **problem digest** hashes the workload (queries, weights, insert
  loads), the collected statistics, and the storage bound — anything
  that changes evaluation results changes the digest, so stale entries
  are simply never looked up (invalidation by key);
* the **mapping digest** identifies the candidate mapping
  (:func:`repro.search.evaluator.mapping_digest`);
* the **kind** separates exact evaluations from partial (cost-derived)
  ones, whose results additionally depend on the reused per-query costs
  — those are folded into an **extra** digest.

Entries live at ``<root>/<problem digest>/<kind>-<mapping digest>
[-<extra>].pkl``. Infeasible mappings are cached too (a pickled
``None``), so a workload that cannot be translated under some mapping
is not re-attempted on every run.

Hits served from this store are *warm* hits (they crossed a process
boundary); hits served from a :class:`MappingEvaluator`'s in-memory
memo are *cold* hits. Both are counted under separate ``repro.obs``
metrics (``evalcache.warm_hits`` vs. ``evaluator.cache_hits_*``) —
see docs/performance.md.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from ..mapping import CollectedStats
from ..obs import NullTracer, Tracer, get_tracer
from ..resilience import active_fault_plan, note_suppressed
from ..workload import Workload

__all__ = ["CacheKey", "EvaluationCache", "default_cache_dir",
           "problem_digest", "stats_digest", "workload_digest"]

#: Bump when the pickled payload layout or the digest recipe changes;
#: old entries become unreachable (different problem digest) instead of
#: being deserialized wrongly.
CACHE_VERSION = 2  # 2: dict keys canonicalized in stats digests


def _sha(text: str) -> str:
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def _canonical(value) -> str:
    """A run-to-run-stable serialization of plain data structures.

    ``repr`` alone is not enough: set/frozenset iteration order depends
    on string hashing, and dict order on insertion history. Containers
    are therefore serialized with sorted members — including dict
    *keys*, which may themselves be frozensets (the joint-presence
    statistics) whose repr order changes with ``PYTHONHASHSEED``;
    leaves fall back to ``repr`` (value-based for the dataclasses used
    in statistics).
    """
    if isinstance(value, (Counter, dict)):
        items = sorted(((_canonical(k), _canonical(v))
                        for k, v in value.items()))
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    return repr(value)


def workload_digest(workload: Workload) -> str:
    """Digest of the queries, weights, and insert loads (not the name)."""
    parts = [f"{q.weight!r}|{q.query}" for q in workload.queries]
    parts += [f"insert|{u.weight!r}|{u.target}" for u in workload.updates]
    return _sha("\n".join(parts))


def stats_digest(collected: CollectedStats) -> str:
    """Digest of the finest-granularity collected statistics."""
    return _sha(_canonical({
        "total_elements": collected.total_elements,
        "instance_counts": collected.instance_counts,
        "leaf_stats": {k: repr(v) for k, v in collected.leaf_stats.items()},
        "cardinality": collected.cardinality,
        "joint": collected.joint,
    }))


def problem_digest(workload: Workload, collected: CollectedStats,
                   storage_bound: int | None) -> str:
    """One digest for everything that determines evaluation results."""
    return _sha(f"v{CACHE_VERSION}|{workload_digest(workload)}"
                f"|{stats_digest(collected)}|{storage_bound!r}")


@dataclass(frozen=True)
class CacheKey:
    """Address of one persisted evaluation."""

    problem: str
    mapping: str
    kind: str = "exact"
    extra: str = ""

    def relative_path(self) -> Path:
        name = f"{self.kind}-{self.mapping}"
        if self.extra:
            name += f"-{self.extra}"
        return Path(self.problem[:16]) / f"{name}.pkl"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro/evals``."""
    env = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "evals"


class EvaluationCache:
    """File-backed store of :class:`EvaluatedMapping` results.

    The cache never invalidates by time or heuristics — every input
    that affects a result is part of its key, so entries are immutable
    facts about a problem. ``clear``/``invalidate`` exist for disk
    hygiene, not correctness.
    """

    def __init__(self, root: str | Path | None = None,
                 tracer: Tracer | NullTracer | None = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("evalcache")

    # ------------------------------------------------------------------
    def _path(self, key: CacheKey) -> Path:
        return self.root / key.relative_path()

    def get(self, key: CacheKey) -> tuple[bool, object]:
        """``(found, value)``; a found ``None`` is a cached infeasible
        mapping, which is why the flag is separate from the value."""
        fault = active_fault_plan().fire("cache.read")
        if fault is not None:
            # An unreadable store degrades to a miss: the evaluation is
            # recomputed, never lost.
            self._metrics.incr("read_faults")
            self._metrics.incr("misses")
            return False, None
        path = self._path(key)
        try:
            payload = path.read_bytes()
        except OSError:
            self._metrics.incr("misses")
            return False, None
        try:
            value = pickle.loads(payload)
        except Exception as exc:
            # A truncated/stale entry behaves like a miss and is removed
            # so it cannot mask itself as warm forever. The recovery is
            # recorded durably (``recoveries.log``) so ``repro cache
            # report`` can surface how often the store healed itself.
            note_suppressed(exc, "evalcache.load", self.tracer)
            path.unlink(missing_ok=True)
            self._record_recovery(path)
            self._metrics.incr("corrupt_entries")
            self._metrics.incr("misses")
            return False, None
        self._metrics.incr("warm_hits")
        return True, value

    def put(self, key: CacheKey, value: object) -> None:
        payload = pickle.dumps(value)
        fault = active_fault_plan().fire("cache.write")
        if fault is not None:
            if fault.kind != "torn":
                self._metrics.incr("write_faults")
                return  # a failed store degrades to a no-op
            # A torn write persists a half-written entry — the read
            # side must recover from it (see ``get``).
            payload = payload[:max(len(payload) // 2, 1)]
            self._metrics.incr("torn_writes")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            return  # a read-only cache dir degrades to a no-op store
        self._metrics.incr("stores")

    # ------------------------------------------------------------------
    @property
    def _recovery_log(self) -> Path:
        return self.root / "recoveries.log"

    def _record_recovery(self, path: Path) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self._recovery_log, "a", encoding="utf-8") as fh:
                fh.write(f"{path.parent.name}/{path.name}\n")
        except OSError:
            pass  # accounting must never make recovery itself fail

    def recoveries(self) -> int:
        """How many corrupt entries this store has ever recovered from."""
        try:
            with open(self._recovery_log, encoding="utf-8") as fh:
                return sum(1 for line in fh if line.strip())
        except OSError:
            return 0

    def invalidate(self, key: CacheKey) -> bool:
        """Drop one entry; ``True`` when it existed."""
        path = self._path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        if existed:
            self._metrics.incr("invalidations")
        return existed

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        if not self.root.exists():
            return []
        return sorted(self.root.rglob("*.pkl"))

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            path.unlink(missing_ok=True)
            removed += 1
        # Prune now-empty problem directories.
        if self.root.exists():
            for child in sorted(self.root.iterdir()):
                if child.is_dir():
                    try:
                        child.rmdir()
                    except OSError:
                        pass
        self._recovery_log.unlink(missing_ok=True)
        self._metrics.incr("clears")
        return removed

    def report(self) -> str:
        """Human-readable summary for the ``repro cache`` CLI."""
        entries = self.entries()
        total_bytes = sum(path.stat().st_size for path in entries)
        per_problem: Counter = Counter(path.parent.name for path in entries)
        per_kind: Counter = Counter(path.name.split("-", 1)[0]
                                    for path in entries)
        lines = [f"cache root: {self.root}",
                 f"entries: {len(entries)} "
                 f"({total_bytes / 1024:.1f} KB)"]
        for kind in sorted(per_kind):
            lines.append(f"  {kind}: {per_kind[kind]}")
        for problem in sorted(per_problem):
            lines.append(f"  problem {problem}: {per_problem[problem]} "
                         f"entries")
        recovered = self.recoveries()
        if recovered:
            lines.append(f"corrupt entries recovered: {recovered}")
        return "\n".join(lines)
