#!/usr/bin/env python
"""SIGKILL resume smoke test: kill a checkpointed search, resume it,
and require the resumed DesignResult to match an uninterrupted run.

tests/test_checkpoint.py proves the same property with an injected
fatal fault (deterministic, in-process). This script is the CI
complement with a *real* ``SIGKILL``: the child search is slowed down
with ``hang`` faults so it writes at least one checkpoint before the
parent kills it -9 mid-flight, then the parent resumes from the
surviving snapshot.

Usage: python scripts/resume_smoke.py [--scale N]
Exit 0 on success, 1 on mismatch/failure.
"""

import argparse
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.experiments import DatasetBundle  # noqa: E402
from repro.resilience import NULL_PLAN, install_fault_plan  # noqa: E402
from repro.search import GreedySearch, mapping_digest  # noqa: E402

# Each evaluation sleeps this long in the child, giving the parent a
# comfortable window between "first checkpoint exists" and "search
# done" in which to deliver the SIGKILL.
HANG_SPEC = "evaluate:1:hang:0.2"


def _problem(scale):
    bundle = DatasetBundle.dblp(scale=scale, seed=11)
    workload = bundle.workload_generator(seed=5).generate(4)
    return bundle, workload


def _fingerprint(result):
    return (mapping_digest(result.mapping), tuple(result.applied),
            result.estimated_cost, result.configuration.describe())


def _child(scale, ckpt_dir):
    install_fault_plan(HANG_SPEC)
    bundle, workload = _problem(scale)
    GreedySearch(bundle.tree, workload, bundle.stats, bundle.storage_bound,
                 checkpoint=ckpt_dir).run()
    return 0


def _parent(scale, ckpt_dir):
    bundle, workload = _problem(scale)
    print("resume-smoke: running uninterrupted baseline ...", flush=True)
    baseline = GreedySearch(bundle.tree, workload, bundle.stats,
                            bundle.storage_bound).run()

    ckpt_file = Path(ckpt_dir) / "search.ckpt"
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(
                   filter(None, [str(REPO / "src"),
                                 os.environ.get("PYTHONPATH")])))
    child = subprocess.Popen(
        [sys.executable, __file__, "--child", "--scale", str(scale),
         "--checkpoint-dir", str(ckpt_dir)], env=env)
    try:
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            if child.poll() is not None:
                # Finished before we struck — the final checkpoint still
                # exists, so the resume path below remains meaningful.
                print("resume-smoke: child finished before the kill",
                      flush=True)
                break
            if ckpt_file.exists():
                time.sleep(1.0)  # let a round or two more land
                print("resume-smoke: checkpoint seen, sending SIGKILL",
                      flush=True)
                child.send_signal(signal.SIGKILL)
                child.wait(timeout=30)
                break
            time.sleep(0.1)
        else:
            print("resume-smoke: FAIL — no checkpoint within 120s")
            return 1
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)

    if not ckpt_file.exists():
        print("resume-smoke: FAIL — checkpoint file missing after kill")
        return 1
    install_fault_plan(NULL_PLAN)
    print("resume-smoke: resuming from the surviving checkpoint ...",
          flush=True)
    resumed = GreedySearch(bundle.tree, workload, bundle.stats,
                           bundle.storage_bound, checkpoint=ckpt_dir,
                           resume=True).run()
    if _fingerprint(resumed) != _fingerprint(baseline):
        print("resume-smoke: FAIL — resumed result differs from baseline")
        print(f"  baseline: {_fingerprint(baseline)}")
        print(f"  resumed:  {_fingerprint(resumed)}")
        return 1
    print(f"resume-smoke: PASS — resumed design identical "
          f"(cost {resumed.estimated_cost:.1f}, "
          f"{len(resumed.applied)} transformations)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=int, default=150)
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--checkpoint-dir", default=None)
    args = parser.parse_args()
    if args.child:
        return _child(args.scale, args.checkpoint_dir)
    import tempfile
    ckpt_dir = args.checkpoint_dir
    if ckpt_dir is None:
        with tempfile.TemporaryDirectory(prefix="resume-smoke-") as tmp:
            return _parent(args.scale, tmp)
    return _parent(args.scale, ckpt_dir)


if __name__ == "__main__":
    sys.exit(main())
