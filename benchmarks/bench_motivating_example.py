"""E0 — the Section 1.1 motivating example.

Paper: with tuned physical designs, Mapping 2 (repetition split) runs
the SIGMOD query ~20x faster than Mapping 1 (hybrid inlining); without
indexes, the ordering reverses — proving logical-then-physical design
picks the wrong mapping.
"""

from repro.experiments import format_table, run_motivating_example


def test_motivating_example(benchmark, dblp_bundle, emit):
    result = benchmark.pedantic(
        lambda: run_motivating_example(dblp_bundle),
        rounds=1, iterations=1)
    emit(format_table(
        "E0 (Section 1.1) — SIGMOD query cost under both mappings",
        ["mapping", "untuned cost", "tuned cost"], result.rows(),
        note=(f"tuned speed-up of Mapping 2: {result.tuned_speedup:.1f}x "
              f"(paper: ~20x at 100 MB); untuned ordering reverses: "
              f"{result.ordering_reverses_untuned} (paper: yes)")))
    # Shape assertions.
    assert result.tuned_speedup >= 2.0, \
        "tuned repetition-split mapping must clearly win"
    assert result.ordering_reverses_untuned, \
        "without indexes, hybrid inlining must win (the paper's reversal)"
