"""Satellite invariant sweep: every mapping preset and every transform
sequence the search can emit derives a schema that passes the mapping
invariant checker (MAP001-MAP007)."""

import pytest

from repro.check import check_mapping, check_schema, check_transform
from repro.experiments import DatasetBundle
from repro.mapping import (derive_schema, enumerate_transformations,
                           fully_inlined, fully_split, hybrid_inlining,
                           shared_inlining)
from repro.xsd import parse_dtd

SHOP_DTD = """
<!ELEMENT shop (item*)>
<!ELEMENT item (name, kind, price, label*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT kind (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT label (#PCDATA)>
"""

PRESETS = [fully_inlined, hybrid_inlining, shared_inlining, fully_split]


def _trees():
    return [
        ("shop", parse_dtd(SHOP_DTD, root="shop")),
        ("dblp", DatasetBundle.dblp(scale=60, seed=3).tree),
        ("movie", DatasetBundle.movie(scale=60, seed=3).tree),
    ]


_TREES = _trees()


@pytest.mark.parametrize("tree_name,tree",
                         _TREES, ids=[name for name, _ in _TREES])
@pytest.mark.parametrize("preset", PRESETS,
                         ids=[p.__name__ for p in PRESETS])
def test_presets_pass_invariant_checker(preset, tree_name, tree):
    mapping = preset(tree)
    assert not check_mapping(mapping), check_mapping(mapping).render()
    schema = derive_schema(mapping)
    assert not check_schema(schema), check_schema(schema).render()


@pytest.mark.parametrize("tree_name,tree",
                         _TREES, ids=[name for name, _ in _TREES])
def test_transform_sequences_preserve_invariants(tree_name, tree):
    """BFS over the transformation space to depth 2 (capped): every
    reachable mapping derives a valid schema, and no single rewrite
    changes which value nodes are stored (MAP007)."""
    frontier = [hybrid_inlining(tree)]
    seen = {frontier[0].signature()}
    checked = 0
    for _depth in range(2):
        next_frontier = []
        for mapping in frontier:
            before = derive_schema(mapping)
            candidates = enumerate_transformations(
                mapping, include_subsumed=True, default_split_count=3)
            for transformation in candidates:
                applied = transformation.apply(mapping)
                if applied.signature() in seen:
                    continue
                seen.add(applied.signature())
                assert not check_mapping(applied), (
                    f"{transformation}: " + check_mapping(applied).render())
                after = derive_schema(applied)
                schema_findings = check_schema(after)
                assert not schema_findings, (
                    f"{transformation}: " + schema_findings.render())
                drift = check_transform(before, after, str(transformation))
                assert not drift, drift.render()
                next_frontier.append(applied)
                checked += 1
                if checked >= 40:
                    return
        frontier = next_frontier
    assert checked > 0
