"""Quickstart: shred XML into a relational database and run XPath on it.

Covers the library's basic flow end to end on a tiny inline data set:

1. define an XML schema (here from a DTD),
2. validate and shred documents into relational tables,
3. translate an XPath query to SQL (sorted outer union) and execute it,
4. let the tuning advisor pick indexes and see the cost drop.

Run with::

    python examples/quickstart.py
"""

from repro import (Database, IndexTuningAdvisor, Workload, derive_schema,
                   hybrid_inlining, load_documents, parse_dtd, parse_xml,
                   render, translate_xpath, validate)
from repro.physdesign import materialize

DTD = """
<!ELEMENT catalog (product*)>
<!ELEMENT product (name, category, price, tag*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT category (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT tag (#PCDATA)>
"""

XML = """
<catalog>
  <product><name>Espresso machine</name><category>kitchen</category>
           <price>229</price><tag>coffee</tag><tag>steel</tag></product>
  <product><name>Chef knife</name><category>kitchen</category>
           <price>89</price><tag>steel</tag></product>
  <product><name>Desk lamp</name><category>office</category>
           <price>39</price></product>
  <product><name>Monitor arm</name><category>office</category>
           <price>119</price><tag>steel</tag></product>
</catalog>
"""


def main() -> None:
    # 1. Schema and documents.
    tree = parse_dtd(DTD, root="catalog")
    doc = parse_xml(XML)
    validate(doc, tree)
    print("schema tree:")
    print(tree.pretty(), "\n")

    # 2. Pick a logical mapping (hybrid inlining [20]) and shred.
    mapping = hybrid_inlining(tree)
    schema = derive_schema(mapping)
    print("relational schema:")
    print(schema.describe(), "\n")

    db = Database("catalog")
    load_documents(db, schema, doc)
    for name, table in db.catalog.tables.items():
        print(f"  {name}: {table.row_count} rows")

    # 3. Translate an XPath query and execute it.
    xpath = '/catalog/product[category = "kitchen"]/(name | price | tag)'
    sql = translate_xpath(schema, xpath)
    print(f"\nXPath: {xpath}")
    print("SQL:")
    print(render(sql, indent="  "))
    result = db.execute(sql)
    print(f"\n{len(result.rows)} result rows (cost {result.cost:.2f}):")
    for row in result.rows:
        print("  ", row)

    # 4. Ask the advisor for a physical design and re-run.
    workload = Workload.from_strings("catalog", [xpath])
    sql_workload = [(translate_xpath(schema, wq.query), wq.weight)
                    for wq in workload]
    advisor = IndexTuningAdvisor(db)
    recommendation = advisor.tune(sql_workload)
    print("\nrecommended physical design:")
    print(recommendation.configuration.describe())
    materialize(db, recommendation.configuration)
    tuned = db.execute(sql)
    print(f"cost before tuning: {result.cost:.2f}, after: {tuned.cost:.2f}")


if __name__ == "__main__":
    main()
