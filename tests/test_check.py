"""Tests for the repro.check static-analysis subsystem."""

import os

import pytest

from repro.check import (CODES, Findings, Severity, analyze_query,
                         check_plan, check_schema, check_transform,
                         checks_enabled, enforce, lint_bundle,
                         override_checks)
from repro.engine import Column, Database, Index, SQLType
from repro.engine.optimizer import Optimizer
from repro.errors import CheckError
from repro.experiments import DatasetBundle
from repro.mapping import derive_schema, hybrid_inlining
from repro.obs import Tracer, to_json
from repro.search.evaluator import build_stats_only_database
from repro.sqlast import parse_sql


# ----------------------------------------------------------------------
# Findings engine
# ----------------------------------------------------------------------
class TestFindings:
    def test_add_uses_registry_severity(self):
        findings = Findings()
        finding = findings.add("SQL001", "boom", "select[0]")
        assert finding.severity is Severity.ERROR
        assert findings.add("SQL009", "w").severity is Severity.WARNING

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            Findings().add("SQL999", "nope")

    def test_accessors_and_rendering(self):
        findings = Findings()
        findings.add("SQL003", "no such column", "select[0].where")
        findings.add("SQL009", "null compare")
        assert len(findings) == 2 and bool(findings)
        assert len(findings.errors) == 1
        assert len(findings.warnings) == 1
        text = findings.render()
        assert "ERROR SQL003 [select[0].where]: no such column" in text
        dicts = findings.to_dicts()
        assert dicts[0] == {"code": "SQL003", "severity": "error",
                            "message": "no such column",
                            "location": "select[0].where"}

    def test_concatenation(self):
        a, b = Findings(), Findings()
        a.add("SQL001", "x")
        b.add("MAP002", "y")
        assert [f.code for f in a + b] == ["SQL001", "MAP002"]
        a.extend(b)
        assert len(a) == 2

    def test_every_code_has_summary(self):
        for code, (severity, summary) in CODES.items():
            assert isinstance(severity, Severity)
            assert summary

    def test_dedupe_drops_exact_duplicates_only(self):
        findings = Findings()
        findings.add("SQL001", "boom", "select[0]")
        findings.add("SQL001", "boom", "select[0]")     # exact duplicate
        findings.add("SQL001", "boom", "select[1]")     # different site
        findings.add("SQL009", "null compare")
        deduped = findings.dedupe()
        assert len(findings) == 4                        # original intact
        assert [(f.code, f.location) for f in deduped] == \
            [("SQL001", "select[0]"), ("SQL001", "select[1]"),
             ("SQL009", "")]

    def test_baseline_load_reemit_identical(self, tmp_path):
        from repro.check.code import (Baseline, load_baseline,
                                      write_baseline)
        findings = Findings()
        findings.add("DET001", "unseeded", "b.py:2")
        findings.add("RES001", "swallowed", "a.py:9")
        path = write_baseline(
            tmp_path / "b.json",
            Baseline.from_findings(findings, "legacy"))
        original = path.read_text()
        write_baseline(path, load_baseline(path))
        assert path.read_text() == original
        assert "legacy" in original

    def test_code_lint_strict_exit_codes(self, tmp_path):
        # Warnings pass by default; --strict turns them into failure;
        # errors fail either way.
        from repro.cli import main
        (tmp_path / "warn.py").write_text(
            "import random\nVALUE = random.random()\n")
        assert main(["check", "--code", "--path", str(tmp_path)]) == 0
        assert main(["check", "--code", "--strict",
                     "--path", str(tmp_path)]) == 1
        (tmp_path / "err.py").write_text(
            "class S:\n"
            "    def work(self):\n"
            "        self.n += 1\n"
            "    def run(self, pool):\n"
            "        pool.submit(self.work)\n")
        assert main(["check", "--code", "--path", str(tmp_path)]) == 1


# ----------------------------------------------------------------------
# Gating and enforcement
# ----------------------------------------------------------------------
class TestRuntime:
    def test_on_by_default_under_pytest(self):
        with override_checks(None):
            if "REPRO_CHECK" not in os.environ:
                assert checks_enabled()

    def test_env_forces_off_and_on(self, monkeypatch):
        with override_checks(None):
            monkeypatch.setenv("REPRO_CHECK", "0")
            assert not checks_enabled()
            monkeypatch.setenv("REPRO_CHECK", "off")
            assert not checks_enabled()
            monkeypatch.setenv("REPRO_CHECK", "1")
            assert checks_enabled()

    def test_override_wins_and_restores(self):
        with override_checks(False):
            assert not checks_enabled()
            with override_checks(True):
                assert checks_enabled()
            assert not checks_enabled()

    def test_enforce_raises_with_findings_attached(self):
        findings = Findings()
        findings.add("PLAN001", "cost is nan")
        with pytest.raises(CheckError) as info:
            enforce(findings, context="unit-test")
        assert "unit-test" in str(info.value)
        assert "PLAN001" in str(info.value)
        assert info.value.findings is findings

    def test_enforce_passes_warnings_through(self):
        findings = Findings()
        findings.add("SQL009", "null compare")
        assert enforce(findings) is findings

    def test_enforce_records_tracer_events(self):
        tracer = Tracer()
        findings = Findings()
        findings.add("MAP002", "lossy", "node[3]")
        with pytest.raises(CheckError):
            enforce(findings, tracer, context="t")
        assert "check.violation" in to_json(tracer)
        assert tracer.metrics("check").get("violations_error") == 1
        assert tracer.metrics("check").get("code_MAP002") == 1


# ----------------------------------------------------------------------
# SQL semantic analyzer
# ----------------------------------------------------------------------
@pytest.fixture
def catalog():
    db = Database()
    db.create_table("person", [
        Column("ID", SQLType.INTEGER, nullable=False),
        Column("PID", SQLType.INTEGER),
        Column("name", SQLType.VARCHAR),
        Column("age", SQLType.INTEGER),
    ])
    db.create_table("address", [
        Column("ID", SQLType.INTEGER, nullable=False),
        Column("PID", SQLType.INTEGER),
        Column("city", SQLType.VARCHAR),
    ])
    return db.catalog


def _codes(query_text, catalog):
    return [f.code for f in analyze_query(parse_sql(query_text), catalog)]


class TestSQLAnalyzer:
    def test_clean_query(self, catalog):
        sql = ("SELECT p.name, a.city FROM person p, address a "
               "WHERE p.ID = a.PID AND p.age >= 30 ORDER BY 1")
        assert _codes(sql, catalog) == []

    def test_unknown_table(self, catalog):
        assert "SQL001" in _codes("SELECT x.ID FROM nope x", catalog)

    def test_duplicate_alias(self, catalog):
        assert "SQL002" in _codes(
            "SELECT p.ID FROM person p, address p", catalog)

    def test_unresolved_column(self, catalog):
        assert _codes("SELECT p.shoe FROM person p", catalog) == ["SQL003"]

    def test_unknown_alias(self, catalog):
        assert "SQL003" in _codes(
            "SELECT q.name FROM person p", catalog)

    def test_ambiguous_unqualified(self, catalog):
        assert "SQL004" in _codes(
            "SELECT ID FROM person p, address a", catalog)

    def test_unqualified_resolves_when_unique(self, catalog):
        assert _codes("SELECT city FROM person p, address a", catalog) == []

    def test_type_incompatible_comparison(self, catalog):
        assert "SQL005" in _codes(
            "SELECT p.ID FROM person p WHERE p.age = 'young'", catalog)

    def test_numeric_string_against_numeric_column_ok(self, catalog):
        # the XPath translator always emits string literals
        assert _codes(
            "SELECT p.ID FROM person p WHERE p.age >= '1995'", catalog) == []

    def test_column_family_mismatch(self, catalog):
        assert "SQL005" in _codes(
            "SELECT p.ID FROM person p WHERE p.age = p.name", catalog)

    def test_null_literal_comparison_warns(self, catalog):
        findings = analyze_query(parse_sql(
            "SELECT p.ID FROM person p WHERE p.name = NULL"), catalog)
        assert [f.code for f in findings] == ["SQL009"]
        assert findings.errors == []

    def test_union_type_mismatch(self, catalog):
        sql = ("SELECT p.age FROM person p "
               "UNION ALL SELECT a.city FROM address a")
        assert "SQL006" in _codes(sql, catalog)

    def test_union_null_padding_ok(self, catalog):
        sql = ("SELECT p.age, NULL FROM person p "
               "UNION ALL SELECT NULL, a.city FROM address a")
        assert _codes(sql, catalog) == []

    def test_order_by_out_of_range(self, catalog):
        assert "SQL007" in _codes(
            "SELECT p.ID FROM person p ORDER BY 2", catalog)

    def test_exists_without_correlation(self, catalog):
        sql = ("SELECT p.ID FROM person p WHERE EXISTS "
               "(SELECT 1 FROM address a WHERE a.city = 'x')")
        assert "SQL008" in _codes(sql, catalog)

    def test_exists_correlated_ok(self, catalog):
        sql = ("SELECT p.ID FROM person p WHERE EXISTS "
               "(SELECT 1 FROM address a WHERE a.PID = p.ID)")
        assert _codes(sql, catalog) == []

    def test_exists_multiple_inner_tables(self, catalog):
        sql = ("SELECT p.ID FROM person p WHERE EXISTS "
               "(SELECT 1 FROM address a, person q "
               "WHERE a.PID = p.ID)")
        assert "SQL008" in _codes(sql, catalog)

    def test_exists_inner_bad_column(self, catalog):
        sql = ("SELECT p.ID FROM person p WHERE EXISTS "
               "(SELECT 1 FROM address a WHERE a.nope = p.ID)")
        assert "SQL003" in _codes(sql, catalog)


# ----------------------------------------------------------------------
# Mapping invariant checker (corruption cases)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def dblp_bundle():
    return DatasetBundle.dblp(scale=120, seed=7)


class TestMappingChecker:
    def _schema(self, bundle):
        return derive_schema(hybrid_inlining(bundle.tree))

    def test_clean_schema(self, dblp_bundle):
        assert not check_schema(self._schema(dblp_bundle))

    def test_missing_leaf_storage_is_lossy(self, dblp_bundle):
        schema = self._schema(dblp_bundle)
        victim = next(iter(schema.leaf_storage))
        del schema.leaf_storage[victim]
        assert [f.code for f in check_schema(schema)] == ["MAP002"]

    def test_missing_key_column(self, dblp_bundle):
        schema = self._schema(dblp_bundle)
        group = next(iter(schema.groups.values()))
        group.columns = [c for c in group.columns if c.name != "ID"]
        codes = {f.code for f in check_schema(schema)}
        assert "MAP003" in codes
        assert "MAP005" in codes  # partitions still list the column

    def test_mistyped_key_column(self, dblp_bundle):
        schema = self._schema(dblp_bundle)
        group = next(iter(schema.groups.values()))
        group.column("ID").sql_type = SQLType.VARCHAR
        assert "MAP003" in {f.code for f in check_schema(schema)}

    def test_dangling_parent_link(self, dblp_bundle):
        schema = self._schema(dblp_bundle)
        child = next(g for g in schema.groups.values()
                     if g.parent_annotation is not None)
        child.parent_annotation = "ghost"
        assert "MAP004" in {f.code for f in check_schema(schema)}

    def test_orphan_group_cycle(self, dblp_bundle):
        schema = self._schema(dblp_bundle)
        names = list(schema.groups)
        child = next(g for g in schema.groups.values()
                     if g.parent_annotation is not None)
        child.parent_annotation = child.annotation  # self-parented cycle
        assert "MAP004" in {f.code for f in check_schema(schema)}
        assert names  # schema untouched otherwise

    def test_partition_with_phantom_column(self, dblp_bundle):
        schema = self._schema(dblp_bundle)
        group = next(iter(schema.groups.values()))
        partition = group.partitions[0]
        partition.column_names = partition.column_names + ("phantom",)
        assert "MAP005" in {f.code for f in check_schema(schema)}

    def test_storage_pointing_at_missing_column(self, dblp_bundle):
        schema = self._schema(dblp_bundle)
        storage = next(s for s in schema.leaf_storage.values()
                       if s.column is not None)
        storage.column = "no_such_column"
        assert "MAP006" in {f.code for f in check_schema(schema)}

    def test_transform_coverage_loss(self, dblp_bundle):
        before = self._schema(dblp_bundle)
        after = self._schema(dblp_bundle)
        victim = next(iter(after.leaf_storage))
        del after.leaf_storage[victim]
        findings = check_transform(before, after, "UnitTestRewrite")
        assert [f.code for f in findings] == ["MAP007"]
        assert "UnitTestRewrite" in findings.items[0].message
        assert not check_transform(before, before)


# ----------------------------------------------------------------------
# Plan sanitizer
# ----------------------------------------------------------------------
class TestPlanChecker:
    @pytest.fixture
    def planned(self, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        db = build_stats_only_database(schema, dblp_bundle.stats)
        table = sorted(db.catalog.tables)[0]
        query = parse_sql(f"SELECT t.ID FROM {table} t WHERE t.ID = '5'")
        with override_checks(False):
            plan = db.estimate(query)
        return db, query, plan

    def test_clean_plan(self, planned):
        db, query, plan = planned
        assert not check_plan(query, plan, db.catalog, what_if=True)

    def test_negative_cost_estimate(self, planned):
        db, query, plan = planned
        plan.root.est_cost = -1.0
        assert "PLAN001" in {f.code
                             for f in check_plan(query, plan, db.catalog,
                                                 what_if=True)}

    def test_nan_total(self, planned):
        db, query, plan = planned
        plan.est_cost = float("nan")
        assert "PLAN001" in {f.code
                             for f in check_plan(query, plan, db.catalog,
                                                 what_if=True)}

    def test_undeclared_index(self, planned, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        db = build_stats_only_database(schema, dblp_bundle.stats)
        table = sorted(db.catalog.tables)[0]
        hyp = Index(name="hyp_id", table_name=table,
                    key_columns=("ID",), hypothetical=True)
        query = parse_sql(f"SELECT t.ID FROM {table} t WHERE t.ID = '5'")
        with override_checks(False):
            plan = db.estimate(query, extra_indexes=[hyp])
        # declared: clean; undeclared: PLAN002
        assert not check_plan(query, plan, db.catalog,
                              extra_indexes=[hyp], what_if=True)
        codes = {f.code for f in check_plan(query, plan, db.catalog,
                                            what_if=True)}
        if "hyp_id" in str(plan.root.explain()):
            assert "PLAN002" in codes

    def test_branch_count_mismatch(self, planned):
        db, query, plan = planned
        plan.branch_plans = []
        assert "PLAN006" in {f.code
                             for f in check_plan(query, plan, db.catalog,
                                                 what_if=True)}

    def test_unknown_scan_table(self, planned):
        db, query, plan = planned
        from repro.engine.plans import SeqScan
        scans = [n for n in _walk(plan.root) if isinstance(n, SeqScan)]
        if scans:
            scans[0].table_name = "vanished"
            assert "PLAN003" in {f.code
                                 for f in check_plan(query, plan, db.catalog,
                                                     what_if=True)}


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)


# ----------------------------------------------------------------------
# Debug-mode wiring: corrupted artifacts are caught before costing
# ----------------------------------------------------------------------
class TestWiring:
    def test_corrupted_plan_caught_by_estimate(self, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        db = build_stats_only_database(schema, dblp_bundle.stats)
        table = sorted(db.catalog.tables)[0]
        query = parse_sql(f"SELECT t.ID FROM {table} t")
        original = Optimizer.plan

        def corrupting(self, q):
            planned = original(self, q)
            planned.root.est_cost = float("nan")
            return planned

        try:
            Optimizer.plan = corrupting
            with override_checks(True), pytest.raises(CheckError) as info:
                db.estimate(query)
            assert any(f.code == "PLAN001" for f in info.value.findings)
            with override_checks(False):
                db.estimate(query)  # gate off: corruption passes through
        finally:
            Optimizer.plan = original

    def test_corrupted_mapping_caught_by_evaluator(self, dblp_bundle,
                                                   monkeypatch):
        import repro.search.evaluator as evaluator_mod
        from repro.search.evaluator import MappingEvaluator
        from repro.workload import Workload

        workload = Workload("w")
        workload.add("//inproceedings/title")
        real_derive = evaluator_mod.derive_schema

        def lossy_derive(mapping):
            schema = real_derive(mapping)
            victim = next(iter(schema.leaf_storage))
            del schema.leaf_storage[victim]
            return schema

        monkeypatch.setattr(evaluator_mod, "derive_schema", lossy_derive)
        evaluator = MappingEvaluator(workload, dblp_bundle.stats)
        with override_checks(True), pytest.raises(CheckError) as info:
            evaluator.evaluate(hybrid_inlining(dblp_bundle.tree))
        assert any(f.code == "MAP002" for f in info.value.findings)

    def test_sql_analysis_memoized_per_query_object(self, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        db = build_stats_only_database(schema, dblp_bundle.stats)
        table = sorted(db.catalog.tables)[0]
        query = parse_sql(f"SELECT t.ID FROM {table} t")
        with override_checks(True):
            db.estimate(query)
            db.estimate(query)
        assert len(db._analysis_cache) == 1


# ----------------------------------------------------------------------
# End-to-end: search runs cleanly, bundle lint works
# ----------------------------------------------------------------------
class TestEndToEnd:
    @pytest.mark.parametrize("make", [DatasetBundle.dblp,
                                      DatasetBundle.movie])
    def test_greedy_search_zero_findings(self, make):
        from repro.search import GreedySearch

        bundle = make(scale=120, seed=7)
        workload = bundle.workload_generator(seed=11).generate(4)
        tracer = Tracer()
        with override_checks(True):
            result = GreedySearch(bundle.tree, workload, bundle.stats,
                                  tracer=tracer).run()
        assert result.estimated_cost > 0
        assert "check.violation" not in to_json(tracer)
        assert tracer.metrics("check").snapshot() == {}

    def test_lint_bundle_clean(self, dblp_bundle):
        workload = dblp_bundle.workload_generator(seed=5).generate(5)
        report = lint_bundle(hybrid_inlining(dblp_bundle.tree), workload,
                             dblp_bundle.stats)
        assert report.ok
        assert report.queries_checked == 5
        assert "OK" in report.summary()

    def test_lint_bundle_reports_corruption(self, dblp_bundle,
                                            monkeypatch):
        import repro.check.bundle as bundle_mod

        workload = dblp_bundle.workload_generator(seed=5).generate(2)
        real_derive = bundle_mod.derive_schema

        def lossy_derive(mapping):
            schema = real_derive(mapping)
            victim = next(iter(schema.leaf_storage))
            del schema.leaf_storage[victim]
            return schema

        monkeypatch.setattr(bundle_mod, "derive_schema", lossy_derive)
        report = lint_bundle(hybrid_inlining(dblp_bundle.tree), workload,
                             dblp_bundle.stats)
        assert not report.ok
        assert any(f.code == "MAP002" for f in report.findings)
