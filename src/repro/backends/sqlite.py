"""A real-DBMS execution backend on stdlib ``sqlite3``.

Loads a mapped schema's shredded tables into one SQLite database
(in-memory by default), applies a physical configuration (real
``CREATE INDEX``; join views and partitions as populated tables), and
executes translated queries with warmup/repetition wall-clock timing.

Data loading goes through :func:`repro.mapping.shred_typed_rows` — the
same shred-and-coerce step the in-memory engine uses — so both backends
see byte-identical rows, and any result divergence is a semantics bug,
never a loading artifact.
"""

from __future__ import annotations

import sqlite3

from ..engine import Database
from ..errors import ReproError
from ..mapping import MappedSchema, shred_typed_rows
from ..obs import NullTracer, Tracer, get_tracer
from ..physdesign import Configuration
from ..sqlast import Query
from .base import QueryTiming, timed_runs
from .dialect import (create_index_sql, create_table_sql,
                      create_view_table_sql, insert_sql, render_query)


class BackendError(ReproError):
    """A backend operation failed (DDL, load, or execution)."""


def _storable(value):
    # sqlite3 binds bools as 0/1 already; this keeps loaded bytes
    # identical to what comparisons below assume.
    if isinstance(value, bool):
        return int(value)
    return value


class SQLiteBackend:
    """:class:`~repro.backends.base.SQLBackend` over stdlib sqlite3."""

    name = "sqlite"

    def __init__(self, path: str = ":memory:",
                 tracer: Tracer | NullTracer | None = None):
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("backend.sqlite")
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA synchronous = OFF")
        self.connection.execute("PRAGMA journal_mode = MEMORY")
        self._tables: list[str] = []

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, schema: MappedSchema, docs) -> None:
        """Shred the documents and bulk-load every mapped table."""
        with self.tracer.span("backend.load", backend=self.name) as span:
            typed = shred_typed_rows(schema, docs)
            loaded = 0
            for table in schema.to_engine_tables():
                rows = typed.get(table.name, [])
                loaded += self._create_and_fill(table, rows)
            self.connection.commit()
            span.set("rows", loaded)
            self._metrics.incr("rows_loaded", loaded)

    def load_from_database(self, db: Database) -> None:
        """Copy an already-loaded engine database's base tables."""
        with self.tracer.span("backend.load", backend=self.name,
                              source="engine") as span:
            loaded = 0
            for table in db.catalog.base_tables():
                loaded += self._create_and_fill(table, table.rows or [])
            self.connection.commit()
            span.set("rows", loaded)
            self._metrics.incr("rows_loaded", loaded)

    def _create_and_fill(self, table, rows: list[tuple]) -> int:
        try:
            self.connection.execute(create_table_sql(table))
            if rows:
                self.connection.executemany(
                    insert_sql(table),
                    [tuple(_storable(v) for v in row) for row in rows])
        except sqlite3.Error as exc:
            raise BackendError(
                f"loading table {table.name!r} failed: {exc}") from exc
        self._tables.append(table.name)
        self._metrics.incr("tables_loaded")
        return len(rows)

    # ------------------------------------------------------------------
    # Physical design
    # ------------------------------------------------------------------
    def apply_configuration(self, configuration: Configuration) -> None:
        """CREATE INDEX / materialize join views, then ANALYZE."""
        with self.tracer.span("backend.ddl", backend=self.name,
                              indexes=len(configuration.indexes),
                              views=len(configuration.views)):
            try:
                for view in configuration.views:
                    self.connection.execute(
                        create_view_table_sql(view.name, view.definition))
                    self._metrics.incr("views_built")
                for index in configuration.indexes:
                    self.connection.execute(create_index_sql(index))
                    self._metrics.incr("indexes_built")
                self.connection.execute("ANALYZE")
                self.connection.commit()
            except sqlite3.Error as exc:
                raise BackendError(
                    f"applying configuration failed: {exc}") from exc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def sql_text(self, query: Query) -> str:
        return render_query(query)

    def execute(self, query: Query) -> list[tuple]:
        return self.execute_sql(render_query(query))

    def execute_sql(self, sql: str) -> list[tuple]:
        with self.tracer.span("backend.query", backend=self.name):
            try:
                cursor = self.connection.execute(sql)
                rows = cursor.fetchall()
            except sqlite3.Error as exc:
                raise BackendError(f"query failed: {exc}\nSQL: {sql}") from exc
        self._metrics.incr("queries_executed")
        return rows

    def prepare(self, query: Query) -> None:
        """Compile without running (dialect round-trip check)."""
        sql = render_query(query)
        try:
            self.connection.execute(f"EXPLAIN {sql}").fetchall()
        except sqlite3.Error as exc:
            raise BackendError(
                f"query does not prepare: {exc}\nSQL: {sql}") from exc

    def time_query(self, query: Query, repeat: int = 3,
                   warmup: int = 1) -> QueryTiming:
        sql = render_query(query)
        with self.tracer.span("backend.query", backend=self.name,
                              timed=True) as span:
            timing = timed_runs(
                lambda: self.connection.execute(sql).fetchall(),
                repeat=repeat, warmup=warmup)
            span.set("seconds", timing.seconds)
            span.set("rows", timing.rows)
        self._metrics.incr("queries_timed")
        return timing

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLiteBackend":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
