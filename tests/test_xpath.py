"""Unit tests for the XPath parser and reference evaluator."""

import pytest

from repro.errors import XPathError
from repro.xmlkit import element, parse
from repro.xpath import (Axis, CompareOp, Step, XPathQuery, evaluate,
                         evaluate_values, parse_xpath)


class TestParser:
    def test_simple_absolute_path(self):
        q = parse_xpath("/dblp/inproceedings/title")
        assert [s.name for s in q.steps] == ["dblp", "inproceedings", "title"]
        assert all(s.axis == Axis.CHILD for s in q.steps)
        assert q.projections == ()

    def test_descendant_axis(self):
        q = parse_xpath("//movie/year")
        assert q.steps[0].axis == Axis.DESCENDANT
        assert q.steps[1].axis == Axis.CHILD

    def test_paper_movie_query(self):
        q = parse_xpath('//movie[title = "Titanic"]/(aka_title | avg_rating)')
        assert q.steps == (Step(Axis.DESCENDANT, "movie"),)
        assert q.predicate.op == CompareOp.EQ
        assert q.predicate.value == "Titanic"
        assert q.predicate.path == (Step(Axis.CHILD, "title"),)
        assert q.projection_names == ("aka_title", "avg_rating")

    def test_relational_predicate(self):
        q = parse_xpath('//movie[year >= "1998"]/(title | box_office)')
        assert q.predicate.op == CompareOp.GE
        assert q.predicate.value == "1998"

    def test_existence_predicate(self):
        q = parse_xpath("//movie[avg_rating]/title")
        assert q.predicate.op is None
        assert q.predicate.path == (Step(Axis.CHILD, "avg_rating"),)

    def test_numeric_literal(self):
        q = parse_xpath("//movie[year = 1997]/title")
        assert q.predicate.value == "1997"

    def test_multi_step_predicate_path(self):
        q = parse_xpath('/a/b[c/d = "v"]/e')
        assert [s.name for s in q.predicate.path] == ["c", "d"]

    def test_predicate_on_middle_step(self):
        q = parse_xpath('/a/b[x = "1"]/c/d')
        assert q.predicate_step == 1
        assert [s.name for s in q.steps] == ["a", "b", "c", "d"]

    def test_big_projection_group(self):
        q = parse_xpath('/dblp/inproceedings[year="2000"]/(title | year | '
                        'cdrom | cite | author | editor | pages | booktitle | ee)')
        assert len(q.projections) == 9

    def test_str_roundtrip(self):
        text = '//movie[title = "Titanic"]/(aka_title | avg_rating)'
        q = parse_xpath(text)
        assert parse_xpath(str(q)) == q

    @pytest.mark.parametrize("bad", [
        "movie/title",       # no leading axis
        "/",                 # empty path
        "/a[x='1'][y='2']/b",  # two predicates on one step
        "/a[b='1']/c[d='2']",  # two predicates on different steps
        "/a/(b|c)/d",        # content after projection group
        "/a[b = ]",          # missing literal
        "/a[b 'v']",         # missing operator with literal
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(XPathError):
            parse_xpath(bad)


@pytest.fixture
def movie_doc():
    return parse(
        "<movies>"
        "<movie><title>Titanic</title><year>1997</year>"
        "<aka_title>Le Titanic</aka_title><aka_title>Der Untergang</aka_title>"
        "<avg_rating>7.9</avg_rating><box_office>2000000</box_office></movie>"
        "<movie><title>Lost</title><year>2004</year>"
        "<seasons>6</seasons></movie>"
        "<movie><title>Up</title><year>2009</year>"
        "<avg_rating>8.3</avg_rating><box_office>735000</box_office></movie>"
        "</movies>")


class TestEvaluator:
    def test_child_path(self, movie_doc):
        values = evaluate_values(parse_xpath("/movies/movie/title"), movie_doc)
        assert values == ["Titanic", "Lost", "Up"]

    def test_descendant_path(self, movie_doc):
        values = evaluate_values(parse_xpath("//movie/year"), movie_doc)
        assert values == ["1997", "2004", "2009"]

    def test_equality_predicate(self, movie_doc):
        q = parse_xpath('//movie[title = "Titanic"]/(aka_title | avg_rating)')
        assert evaluate_values(q, movie_doc) == \
            ["Le Titanic", "Der Untergang", "7.9"]

    def test_numeric_comparison(self, movie_doc):
        q = parse_xpath('//movie[year >= "2004"]/title')
        assert evaluate_values(q, movie_doc) == ["Lost", "Up"]

    def test_existence_predicate(self, movie_doc):
        q = parse_xpath("//movie[avg_rating]/title")
        assert evaluate_values(q, movie_doc) == ["Titanic", "Up"]

    def test_choice_branch_access(self, movie_doc):
        q = parse_xpath("//movie/box_office")
        assert evaluate_values(q, movie_doc) == ["2000000", "735000"]

    def test_no_matches(self, movie_doc):
        q = parse_xpath('//movie[title = "Nonexistent"]/year')
        assert evaluate(q, movie_doc) == []

    def test_context_elements_returned_without_projection(self, movie_doc):
        q = parse_xpath('//movie[year = "1997"]')
        result = evaluate(q, movie_doc)
        assert len(result) == 1
        assert result[0].find("title").text == "Titanic"

    def test_descendant_matches_at_any_depth(self):
        doc = element("a", element("b", element("c", "x")),
                      element("c", "y"))
        assert evaluate_values(parse_xpath("//c"), doc) == ["x", "y"]

    def test_root_name_must_match_for_child_axis(self, movie_doc):
        q = parse_xpath("/wrong/movie/title")
        assert evaluate(q, movie_doc) == []

    def test_predicate_on_middle_step(self):
        doc = element(
            "r",
            element("g", element("k", "1"), element("v", "a")),
            element("g", element("k", "2"), element("v", "b")),
        )
        q = parse_xpath('/r/g[k = "2"]/v')
        assert evaluate_values(q, doc) == ["b"]

    def test_projection_order_groups_by_context(self, movie_doc):
        q = parse_xpath("//movie/(title | year)")
        assert evaluate_values(q, movie_doc) == \
            ["Titanic", "1997", "Lost", "2004", "Up", "2009"]
