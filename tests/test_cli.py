"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import main, parse_workload_file

DTD = """
<!ELEMENT shop (item*)>
<!ELEMENT item (name, kind, price, label*)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT kind (#PCDATA)>
<!ELEMENT price (#PCDATA)>
<!ELEMENT label (#PCDATA)>
"""

XML = """
<shop>
  <item><name>a</name><kind>x</kind><price>10</price>
        <label>l1</label><label>l2</label></item>
  <item><name>b</name><kind>y</kind><price>20</price></item>
  <item><name>c</name><kind>x</kind><price>30</price><label>l3</label></item>
</shop>
"""

BAD_XML = "<shop><item><name>a</name></item></shop>"


@pytest.fixture
def files(tmp_path):
    dtd = tmp_path / "shop.dtd"
    dtd.write_text(DTD)
    xml = tmp_path / "shop.xml"
    xml.write_text(XML)
    bad = tmp_path / "bad.xml"
    bad.write_text(BAD_XML)
    workload = tmp_path / "workload.txt"
    workload.write_text(
        "# shop workload\n"
        '//item[kind = "x"]/(name | price)\n'
        "2.0 | //item/label\n"
        "insert 0.5 | //item\n")
    return tmp_path, dtd, xml, bad, workload


def run_cli(args) -> tuple[int, str]:
    import contextlib
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(args)
    return code, out.getvalue()


class TestValidate:
    def test_valid_document(self, files):
        _, dtd, xml, _, _ = files
        code, out = run_cli(["validate", "--dtd", str(dtd), "--root", "shop",
                             "--xml", str(xml)])
        assert code == 0
        assert "OK" in out

    def test_invalid_document(self, files):
        _, dtd, _, bad, _ = files
        code, out = run_cli(["validate", "--dtd", str(dtd), "--root", "shop",
                             "--xml", str(bad)])
        assert code == 1
        assert "INVALID" in out

    def test_dtd_requires_root(self, files):
        _, dtd, xml, _, _ = files
        with pytest.raises(SystemExit):
            run_cli(["validate", "--dtd", str(dtd), "--xml", str(xml)])


class TestShred:
    def test_prints_schema_and_counts(self, files):
        _, dtd, xml, _, _ = files
        code, out = run_cli(["shred", "--dtd", str(dtd), "--root", "shop",
                             "--xml", str(xml)])
        assert code == 0
        assert "item(ID, PID, name, kind, price)" in out
        assert "item: 3 rows" in out
        assert "label: 3 rows" in out

    def test_csv_dump(self, files):
        tmp_path, dtd, xml, _, _ = files
        out_dir = tmp_path / "csv"
        code, _ = run_cli(["shred", "--dtd", str(dtd), "--root", "shop",
                           "--xml", str(xml), "--out", str(out_dir)])
        assert code == 0
        content = (out_dir / "item.csv").read_text()
        assert content.splitlines()[0] == "ID,PID,name,kind,price"
        assert len(content.splitlines()) == 4

    def test_mapping_choice(self, files):
        _, dtd, xml, _, _ = files
        code, out = run_cli(["shred", "--dtd", str(dtd), "--root", "shop",
                             "--xml", str(xml), "--mapping", "fully-split"])
        assert code == 0
        assert "name(ID, PID, name)" in out


class TestQuery:
    def test_query_executes(self, files):
        _, dtd, xml, _, _ = files
        code, out = run_cli([
            "query", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml),
            "--xpath", '//item[kind = "x"]/(name | price)'])
        assert code == 0
        assert "SELECT" in out
        assert "a" in out and "30" in out

    def test_explain_flag(self, files):
        _, dtd, xml, _, _ = files
        code, out = run_cli([
            "query", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--xpath", "//item/name", "--explain"])
        assert code == 0
        assert "SeqScan" in out or "IndexSeek" in out

    def test_limit(self, files):
        _, dtd, xml, _, _ = files
        code, out = run_cli([
            "query", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--xpath", "//item/name", "--limit", "1"])
        assert "more" in out


class TestWorkloadFile:
    def test_parse(self, files):
        _, _, _, _, workload = files
        parsed = parse_workload_file(str(workload))
        assert len(parsed.queries) == 2
        assert parsed.queries[1].weight == 2.0
        assert len(parsed.updates) == 1
        assert parsed.updates[0].weight == 0.5

    def test_empty_rejected(self, tmp_path):
        empty = tmp_path / "w.txt"
        empty.write_text("# nothing\n")
        with pytest.raises(SystemExit):
            parse_workload_file(str(empty))


class TestAdvise:
    def test_advise_greedy(self, files):
        _, dtd, xml, _, workload = files
        code, out = run_cli([
            "advise", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--workload", str(workload)])
        assert code == 0
        assert "algorithm: greedy" in out
        assert "relational schema" in out

    def test_advise_measured(self, files):
        _, dtd, xml, _, workload = files
        code, out = run_cli([
            "advise", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--workload", str(workload),
            "--algorithm", "two-step", "--measure"])
        assert code == 0
        assert "measured workload cost" in out

    def test_advise_trace_prints_span_tree(self, files):
        _, dtd, xml, _, workload = files
        code, out = run_cli([
            "advise", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--workload", str(workload), "--trace"])
        assert code == 0
        assert "trace:" in out
        assert "- greedy" in out
        assert "advisor.tune" in out

    def test_advise_trace_json_writes_file(self, files):
        import json
        tmp_path, dtd, xml, _, workload = files
        trace_file = tmp_path / "trace.json"
        code, out = run_cli([
            "advise", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--workload", str(workload),
            "--trace-json", str(trace_file)])
        assert code == 0
        assert f"wrote trace JSON to {trace_file}" in out
        document = json.loads(trace_file.read_text(encoding="utf-8"))
        assert document["spans"]
        assert document["spans"][0]["name"] == "greedy"
        assert document["metrics"]["database"]["estimate_calls"] > 0

    def test_advise_without_trace_stays_quiet(self, files):
        _, dtd, xml, _, workload = files
        code, out = run_cli([
            "advise", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--workload", str(workload)])
        assert code == 0
        assert "trace:" not in out

    def test_advise_jobs_matches_serial(self, files):
        _, dtd, xml, _, workload = files
        base_args = ["advise", "--dtd", str(dtd), "--root", "shop",
                     "--xml", str(xml), "--workload", str(workload)]
        code_serial, out_serial = run_cli(base_args)
        code_parallel, out_parallel = run_cli(base_args + ["--jobs", "2"])
        assert code_serial == code_parallel == 0

        def design_lines(out: str) -> list[str]:
            # Counter lines differ legitimately (retry counts depend on
            # worker scheduling under injected faults); the design must not.
            return [line for line in out.splitlines()
                    if not line.startswith(("search:", "resilience:"))]

        assert design_lines(out_serial) == design_lines(out_parallel)

    def test_advise_cache_dir_warm_rerun(self, files):
        tmp_path, dtd, xml, _, workload = files
        cache_dir = tmp_path / "evals"
        args = ["advise", "--dtd", str(dtd), "--root", "shop",
                "--xml", str(xml), "--workload", str(workload),
                "--cache-dir", str(cache_dir)]
        code, cold = run_cli(args)
        assert code == 0
        assert "(0 infeasible, 0 warm)" in cold
        code, warm = run_cli(args)
        assert code == 0
        assert "0 warm)" not in warm  # the rerun hits the persistent cache

    def test_advise_cache_dir_ignored_for_naive_greedy(self, files):
        tmp_path, dtd, xml, _, workload = files
        cache_dir = tmp_path / "evals"
        code, out = run_cli([
            "advise", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--workload", str(workload),
            "--algorithm", "naive-greedy", "--cache-dir", str(cache_dir)])
        assert code == 0
        assert "note: --cache-dir is ignored for naive-greedy" in out
        assert not cache_dir.exists()

    def test_advise_faults_keep_design_and_print_resilience(self, files):
        from repro.resilience import NULL_PLAN, install_fault_plan

        _, dtd, xml, _, workload = files
        base_args = ["advise", "--dtd", str(dtd), "--root", "shop",
                     "--xml", str(xml), "--workload", str(workload),
                     "--jobs", "1"]
        try:
            code, clean = run_cli(base_args)
            assert code == 0
            # seed=0 at rate 0.5 faults the very first evaluation and
            # recovers on the retry — guaranteed resilience activity
            # even on this tiny problem, with an unchanged design.
            code, faulted = run_cli(base_args + [
                "--faults", "seed=0;evaluate:0.5:transient"])
            assert code == 0
            assert "resilience:" in faulted

            def design_lines(out: str) -> list[str]:
                return [line for line in out.splitlines()
                        if not line.startswith(("search:", "resilience:"))]

            assert design_lines(faulted) == design_lines(clean)
        finally:
            install_fault_plan(NULL_PLAN)  # --faults installs globally

    def test_advise_checkpoint_dir_and_resume(self, files):
        tmp_path, dtd, xml, _, workload = files
        args = ["advise", "--dtd", str(dtd), "--root", "shop",
                "--xml", str(xml), "--workload", str(workload),
                "--checkpoint-dir", str(tmp_path / "ckpt")]
        code, first = run_cli(args)
        assert code == 0
        assert "checkpoints written" in first
        code, resumed = run_cli(args + ["--resume"])
        assert code == 0

        def design_lines(out: str) -> list[str]:
            return [line for line in out.splitlines()
                    if not line.startswith(("search:", "resilience:"))]

        assert design_lines(resumed) == design_lines(first)

    def test_advise_resume_requires_checkpoint_dir(self, files):
        _, dtd, xml, _, workload = files
        with pytest.raises(SystemExit, match="requires --checkpoint-dir"):
            run_cli(["advise", "--dtd", str(dtd), "--root", "shop",
                     "--xml", str(xml), "--workload", str(workload),
                     "--resume"])

    def test_advise_checkpoint_dir_ignored_for_two_step(self, files):
        tmp_path, dtd, xml, _, workload = files
        code, out = run_cli([
            "advise", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--workload", str(workload),
            "--algorithm", "two-step",
            "--checkpoint-dir", str(tmp_path / "ckpt")])
        assert code == 0
        assert "note: --checkpoint-dir is ignored for two-step" in out
        assert not (tmp_path / "ckpt").exists()


class TestCache:
    def test_report_empty(self, tmp_path):
        cache_dir = tmp_path / "evals"
        code, out = run_cli(["cache", "report", "--cache-dir",
                             str(cache_dir)])
        assert code == 0
        assert f"cache root: {cache_dir}" in out
        assert "entries: 0" in out

    def test_report_is_the_default_action(self, tmp_path):
        code, out = run_cli(["cache", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "entries: 0" in out

    def test_report_and_clear_after_advise(self, files):
        tmp_path, dtd, xml, _, workload = files
        cache_dir = tmp_path / "evals"
        code, _ = run_cli([
            "advise", "--dtd", str(dtd), "--root", "shop",
            "--xml", str(xml), "--workload", str(workload),
            "--cache-dir", str(cache_dir)])
        assert code == 0
        code, out = run_cli(["cache", "report", "--cache-dir",
                             str(cache_dir)])
        assert code == 0
        assert "entries: 0" not in out
        assert "exact:" in out
        code, out = run_cli(["cache", "clear", "--cache-dir",
                             str(cache_dir)])
        assert code == 0
        assert "removed" in out
        code, out = run_cli(["cache", "report", "--cache-dir",
                             str(cache_dir)])
        assert code == 0
        assert "entries: 0" in out


class TestExperiment:
    def test_e0(self):
        code, out = run_cli(["experiment", "e0", "--scale", "250"])
        assert code == 0
        assert "Mapping 2" in out

    def test_table1(self):
        code, out = run_cli(["experiment", "table1", "--scale", "200"])
        assert code == 0
        assert "DBLP" in out and "Movie" in out

    def test_split_count(self):
        code, out = run_cli(["experiment", "split-count", "--scale", "200"])
        assert code == 0
        assert "suggested k" in out


class TestCheck:
    def test_file_mode_clean(self, files):
        _, dtd, xml, _, workload = files
        code, out = run_cli(["check", "--dtd", str(dtd), "--root", "shop",
                             "--xml", str(xml),
                             "--workload", str(workload)])
        assert code == 0
        assert "OK" in out
        assert "0 error(s)" in out

    def test_file_mode_requires_xml(self, files):
        _, dtd, _, _, _ = files
        with pytest.raises(SystemExit):
            run_cli(["check", "--dtd", str(dtd), "--root", "shop"])

    def test_dataset_mode(self):
        code, out = run_cli(["check", "--dataset", "dblp", "--scale", "150",
                             "--queries", "4"])
        assert code == 0
        assert "OK" in out

    def test_dataset_mode_all_mappings(self):
        for mapping in ("hybrid", "shared", "fully-split"):
            code, out = run_cli(["check", "--dataset", "movie",
                                 "--scale", "120", "--queries", "3",
                                 "--mapping", mapping])
            assert code == 0, out

    def test_json_output(self, files):
        import json

        _, dtd, xml, _, workload = files
        code, out = run_cli(["check", "--dtd", str(dtd), "--root", "shop",
                             "--xml", str(xml),
                             "--workload", str(workload), "--json"])
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["findings"] == []
        assert payload["queries_checked"] >= 1

    def test_errors_exit_nonzero(self, files, monkeypatch):
        import repro.check.bundle as bundle_mod

        real_derive = bundle_mod.derive_schema

        def lossy_derive(mapping):
            schema = real_derive(mapping)
            victim = next(iter(schema.leaf_storage))
            del schema.leaf_storage[victim]
            return schema

        monkeypatch.setattr(bundle_mod, "derive_schema", lossy_derive)
        _, dtd, xml, _, workload = files
        code, out = run_cli(["check", "--dtd", str(dtd), "--root", "shop",
                             "--xml", str(xml),
                             "--workload", str(workload)])
        assert code == 1
        assert "MAP002" in out
