"""Unit tests for search components: evaluator, candidate selection,
candidate merging, cost derivation."""

import pytest

from repro.datasets import (dblp_schema, generate_dblp, generate_movies,
                            movie_schema)
from repro.mapping import (RepetitionSplit, TypeSplit, UnionDistribute,
                           UnionDistribution, collect_statistics,
                           hybrid_inlining)
from repro.search import (CandidateMerger, CandidateSelector, CostDerivation,
                          MappingEvaluator, affected_annotations,
                          apply_splits, build_stats_only_database)
from repro.workload import Workload
from repro.xsd import NodeKind


@pytest.fixture(scope="module")
def dblp_bundle():
    tree = dblp_schema()
    doc = generate_dblp(800, seed=13)
    return tree, collect_statistics(tree, doc)


@pytest.fixture(scope="module")
def movie_bundle():
    tree = movie_schema()
    doc = generate_movies(800, seed=13)
    return tree, collect_statistics(tree, doc)


class TestEvaluator:
    def test_evaluate_returns_cost_and_config(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", [
            '/dblp/inproceedings[booktitle = "VLDB"]/(title | year)'])
        evaluator = MappingEvaluator(wl, stats, storage_bound=1 << 29)
        result = evaluator.evaluate(hybrid_inlining(tree))
        assert result is not None
        assert result.total_cost > 0
        assert len(result.tuning.reports) == 1

    def test_cache_hits_on_duplicate_mapping(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", ["/dblp/inproceedings/title"])
        evaluator = MappingEvaluator(wl, stats)
        mapping = hybrid_inlining(tree)
        evaluator.evaluate(mapping)
        evaluator.evaluate(mapping)
        assert evaluator.counters.cache_hits == 1
        assert evaluator.counters.mappings_evaluated == 1

    def test_stats_only_database_has_no_data(self, dblp_bundle):
        tree, stats = dblp_bundle
        from repro.mapping import derive_schema
        schema = derive_schema(hybrid_inlining(tree))
        db = build_stats_only_database(schema, stats)
        inproc = db.catalog.table("inproc")
        assert not inproc.is_materialized
        assert inproc.row_count > 0  # derived estimate present

    def test_evaluate_partial_reuses_costs(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", [
            "/dblp/inproceedings/title", "/dblp/book/publisher"])
        evaluator = MappingEvaluator(wl, stats)
        mapping = hybrid_inlining(tree)
        full = evaluator.evaluate(mapping)
        partial = evaluator.evaluate_partial(
            mapping, reuse={0: full.tuning.reports[0].cost})
        assert partial is not None
        assert partial.total_cost == pytest.approx(full.total_cost, rel=0.25)

    def test_partial_reports_align_with_full_workload(self, dblp_bundle):
        """Regression: partial evaluation used to return a report list
        covering only the re-tuned queries, while every consumer
        (``TuningResult.cost_of``, ``CostDerivation.reusable_costs``)
        indexes reports by full-workload position."""
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", [
            "/dblp/inproceedings/title", "/dblp/book/publisher",
            "/dblp/inproceedings/author"])
        evaluator = MappingEvaluator(wl, stats)
        mapping = hybrid_inlining(tree)
        full = evaluator.evaluate(mapping)
        reuse = {1: full.tuning.reports[1].cost}
        partial = evaluator.evaluate_partial(mapping, reuse, base=full)
        assert partial is not None
        # One report per workload query, aligned by position.
        assert len(partial.tuning.reports) == len(partial.sql_queries)
        for (query, _), report in zip(partial.sql_queries,
                                      partial.tuning.reports):
            assert report.query is query
        # The reused slot carries the derived cost and the base
        # evaluation's objects_used (needed by the repetition-split
        # derivation rule downstream).
        assert partial.tuning.cost_of(1) == reuse[1]
        assert partial.tuning.reports[1].objects_used == \
            full.tuning.reports[1].objects_used
        # The total is consistent with the per-query reports.
        assert partial.total_cost == pytest.approx(
            sum(weight * report.cost
                for (_, weight), report in zip(partial.sql_queries,
                                               partial.tuning.reports)))
        # Feeding the partial result back through cost derivation now
        # reads the right query's cost for every index.
        selected = CandidateSelector(mapping, stats).select(wl)
        derivation = CostDerivation()
        for transformation in (list(selected.splits)
                               + list(selected.merges))[:3]:
            derived = derivation.reusable_costs(transformation, partial)
            for i, cost in derived.items():
                assert cost == partial.tuning.cost_of(i)

    def test_partial_evaluation_does_not_mutate_advisor_result(
            self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", [
            "/dblp/inproceedings/title", "/dblp/book/publisher"])
        evaluator = MappingEvaluator(wl, stats)
        mapping = hybrid_inlining(tree)
        full = evaluator.evaluate(mapping)
        before = full.tuning.total_cost
        evaluator.evaluate_partial(
            mapping, reuse={0: full.tuning.reports[0].cost}, base=full)
        assert full.tuning.total_cost == before


class TestCandidateSelection:
    def test_repetition_split_selected_for_author_query(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", [
            '/dblp/inproceedings[booktitle = "VLDB"]/(title | author)'])
        selected = CandidateSelector(hybrid_inlining(tree), stats).select(wl)
        assert any(isinstance(t, RepetitionSplit) for t in selected.splits)

    def test_split_count_matches_skew(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", ["/dblp/inproceedings/author"])
        selected = CandidateSelector(hybrid_inlining(tree), stats).select(wl)
        splits = [t for t in selected.splits
                  if isinstance(t, RepetitionSplit)]
        assert splits and splits[0].count <= 5

    def test_implicit_union_for_optional_projection(self, movie_bundle):
        tree, stats = movie_bundle
        wl = Workload.from_strings("w", ["//movie/avg_rating"])
        selected = CandidateSelector(hybrid_inlining(tree), stats).select(wl)
        implicit = [d for d in selected.implicit_unions]
        assert len(implicit) == 1

    def test_no_implicit_union_when_common_column_accessed(self, movie_bundle):
        tree, stats = movie_bundle
        wl = Workload.from_strings("w", ["//movie/(title | avg_rating)"])
        selected = CandidateSelector(hybrid_inlining(tree), stats).select(wl)
        assert not selected.implicit_unions

    def test_choice_distribution_for_single_branch_access(self, movie_bundle):
        tree, stats = movie_bundle
        wl = Workload.from_strings("w", ["//movie/box_office"])
        selected = CandidateSelector(hybrid_inlining(tree), stats).select(wl)
        choices = [t for t in selected.splits
                   if isinstance(t, UnionDistribute)
                   and not t.distribution.is_implicit]
        assert len(choices) == 1

    def test_type_split_for_pinned_shared_type(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", ["/dblp/inproceedings/author"])
        selected = CandidateSelector(hybrid_inlining(tree), stats).select(wl)
        assert any(isinstance(t, TypeSplit) for t in selected.splits)

    def test_subsumed_never_selected(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", [
            '/dblp/inproceedings[year = "2000"]/(title | ee | author)'])
        selected = CandidateSelector(hybrid_inlining(tree), stats).select(wl)
        assert all(not t.subsumed for t in selected.all())

    def test_apply_splits_builds_valid_m0(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", [
            '/dblp/inproceedings[booktitle = "VLDB"]/(title | author | ee)'])
        selected = CandidateSelector(hybrid_inlining(tree), stats).select(wl)
        m0, applied = apply_splits(hybrid_inlining(tree), selected.splits)
        m0.validate()
        assert applied


class TestCandidateMerging:
    def paper_example(self, movie_bundle):
        """Q1: //movie/year, Q2: //movie/avg_rating (Section 4.7)."""
        tree, stats = movie_bundle
        wl = Workload.from_strings("w", ["//movie/year",
                                         "//movie/avg_rating"])
        mapping = hybrid_inlining(tree)
        year_opt = tree.parent(
            tree.find_tag_by_path(("movies", "movie", "year")))
        rating_opt = tree.parent(
            tree.find_tag_by_path(("movies", "movie", "avg_rating")))
        c1 = UnionDistribution(optional_ids=frozenset({year_opt.node_id}))
        c2 = UnionDistribution(optional_ids=frozenset({rating_opt.node_id}))
        return tree, stats, wl, mapping, c1, c2

    def test_greedy_merging_produces_c3(self, movie_bundle):
        tree, stats, wl, mapping, c1, c2 = self.paper_example(movie_bundle)
        merger = CandidateMerger(mapping, stats, wl)
        merged = merger.merge_greedy([c1, c2])
        assert len(merged) == 1
        assert merged[0].optional_ids == c1.optional_ids | c2.optional_ids

    def test_merged_candidate_benefits_both_queries(self, movie_bundle):
        tree, stats, wl, mapping, c1, c2 = self.paper_example(movie_bundle)
        merger = CandidateMerger(mapping, stats, wl)
        c3 = UnionDistribution(
            optional_ids=c1.optional_ids | c2.optional_ids)
        # c1 helps Q1 but not Q2; c3 helps both (the paper's argument).
        assert merger.query_benefit(c1, wl.queries[0].query) > 0
        assert merger.query_benefit(c1, wl.queries[1].query) == 0
        assert merger.query_benefit(c3, wl.queries[0].query) > 0
        assert merger.query_benefit(c3, wl.queries[1].query) > 0

    def test_subset_candidates_not_mergeable(self, movie_bundle):
        tree, stats, wl, mapping, c1, c2 = self.paper_example(movie_bundle)
        merger = CandidateMerger(mapping, stats, wl)
        c3 = UnionDistribution(
            optional_ids=c1.optional_ids | c2.optional_ids)
        assert merger._mergeable(c1, c3) is None

    def test_exhaustive_matches_or_beats_greedy(self, movie_bundle):
        tree, stats, wl, mapping, c1, c2 = self.paper_example(movie_bundle)
        merger = CandidateMerger(mapping, stats, wl)
        greedy = merger.merge_greedy([c1, c2])
        exhaustive = merger.merge_exhaustive([c1, c2])
        assert {d.optional_ids for d in greedy} == \
            {d.optional_ids for d in exhaustive}


class TestCostDerivation:
    def test_irrelevant_relation_rule(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", [
            "/dblp/book/publisher",                  # never touches authors
            "/dblp/inproceedings/(title | author)",  # touches authors
        ])
        evaluator = MappingEvaluator(wl, stats)
        evaluated = evaluator.evaluate(hybrid_inlining(tree))
        author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = tree.parent(author)
        transformation = RepetitionSplit(rep.node_id, 5)
        reuse = CostDerivation().reusable_costs(transformation, evaluated)
        assert 0 in reuse          # book query untouched
        assert 1 not in reuse      # author query must be re-costed

    def test_disabled_derivation_reuses_nothing(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", ["/dblp/book/publisher"])
        evaluator = MappingEvaluator(wl, stats)
        evaluated = evaluator.evaluate(hybrid_inlining(tree))
        author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = tree.parent(author)
        reuse = CostDerivation(enabled=False).reusable_costs(
            RepetitionSplit(rep.node_id, 5), evaluated)
        assert reuse == {}

    def test_affected_annotations_repetition_split(self, dblp_bundle):
        tree, stats = dblp_bundle
        wl = Workload.from_strings("w", ["/dblp/inproceedings/title"])
        evaluator = MappingEvaluator(wl, stats)
        evaluated = evaluator.evaluate(hybrid_inlining(tree))
        author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = tree.parent(author)
        affected = affected_annotations(RepetitionSplit(rep.node_id, 5),
                                        evaluated)
        assert affected == {"author", "inproc"}

    def test_affected_annotations_union(self, movie_bundle):
        tree, stats = movie_bundle
        wl = Workload.from_strings("w", ["//movie/title"])
        evaluator = MappingEvaluator(wl, stats)
        evaluated = evaluator.evaluate(hybrid_inlining(tree))
        choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
        affected = affected_annotations(
            UnionDistribute(UnionDistribution(choice_id=choice.node_id)),
            evaluated)
        assert affected == {"movie"}
