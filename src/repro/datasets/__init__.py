"""Synthetic data sets: DBLP (Fig. 1a) and Movie (Fig. 1b)."""

from .dblp import CONFERENCES, author_count, dblp_schema, generate_dblp
from .movie import generate_movies, movie_schema

__all__ = [
    "dblp_schema",
    "generate_dblp",
    "author_count",
    "CONFERENCES",
    "movie_schema",
    "generate_movies",
]
