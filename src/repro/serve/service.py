"""The long-lived query service.

:class:`QueryService` is the artifact that makes "serve a tuned design"
concrete: load a mapped schema's shredded data into a SQLite backend
**once**, build the recommended physical configuration, and then answer
XPath queries from many concurrent clients. Per request it:

1. resolves the XPath through the LRU :class:`~repro.serve.PlanCache`
   (translation paid once per distinct query),
2. executes the SQL on the worker thread's own SQLite connection (the
   backend opens one per thread — see ``repro.backends.sqlite``),
3. records a ``serve.request`` span and a latency-histogram
   observation on the service's metric registry.

The service owns a thread pool; :meth:`submit` is the asynchronous
client API (returns a future), :meth:`serve` the synchronous one. Both
funnel through the same request path, so every answer — cached plan or
not — is the plan-cache-translated, real-DBMS-executed result.

Resilience (docs/resilience.md, docs/serving.md):

* **admission control** — ``max_queue`` bounds the requests waiting
  behind the ``workers`` executing ones; past the bound :meth:`submit`
  fast-fails with :class:`ServiceOverloaded` instead of growing an
  unbounded pool queue (deterministic load shedding: whether a request
  is shed depends only on how many are in flight when it arrives);
* **deadlines** — ``deadline`` bounds each request's total latency
  *from submission*, queue wait included; a request over its deadline
  dies with :class:`RequestTimeout` and is never retried;
* **retries** — transient faults (``SQLITE_BUSY`` under WAL, injected
  transients) are retried in place per the
  :class:`~repro.resilience.RetryPolicy`, invisibly to the client;
* **circuit breaking** — a :class:`~repro.resilience.CircuitBreaker`
  watches outcomes and, once tripped, sheds requests with
  :class:`CircuitOpenError` except for seeded half-open probes, so a
  dead backend costs microseconds per request instead of a timeout
  each, and chaos runs replay deterministically.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..backends import RelationalBackend, backend_factory
from ..errors import ReproError
from ..mapping import MappedSchema
from ..obs import (LatencyHistogram, NullMetricRegistry, NullTracer,
                   Tracer, get_tracer)
from ..physdesign import Configuration
from ..resilience import (RETRYABLE_CATEGORIES, CircuitBreaker, RetryPolicy,
                          active_fault_plan, classify, note_suppressed)
from ..xpath import XPathQuery
from .plan_cache import PlanCache

__all__ = ["QueryService", "ServeResult", "ServiceError", "ServiceStats",
           "ServiceOverloaded", "RequestTimeout", "CircuitOpenError"]


class ServiceError(ReproError):
    """The query service was misused (not started, already closed)."""


class ServiceOverloaded(ServiceError):
    """Admission control shed the request: the queue is full."""


class RequestTimeout(ServiceError):
    """The request exceeded its deadline (queue wait included)."""


class CircuitOpenError(ServiceError):
    """The circuit breaker is open; the request was fast-failed."""


@dataclass(frozen=True)
class ServeResult:
    """One served request: rows plus request-level metadata."""

    xpath: str
    rows: list[tuple]
    seconds: float
    plan_key: str
    cached_plan: bool      # True: the plan came from the cache
    retries: int = 0       # transparent transient-fault re-attempts


@dataclass(frozen=True)
class _Request:
    """One admitted request as it travels to a pool worker."""

    xpath: XPathQuery | str
    enqueued: float        # perf_counter at admission (deadline anchor)
    probe: bool = False    # a breaker half-open trial


@dataclass
class ServiceStats:
    """Aggregate counters snapshot for one service."""

    requests: int = 0
    errors: int = 0
    shed: int = 0          # fast-failed by admission control
    retries: int = 0       # transient re-attempts across all requests
    timeouts: int = 0      # requests killed by their deadline
    breaker: dict = field(default_factory=dict)
    plan_cache: dict = field(default_factory=dict)
    latency: dict = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"requests: {self.requests} ({self.errors} errors)"]
        lines.append(
            f"resilience: shed {self.shed}  retries {self.retries}  "
            f"deadline timeouts {self.timeouts}")
        if self.breaker:
            lines.append(
                "breaker: {state} (trips {trips}, probes {probes}, "
                "fast-fails {fast_fails})".format(**self.breaker))
        if self.latency.get("count"):
            lines.append(
                "latency: p50 {p50:.6f}s  p95 {p95:.6f}s  p99 {p99:.6f}s  "
                "max {max:.6f}s".format(**self.latency))
        cache = self.plan_cache
        if cache:
            lines.append(
                f"plan cache: {cache['entries']:.0f}/{cache['capacity']:.0f} "
                f"entries, {cache['hits']:.0f} hits / "
                f"{cache['misses']:.0f} misses "
                f"({cache['hit_rate']:.1%}), "
                f"{cache['evictions']:.0f} evictions")
        return "\n".join(lines)


class QueryService:
    """Serve XPath queries over one loaded design from a thread pool.

    ``db_path=None`` serves from a shared in-memory SQLite database;
    a path serves from that file, and workers reopen it **read-only**
    (they physically cannot write). ``workers`` bounds concurrent
    executions; each pool worker gets its own SQLite connection on
    first use. ``load_batch_size`` overrides the startup bulk load's
    streaming chunk size — with a lazy document (``stream=True``
    datasets) the service can load far more data than fits in memory
    as a materialized tree (docs/scaling.md).

    Resilience knobs (see the module docstring): ``max_queue`` bounds
    queued-but-not-executing requests (``None`` = unbounded);
    ``deadline`` is the per-request wall-clock budget in seconds from
    submission (``None`` = none); ``retry_policy`` governs transparent
    retries of transient faults (default:
    :meth:`RetryPolicy.from_env`); ``breaker`` replaces the default
    :class:`CircuitBreaker` (seeded 0) e.g. to reseed its probe
    schedule or disable it via a never-tripping threshold.
    """

    def __init__(self, schema: MappedSchema, docs,
                 configuration: Configuration | None = None,
                 workers: int = 4, plan_cache_size: int = 128,
                 db_path: str | None = None,
                 load_batch_size: int | None = None,
                 max_queue: int | None = 1024,
                 deadline: float | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker: CircuitBreaker | None = None,
                 backend: str = "sqlite",
                 tracer: Tracer | NullTracer | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend == "engine":
            raise ValueError(
                "the query service serves from a real DBMS backend "
                "(sqlite or duckdb), not the in-memory engine")
        if max_queue is not None and max_queue < 0:
            raise ValueError("max_queue must be >= 0 (None = unbounded)")
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be > 0 (None = no deadline)")
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("serve.service")
        # The latency histogram is service state, not optional
        # telemetry — stats() and the HTML report read it even under
        # the (default) null tracer, which discards observations.
        self._latency = LatencyHistogram("request_seconds")
        if not isinstance(self._metrics, NullMetricRegistry):
            self._metrics.histograms["request_seconds"] = self._latency
        self.schema = schema
        self.configuration = configuration or Configuration()
        self.workers = workers
        self.max_queue = max_queue
        self.deadline = deadline
        self.retry_policy = retry_policy or RetryPolicy.from_env()
        self.breaker = breaker or CircuitBreaker()
        self.plan_cache = PlanCache(schema, capacity=plan_cache_size,
                                    tracer=self.tracer)
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self._requests = 0
        self._errors = 0
        self._retries = 0
        self._timeouts = 0
        self._shed = 0
        self._count_lock = threading.Lock()
        # Admission state: ``_inflight`` counts requests admitted but
        # not yet finished (queued + executing). Guarded by its own
        # lock, which also serializes the submit-vs-close decision.
        self._inflight = 0
        self._admission_lock = threading.Lock()

        self.backend_name = backend
        make_backend = backend_factory(backend)
        with self.tracer.span("serve.startup", workers=workers,
                              backend=backend):
            # If startup dies mid-load on a file database *we* created,
            # remove it — otherwise a retry of the same command hits
            # "table already exists" on the partial file. A
            # pre-existing file is never deleted.
            created = db_path is not None and not os.path.exists(db_path)
            loader: RelationalBackend | None = None
            try:
                loader = make_backend(db_path or ":memory:",
                                      tracer=self.tracer)
                load_kwargs = ({"batch_size": load_batch_size}
                               if load_batch_size else {})
                loader.load(schema, docs, **load_kwargs)
                loader.apply_configuration(self.configuration)
                if db_path is None:
                    self.backend: RelationalBackend = loader
                else:
                    # Load and build DDL through a writable connection,
                    # then serve through read-only worker connections
                    # on the same file.
                    loader.close()
                    self.backend = make_backend(db_path,
                                                tracer=self.tracer,
                                                read_only=True)
            except BaseException:
                if loader is not None:
                    loader.close()
                if created and db_path is not None:
                    # Side files: SQLite's -wal/-shm, DuckDB's .wal.
                    for suffix in ("", "-wal", "-shm", ".wal"):
                        try:
                            os.remove(db_path + suffix)
                        except OSError:
                            pass
                raise
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _check_deadline(self, enqueued: float) -> None:
        if self.deadline is None:
            return
        elapsed = time.perf_counter() - enqueued
        if elapsed > self.deadline:
            with self._count_lock:
                self._timeouts += 1
            self._metrics.incr("request_timeouts")
            raise RequestTimeout(
                f"request exceeded its {self.deadline:.3f}s deadline "
                f"({elapsed:.3f}s elapsed, queue wait included)")

    def _execute_with_retry(self, plan, enqueued: float
                            ) -> tuple[list[tuple], int]:
        """Execute the plan's SQL, retrying transient faults in place.

        Only :data:`~repro.resilience.RETRYABLE_CATEGORIES` failures
        (injected transients, ``SQLITE_BUSY`` wrapped as
        ``BackendBusyError``) are re-attempted, never timeouts — a
        request over its deadline is dead however retryable the error.
        """
        retries = 0
        attempt = 0
        while True:
            attempt += 1
            self._check_deadline(enqueued)
            try:
                return self.backend.execute(plan.sql), retries
            except Exception as exc:
                if (classify(exc) not in RETRYABLE_CATEGORIES
                        or attempt >= self.retry_policy.max_attempts):
                    raise
                note_suppressed(exc, "serve.retry", self.tracer)
                retries += 1
                with self._count_lock:
                    self._retries += 1
                self._metrics.incr("request_retries")
                time.sleep(self.retry_policy.backoff_for(attempt))

    def _handle(self, request: "_Request") -> ServeResult:
        started = time.perf_counter()
        with self.tracer.span("serve.request") as span:
            # The injection point for request-level chaos: a ``hang``
            # rule here overruns the deadline, a ``transient`` fails
            # the request before the backend is touched.
            active_fault_plan().maybe_raise("serve.request")
            self._check_deadline(request.enqueued)
            was_cached = request.xpath in self.plan_cache
            plan = self.plan_cache.get_or_translate(request.xpath)
            rows, retries = self._execute_with_retry(plan, request.enqueued)
            seconds = time.perf_counter() - started
            span.set("plan_key", plan.key)
            span.set("cached_plan", was_cached)
            span.set("rows", len(rows))
            span.set("seconds", seconds)
        self._latency.observe(seconds)
        self._metrics.incr("requests")
        with self._count_lock:
            self._requests += 1
        return ServeResult(xpath=str(plan.xpath), rows=rows,
                           seconds=seconds, plan_key=plan.key,
                           cached_plan=was_cached, retries=retries)

    def _handle_counted(self, request: "_Request") -> ServeResult:
        try:
            result = self._handle(request)
        except Exception as exc:
            # The failure is re-raised to the caller's Future, but it is
            # also classified and counted here so per-service error
            # accounting survives callers that drop their futures.
            note_suppressed(exc, "serve.request", self.tracer)
            self._metrics.incr("errors")
            with self._count_lock:
                self._errors += 1
            self.breaker.record(False, probe=request.probe)
            raise
        else:
            self.breaker.record(True, probe=request.probe)
            return result
        finally:
            with self._admission_lock:
                self._inflight -= 1

    def submit(self, xpath: XPathQuery | str) -> "Future[ServeResult]":
        """Asynchronously serve one query (the open-loop client API).

        Admission happens here, synchronously: a closed service raises
        :class:`ServiceError`, an open circuit breaker
        :class:`CircuitOpenError` (unless this arrival is a scheduled
        probe), and a full queue :class:`ServiceOverloaded` — all
        without touching the pool, so rejection stays microseconds
        even when the backend is wedged.
        """
        with self._admission_lock:
            if self._closed or self._pool is None:
                raise ServiceError("query service is closed")
            decision = self.breaker.admit()
            if decision == "shed":
                self._metrics.incr("breaker_fast_fails")
                raise CircuitOpenError(
                    "circuit breaker is open; request fast-failed")
            if (self.max_queue is not None
                    and self._inflight >= self.workers + self.max_queue):
                with self._count_lock:
                    self._shed += 1
                self._metrics.incr("requests_shed")
                raise ServiceOverloaded(
                    f"admission queue is full ({self._inflight} in "
                    f"flight, max_queue={self.max_queue})")
            request = _Request(xpath=xpath, enqueued=time.perf_counter(),
                               probe=decision == "probe")
            self._inflight += 1
            try:
                return self._pool.submit(self._handle_counted, request)
            except RuntimeError as exc:
                # close() raced us to the executor; surface the
                # library's error type, not the pool's internal one.
                self._inflight -= 1
                raise ServiceError("query service is closed") from exc

    def serve(self, xpath: XPathQuery | str) -> ServeResult:
        """Serve one query and wait for its result (closed-loop API)."""
        return self.submit(xpath).result()

    # ------------------------------------------------------------------
    @property
    def latency_histogram(self):
        """The per-request latency histogram metric (read-only use)."""
        return self._latency

    def stats(self) -> ServiceStats:
        with self._count_lock:
            requests, errors = self._requests, self._errors
            shed, retries = self._shed, self._retries
            timeouts = self._timeouts
        return ServiceStats(requests=requests, errors=errors,
                            shed=shed, retries=retries, timeouts=timeouts,
                            breaker=self.breaker.snapshot(),
                            plan_cache=self.plan_cache.stats(),
                            latency=self._latency.snapshot())

    def close(self, drain: bool = True) -> None:
        """Stop the service: reject new requests, then shut down.

        ``drain=True`` (the default) finishes every in-flight request
        before closing the backend; ``drain=False`` cancels queued
        requests and closes immediately (executing requests fail).
        """
        with self._admission_lock:
            if self._closed:
                return
            self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=drain, cancel_futures=not drain)
        self.backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
