"""Parallel fan-out for candidate costing.

Costing the candidates of one greedy round (or one naive enumeration
pass) is embarrassingly parallel: every evaluation reads the immutable
schema tree, the workload, and the collected statistics, and builds its
own private stats-only database. This module runs those evaluations on
a ``concurrent.futures`` pool:

* **process backend** (default) — workers are initialized once with a
  pickled ``(workload, collected stats, storage bound)`` context and
  receive one picklable work unit per candidate (the mapping plus, for
  partial evaluations, the reused costs and carried object sets);
* **thread backend** — a fallback for platforms where process pools
  are unavailable (and available explicitly via
  ``REPRO_PARALLEL_BACKEND=thread``); correct but not faster for this
  pure-Python workload.

Determinism is preserved by construction: tasks are submitted and their
outputs absorbed in submission order, each worker computes the same
pure function the serial path computes, and the serial and parallel
code paths share every decision *around* the evaluations (caching,
dedup, scoring). Worker-side observability is not lost — each task
returns its counter deltas, metric deltas, and span tree, which the
caller grafts into the main process's tracer in submission order.

Controls: ``--jobs N`` on the CLI / the ``jobs=`` search argument, or
the ``REPRO_PARALLEL`` environment variable (``0``/unset = serial,
``1``/``auto`` = one worker per CPU, ``N`` = exactly N workers). See
docs/performance.md.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import (Executor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..obs import NULL_TRACER, NullTracer, Tracer
from .result import SearchCounters

__all__ = ["EvaluationPool", "EvaluationTask", "WorkerOutput",
           "resolve_jobs", "parallel_backend", "graft_spans"]

#: SearchCounters fields a worker evaluation can advance. ``wall_time``
#: is excluded: the search's Stopwatch measures real elapsed time in
#: the main process, and summing worker times would double-count.
_COUNTER_FIELDS = ("transformations_searched", "mappings_evaluated",
                   "cache_hits", "cache_hits_infeasible",
                   "persistent_cache_hits", "tuner_calls",
                   "optimizer_calls", "derived_query_costs")


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from an explicit argument or ``REPRO_PARALLEL``.

    ``None`` defers to the environment: unset/``0``/``off`` mean serial;
    ``1``/``auto``/``on`` mean one worker per CPU (minimum 2, so the
    parallel machinery is exercised even on single-CPU runners); any
    other integer is the exact worker count.
    """
    if jobs is not None:
        return max(1, int(jobs))
    raw = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if raw in ("", "0", "off", "false", "no"):
        return 1
    if raw in ("1", "auto", "on", "true", "yes"):
        return max(2, os.cpu_count() or 1)
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def parallel_backend() -> str:
    """``process`` (default) or ``thread`` via ``REPRO_PARALLEL_BACKEND``."""
    raw = os.environ.get("REPRO_PARALLEL_BACKEND", "process").strip().lower()
    return "thread" if raw == "thread" else "process"


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------

#: ``(kind, mapping, reuse, carried)`` where ``kind`` is ``"exact"`` or
#: ``"partial"``; ``reuse`` maps workload indices to reused costs and
#: ``carried`` maps the same indices to the object sets those costs were
#: derived with (both ``None`` for exact evaluations).
EvaluationTask = tuple


@dataclass
class WorkerOutput:
    """Everything one evaluation produced, in picklable form."""

    result: object  # EvaluatedMapping | None
    counters: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)


def _counters_snapshot(counters: SearchCounters) -> dict[str, int]:
    return {name: getattr(counters, name) for name in _COUNTER_FIELDS}


def run_task(evaluator, task: EvaluationTask, tracing: bool) -> WorkerOutput:
    """Execute one work unit on an evaluator and package the output.

    Shared by the process workers and the thread fallback; the caller
    guarantees the evaluator is not used concurrently.
    """
    from ..obs import trace_to_dicts

    kind, mapping, reuse, carried = task
    tracer = Tracer() if tracing else NULL_TRACER
    evaluator.rebind_tracer(tracer)
    before = _counters_snapshot(evaluator.counters)
    if kind == "partial":
        result = evaluator._evaluate_partial_uncached(mapping, reuse, carried)
    else:
        result = evaluator._evaluate_uncached(mapping)
    after = _counters_snapshot(evaluator.counters)
    deltas = {name: after[name] - before[name]
              for name in _COUNTER_FIELDS if after[name] != before[name]}
    if not tracing:
        return WorkerOutput(result=result, counters=deltas)
    exported = trace_to_dicts(tracer)
    return WorkerOutput(result=result, counters=deltas,
                        metrics=tracer.metric_snapshot(),
                        spans=exported["spans"])


# ----------------------------------------------------------------------
# Process-pool worker side
# ----------------------------------------------------------------------

_WORKER_EVALUATOR = None
_WORKER_TRACING = False


def _init_worker(payload: bytes) -> None:
    """Build this worker's evaluator once from the pickled context."""
    global _WORKER_EVALUATOR, _WORKER_TRACING
    from .evaluator import MappingEvaluator

    workload, collected, storage_bound, tracing = pickle.loads(payload)
    _WORKER_EVALUATOR = MappingEvaluator(
        workload, collected, storage_bound,
        use_cache=False, jobs=1, tracer=NULL_TRACER)
    _WORKER_TRACING = tracing


def _pool_task(task: EvaluationTask) -> WorkerOutput:
    assert _WORKER_EVALUATOR is not None, "worker initializer did not run"
    return run_task(_WORKER_EVALUATOR, task, _WORKER_TRACING)


# ----------------------------------------------------------------------
# Main-process side
# ----------------------------------------------------------------------


class EvaluationPool:
    """A lazily created executor bound to one evaluation problem."""

    def __init__(self, workload, collected, storage_bound,
                 jobs: int, tracing: bool, backend: str | None = None):
        self.workload = workload
        self.collected = collected
        self.storage_bound = storage_bound
        self.jobs = jobs
        self.tracing = tracing
        self.backend = backend or parallel_backend()
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> None:
        if self._executor is not None:
            return
        if self.backend == "process":
            payload = pickle.dumps((self.workload, self.collected,
                                    self.storage_bound, self.tracing))
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_init_worker, initargs=(payload,))
                return
            except (OSError, ValueError, pickle.PicklingError):
                self.backend = "thread"  # e.g. no /dev/shm semaphores
        self._executor = ThreadPoolExecutor(max_workers=self.jobs)

    def _thread_task(self, task: EvaluationTask) -> WorkerOutput:
        # A fresh evaluator per task: nothing mutable is shared between
        # concurrently running thread tasks.
        from .evaluator import MappingEvaluator

        evaluator = MappingEvaluator(
            self.workload, self.collected, self.storage_bound,
            use_cache=False, jobs=1, tracer=NULL_TRACER)
        return run_task(evaluator, task, self.tracing)

    def _serial_task(self, task: EvaluationTask) -> WorkerOutput:
        return self._thread_task(task)

    # ------------------------------------------------------------------
    def run(self, tasks: list[EvaluationTask]) -> list[WorkerOutput]:
        """Evaluate all tasks; outputs are in submission order.

        A broken process pool (a worker killed by the OS, a pickling
        failure) degrades to in-process execution for the tasks that
        did not complete — the batch always finishes. Evaluation-level
        exceptions (e.g. :class:`~repro.errors.CheckError`) propagate:
        they signal bugs, not infrastructure failures.
        """
        self._ensure_executor()
        assert self._executor is not None
        submit = (self._executor.submit if self.backend == "thread"
                  else None)
        if submit is not None:
            futures = [submit(self._thread_task, task) for task in tasks]
        else:
            try:
                futures = [self._executor.submit(_pool_task, task)
                           for task in tasks]
            except (BrokenProcessPool, RuntimeError, pickle.PicklingError):
                self._degrade()
                return [self._serial_task(task) for task in tasks]
        outputs: list[WorkerOutput] = []
        degraded = False
        for index, future in enumerate(futures):
            if degraded:
                outputs.append(self._serial_task(tasks[index]))
                continue
            try:
                outputs.append(future.result())
            except (BrokenProcessPool, OSError, pickle.PicklingError):
                degraded = True
                self._degrade()
                outputs.append(self._serial_task(tasks[index]))
        return outputs

    def _degrade(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        self.backend = "thread"
        self.jobs = 1

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Trace grafting
# ----------------------------------------------------------------------


def graft_spans(tracer: Tracer | NullTracer, span_dicts: list[dict]) -> None:
    """Attach worker span trees under the tracer's current span.

    Replayed spans keep their recorded attributes, events, and wall
    times (worker compute time — their sum can exceed the batch's real
    elapsed time, exactly as in any parallel trace), and receive fresh
    sequence numbers in submission order so exporters stay
    deterministic.
    """
    if not tracer.enabled:
        return
    for span_dict in span_dicts:
        with tracer.span(span_dict["name"]) as span:
            for key, value in span_dict.get("attributes", {}).items():
                span.set(key, value)
            for event in span_dict.get("events", []):
                span.event(event["name"], **event.get("attributes", {}))
            graft_spans(tracer, span_dict.get("children", []))
        span.wall_time = span_dict.get("wall_time", 0.0)


def merge_metrics(tracer: Tracer | NullTracer,
                  metrics: dict[str, dict[str, float]]) -> None:
    """Fold worker metric deltas into the main tracer's registries."""
    if not tracer.enabled:
        return
    for component in sorted(metrics):
        registry = tracer.metrics(component)
        counters = metrics[component]
        for name in sorted(counters):
            registry.incr(name, counters[name])
