"""Parser for the SQL subset (inverse of the renderer).

Accepts what the translator emits: SELECT lists with ``NULL`` and
literals, implicit-join FROM lists with aliases, WHERE trees of
AND/OR/comparisons/IS [NOT] NULL/EXISTS, UNION ALL chains, and ORDER BY
on column positions. Round-trip (``parse_sql(str(q)) == q``-modulo-
normalization) is covered by property tests.
"""

from __future__ import annotations

import re

from ..errors import SQLParseError
from .ast import (And, BoolExpr, ColumnRef, Comparison, ComparisonOp, Exists,
                  IsNull, Literal, Or, Query, Scalar, Select, SelectItem,
                  TableRef)

_TOKEN_RE = re.compile(r"""
    \s*(
        '(?:[^']|'')*'                    # string literal
      | -?\d+(?:\.\d+)?[eE][+-]?\d+      # scientific notation
      | -?\d+\.\d+                       # decimal
      | -?\d+                            # integer
      | [A-Za-z_][A-Za-z_0-9]*           # identifier / keyword
      | <> | <= | >= | != | [=<>(),.*]
    )
""", re.VERBOSE)

_EXPONENT_RE = re.compile(r"-?\d+(?:\.\d+)?[eE][+-]?\d+")

_KEYWORDS = {
    "select", "from", "where", "union", "all", "order", "by", "and", "or",
    "as", "null", "is", "not", "exists",
}

_OPS = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "!=": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            if text[pos:].strip():
                raise SQLParseError(f"cannot tokenize SQL at: {text[pos:pos + 20]!r}")
            break
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers --------------------------------------------------
    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def peek_kw(self, *keywords: str) -> bool:
        token = self.peek()
        return token is not None and token.lower() in keywords

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise SQLParseError("unexpected end of SQL")
        self.pos += 1
        return token

    def expect_kw(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword:
            raise SQLParseError(f"expected {keyword.upper()}, found {token!r}")

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise SQLParseError(f"expected {token!r}, found {found!r}")

    def take(self, token: str) -> bool:
        if self.peek() == token:
            self.pos += 1
            return True
        return False

    def take_kw(self, keyword: str) -> bool:
        if self.peek_kw(keyword):
            self.pos += 1
            return True
        return False

    def identifier(self) -> str:
        token = self.next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token) or token.lower() in _KEYWORDS:
            raise SQLParseError(f"expected an identifier, found {token!r}")
        return token

    # -- grammar ---------------------------------------------------------
    def query(self) -> Query:
        selects = [self.select()]
        while self.peek_kw("union"):
            self.next()
            self.expect_kw("all")
            selects.append(self.select())
        order_by: tuple[int, ...] = ()
        if self.take_kw("order"):
            self.expect_kw("by")
            positions = [int(self.next())]
            while self.take(","):
                positions.append(int(self.next()))
            order_by = tuple(positions)
        if self.peek() is not None:
            raise SQLParseError(f"trailing tokens: {self.tokens[self.pos:]}")
        return Query(selects=tuple(selects), order_by=order_by)

    def select(self) -> Select:
        self.expect_kw("select")
        items = [self.select_item()]
        while self.take(","):
            items.append(self.select_item())
        self.expect_kw("from")
        tables = [self.table_ref()]
        while self.take(","):
            tables.append(self.table_ref())
        where = None
        if self.take_kw("where"):
            where = self.bool_expr()
        return Select(tuple(items), tuple(tables), where)

    def select_item(self) -> SelectItem:
        expr = self.scalar()
        alias = ""
        if self.take_kw("as"):
            alias = self.identifier()
        return SelectItem(expr, alias)

    def table_ref(self) -> TableRef:
        table = self.identifier()
        alias = table
        token = self.peek()
        if token is not None and token.lower() not in _KEYWORDS and \
                re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*", token):
            alias = self.next()
        return TableRef(table, alias)

    def scalar(self) -> Scalar:
        token = self.peek()
        if token is None:
            raise SQLParseError("unexpected end of SQL in expression")
        if token.lower() == "null":
            self.next()
            return Literal(None)
        if token.startswith("'"):
            self.next()
            return Literal(token[1:-1].replace("''", "'"))
        if _EXPONENT_RE.fullmatch(token):
            self.next()
            return Literal(float(token))
        if re.fullmatch(r"-?\d+", token):
            self.next()
            return Literal(int(token))
        if re.fullmatch(r"-?\d+\.\d+", token):
            self.next()
            return Literal(float(token))
        name = self.identifier()
        if self.take("."):
            return ColumnRef(name, self.identifier())
        return ColumnRef("", name)

    # WHERE grammar: or_expr := and_expr (OR and_expr)*
    def bool_expr(self) -> BoolExpr:
        items = [self.and_expr()]
        while self.take_kw("or"):
            items.append(self.and_expr())
        if len(items) == 1:
            return items[0]
        return Or(tuple(items))

    def and_expr(self) -> BoolExpr:
        items = [self.atom_expr()]
        while self.take_kw("and"):
            items.append(self.atom_expr())
        if len(items) == 1:
            return items[0]
        return And(tuple(items))

    def atom_expr(self) -> BoolExpr:
        if self.take_kw("exists"):
            self.expect("(")
            subquery = self.select()
            self.expect(")")
            return Exists(subquery)
        if self.take("("):
            inner = self.bool_expr()
            self.expect(")")
            return inner
        left = self.scalar()
        if self.take_kw("is"):
            negated = self.take_kw("not")
            self.expect_kw("null")
            if not isinstance(left, ColumnRef):
                raise SQLParseError("IS NULL requires a column operand")
            return IsNull(left, negated=negated)
        op_token = self.next()
        op = _OPS.get(op_token)
        if op is None:
            raise SQLParseError(f"expected a comparison operator, found {op_token!r}")
        right = self.scalar()
        return Comparison(left, op, right)


def parse_sql(text: str) -> Query:
    """Parse SQL text into a :class:`~repro.sqlast.ast.Query`."""
    return _Parser(_tokenize(text)).query()
