"""Cross-backend differential validation.

Runs every translated workload query on two backends and asserts
identical row *multisets* (the engine only guarantees order up to the
ORDER BY key, so equal-key rows may legally interleave differently).
Divergences carry the offending query, its SQL on both backends, and
the missing/extra rows — enough to turn each one into a minimal
regression test.

This is the differential oracle the tentpole exists for: any cost-model
shortcut, translation bug, or executor semantics drift that changes
*results* (not just speed) shows up as a non-empty report.
"""

from __future__ import annotations

import decimal
from collections import Counter
from dataclasses import dataclass, field

from ..obs import NullTracer, Tracer, get_tracer
from ..physdesign import Configuration
from ..sqlast import Query
from .base import EngineBackend, SQLBackend
from .dialect import render_query
from .sqlite import SQLiteBackend


def normalize_row(row: tuple) -> tuple:
    """Collapse representation differences that are not semantic.

    * booleans — the engine yields Python bools, SQLite yields 0/1;
    * decimals — DuckDB returns ``DECIMAL`` columns as
      :class:`decimal.Decimal`, the engine and SQLite carry floats;
    * integral floats — a REAL column round-trips ``3.0`` while the
      engine may carry the original int through an untyped slot.
    """
    out = []
    for value in row:
        if isinstance(value, bool):
            out.append(int(value))
            continue
        if isinstance(value, decimal.Decimal):
            value = float(value)
        if isinstance(value, float) and value.is_integer():
            out.append(int(value))
        else:
            out.append(value)
    return tuple(out)


def multiset_diff(reference_rows: list[tuple],
                  candidate_rows: list[tuple]
                  ) -> tuple[list[tuple], list[tuple]]:
    """(missing, extra) of candidate vs reference, as normalized rows."""
    reference = Counter(normalize_row(r) for r in reference_rows)
    candidate = Counter(normalize_row(r) for r in candidate_rows)
    missing = list((reference - candidate).elements())
    extra = list((candidate - reference).elements())
    return missing, extra


@dataclass
class Divergence:
    """One query whose row multisets differ across backends."""

    index: int
    query: Query
    sql: str
    missing: list[tuple]   # rows the reference produced, candidate lacks
    extra: list[tuple]     # rows the candidate produced, reference lacks
    reference_rows: int = 0
    candidate_rows: int = 0

    def describe(self) -> str:
        lines = [f"query #{self.index}: {self.reference_rows} vs "
                 f"{self.candidate_rows} rows",
                 f"  SQL: {self.sql}"]
        for row in self.missing[:5]:
            lines.append(f"  missing: {row}")
        for row in self.extra[:5]:
            lines.append(f"  extra:   {row}")
        return "\n".join(lines)


@dataclass
class DiffReport:
    """Outcome of one differential run."""

    reference: str
    candidate: str
    queries_checked: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def describe(self) -> str:
        head = (f"differential {self.reference} vs {self.candidate}: "
                f"{self.queries_checked} queries, "
                f"{len(self.divergences)} divergences")
        if self.ok:
            return head
        return "\n".join([head] + [d.describe() for d in self.divergences])


def compare_backends(reference: SQLBackend, candidate: SQLBackend,
                     queries: list[Query],
                     tracer: Tracer | NullTracer | None = None) -> DiffReport:
    """Run each query on both (already loaded) backends and compare."""
    tracer = tracer if tracer is not None else get_tracer()
    report = DiffReport(reference=reference.name, candidate=candidate.name)
    with tracer.span("backend.diff", reference=reference.name,
                     candidate=candidate.name, queries=len(queries)) as span:
        for index, query in enumerate(queries):
            reference_rows = reference.execute(query)
            candidate_rows = candidate.execute(query)
            report.queries_checked += 1
            missing, extra = multiset_diff(reference_rows, candidate_rows)
            if missing or extra:
                report.divergences.append(Divergence(
                    index=index, query=query, sql=render_query(query),
                    missing=missing, extra=extra,
                    reference_rows=len(reference_rows),
                    candidate_rows=len(candidate_rows)))
        span.set("divergences", len(report.divergences))
    return report


def validate_design(schema, configuration: Configuration | None, docs,
                    queries: list[Query],
                    tracer: Tracer | NullTracer | None = None) -> DiffReport:
    """Load engine + SQLite from the same documents and diff the queries.

    The one-call form the test suite and CI use: build both backends,
    load identically, apply the configuration to both, compare every
    query, and tear down.
    """
    configuration = configuration or Configuration()
    engine = EngineBackend(tracer=tracer)
    with SQLiteBackend(tracer=tracer) as sqlite_backend:
        engine.load(schema, docs)
        sqlite_backend.load(schema, docs)
        engine.apply_configuration(configuration)
        sqlite_backend.apply_configuration(configuration)
        return compare_backends(engine, sqlite_backend, queries,
                                tracer=tracer)
