"""Synthetic data sets: DBLP (Fig. 1a) and Movie (Fig. 1b).

Both generators take scale knobs (10^4-10^6+ records) and a
``stream=True`` form that yields records lazily with bounded memory —
see docs/scaling.md.
"""

from .dblp import (CONFERENCES, author_count, dblp_schema, generate_dblp,
                   iter_dblp_publications)
from .movie import generate_movies, iter_movie_elements, movie_schema

__all__ = [
    "dblp_schema",
    "generate_dblp",
    "iter_dblp_publications",
    "author_count",
    "CONFERENCES",
    "movie_schema",
    "generate_movies",
    "iter_movie_elements",
]
