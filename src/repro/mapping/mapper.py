"""Derive the relational schema from a mapping (paper Section 2).

Rules implemented:

1. every annotated node maps to a table with ``ID`` (primary key) and
   ``PID`` (foreign key to the parent region's table);
2. every leaf descendant reached without crossing another annotated node
   maps to a column of that table;
3. nodes sharing an annotation map to the same table (type merge);
4. a repetition-split count ``k`` on ``E*`` adds columns ``E_1 .. E_k``
   to the owner and keeps the overflow in ``E``'s own table;
5. a union distribution partitions the owner's table horizontally; each
   partition drops the columns that are statically absent under its
   condition (the "choice group semantics" of Section 3.2).
"""

from __future__ import annotations

import itertools

from ..engine import SQLType
from ..errors import MappingError
from ..xsd import NodeKind, SchemaNode, SchemaTree
from .model import Mapping, UnionDistribution
from .relschema import (BranchCondition, ColumnSpec, ID_COLUMN, LeafStorage,
                        MappedSchema, PartitionSpec, PID_COLUMN,
                        PresenceCondition, TableGroup)


def derive_schema(mapping: Mapping) -> MappedSchema:
    """Map a validated :class:`Mapping` to its relational schema."""
    mapping.validate()
    return _Mapper(mapping).run()


class _Mapper:
    def __init__(self, mapping: Mapping):
        self.mapping = mapping
        self.tree: SchemaTree = mapping.tree
        self.annotation_map = mapping.annotation_map
        self.split_map = mapping.split_map
        self.leaf_storage: dict[int, LeafStorage] = {}
        self.owner_of: dict[int, int] = {}
        self.column_of_leaf: dict[int, str] = {}

    # ------------------------------------------------------------------
    def run(self) -> MappedSchema:
        groups: dict[str, TableGroup] = {}
        by_annotation: dict[str, list[int]] = {}
        for node_id, annotation in self.mapping.annotations:
            by_annotation.setdefault(annotation, []).append(node_id)
        for annotation, owner_ids in sorted(by_annotation.items()):
            groups[annotation] = self._build_group(annotation, owner_ids)
        self._record_owners()
        return MappedSchema(self.mapping, groups, self.leaf_storage,
                            self.owner_of, self.column_of_leaf)

    def _record_owners(self) -> None:
        for node in self.tree.iter_nodes():
            if node.kind == NodeKind.TAG:
                self.owner_of[node.node_id] = self.mapping.owner_of(node.node_id)

    # ------------------------------------------------------------------
    def _build_group(self, annotation: str, owner_ids: list[int]) -> TableGroup:
        tree = self.tree
        columns: list[ColumnSpec] = [
            ColumnSpec(ID_COLUMN, None, SQLType.INTEGER, nullable=False),
            ColumnSpec(PID_COLUMN, None, SQLType.INTEGER, nullable=True),
        ]
        # An annotated leaf element's table stores the element value in a
        # column named after the element (e.g. author(ID, PID, author)).
        primary = owner_ids[0]
        primary_node = tree.node(primary)
        if tree.is_leaf_element(primary_node):
            sql_type = SQLType.from_base_type(tree.leaf_base_type(primary_node))
            used = {ID_COLUMN, PID_COLUMN}
            value_name = self._unique_name(primary_node.name, used)
            used.add(value_name)
            columns.append(ColumnSpec(value_name, primary,
                                      sql_type, nullable=False))
            for owner in owner_ids:
                storage = self.leaf_storage.setdefault(
                    owner, LeafStorage(leaf_id=owner))
                storage.own_annotation = annotation
                storage.value_column = value_name
            # Attributes of an annotated leaf element become columns of
            # its own table. Type-merged owners have equivalent subtrees,
            # so attributes correspond positionally.
            owner_attributes = [tree.attributes_of(tree.node(o))
                                for o in owner_ids]
            for position, p_attr in enumerate(owner_attributes[0]):
                attr_name = self._unique_name(p_attr.name, used)
                used.add(attr_name)
                attr_type = SQLType.from_base_type(tree.leaf_base_type(p_attr))
                columns.append(ColumnSpec(attr_name, p_attr.node_id,
                                          attr_type,
                                          nullable=p_attr.min_occurs == 0))
                for attrs in owner_attributes:
                    attr = attrs[position]
                    storage = self.leaf_storage.setdefault(
                        attr.node_id, LeafStorage(leaf_id=attr.node_id))
                    storage.inline_annotation = annotation
                    storage.column = attr_name
                    self.column_of_leaf[attr.node_id] = attr_name
            parent_annotations = set()
            for owner in owner_ids:
                parent_owner = self.mapping.parent_owner_of(owner)
                if parent_owner is not None:
                    parent_annotations.add(self.annotation_map[parent_owner])
            parent_annotation = (next(iter(parent_annotations))
                                 if len(parent_annotations) == 1 else None)
            return TableGroup(
                annotation=annotation, owner_ids=tuple(owner_ids),
                columns=columns,
                partitions=[PartitionSpec(
                    annotation, (), tuple(c.name for c in columns))],
                parent_annotation=parent_annotation)

        # Column layout must be identical across type-merged owners
        # (their subtrees are structurally equivalent, so collecting from
        # the first owner and then registering storage for each suffices).
        collected = self._collect_columns(primary)
        used_names = {ID_COLUMN, PID_COLUMN}
        renamed: dict[int, str] = {}
        for leaf_id, name, sql_type, nullable, occurrence in collected:
            final = self._unique_name(name, used_names)
            used_names.add(final)
            renamed[self._column_key(leaf_id, occurrence)] = final
            columns.append(ColumnSpec(final, leaf_id, sql_type,
                                      nullable, occurrence))
        for owner in owner_ids:
            self._register_storage(owner, annotation, renamed,
                                   primary_owner=primary)

        parent_annotations = set()
        for owner in owner_ids:
            parent_owner = self.mapping.parent_owner_of(owner)
            if parent_owner is not None:
                parent_annotations.add(self.annotation_map[parent_owner])
        parent_annotation = (next(iter(parent_annotations))
                             if len(parent_annotations) == 1 else None)

        partitions = self._build_partitions(annotation, owner_ids, columns)
        return TableGroup(annotation=annotation,
                          owner_ids=tuple(owner_ids),
                          columns=columns,
                          partitions=partitions,
                          parent_annotation=parent_annotation)

    @staticmethod
    def _column_key(leaf_id: int, occurrence: int | None) -> tuple:
        return (leaf_id, occurrence)

    @staticmethod
    def _unique_name(name: str, used: set[str]) -> str:
        if name not in used:
            return name
        for i in itertools.count(2):
            candidate = f"{name}_{i}"
            if candidate not in used:
                return candidate
        raise AssertionError  # pragma: no cover

    # ------------------------------------------------------------------
    def _collect_columns(self, owner_id: int):
        """Walk the owner's inline region, yielding column descriptors.

        Returns (leaf_id, proposed_name, sql_type, nullable, occurrence)
        tuples relative to the *primary* owner; type-merged owners have
        isomorphic subtrees so positional correspondence holds.
        """
        tree = self.tree
        out: list[tuple] = []

        def walk(node: SchemaNode, nullable: bool, prefix: str) -> None:
            for child in tree.children(node):
                if child.kind == NodeKind.SIMPLE:
                    continue
                if child.kind == NodeKind.ATTRIBUTE:
                    sql_type = SQLType.from_base_type(
                        tree.leaf_base_type(child))
                    out.append((child.node_id, prefix + child.name,
                                sql_type,
                                nullable or child.min_occurs == 0, None))
                    continue
                if child.kind == NodeKind.TAG:
                    if child.node_id in self.annotation_map:
                        continue  # separate table; boundary
                    if tree.is_leaf_element(child):
                        sql_type = SQLType.from_base_type(
                            tree.leaf_base_type(child))
                        out.append((child.node_id, prefix + child.name,
                                    sql_type, nullable, None))
                        for attr in tree.attributes_of(child):
                            attr_type = SQLType.from_base_type(
                                tree.leaf_base_type(attr))
                            out.append((attr.node_id,
                                        f"{prefix}{child.name}_{attr.name}",
                                        attr_type, True, None))
                    else:
                        walk(child, nullable, prefix + child.name + "_")
                elif child.kind == NodeKind.OPTION:
                    walk_wrap(child, True, prefix)
                elif child.kind == NodeKind.CHOICE:
                    walk_wrap(child, True, prefix)
                elif child.kind == NodeKind.SEQUENCE:
                    walk_wrap(child, nullable, prefix)
                elif child.kind == NodeKind.REPETITION:
                    split = self.split_map.get(child.node_id)
                    if split is None:
                        continue  # child is annotated; separate table
                    leaf = tree.children(child)[0]
                    sql_type = SQLType.from_base_type(tree.leaf_base_type(leaf))
                    for occurrence in range(1, split + 1):
                        out.append((leaf.node_id,
                                    f"{prefix}{leaf.name}_{occurrence}",
                                    sql_type, True, occurrence))

        def walk_wrap(node: SchemaNode, nullable: bool, prefix: str) -> None:
            walk(node, nullable, prefix)

        walk(tree.node(owner_id), False, "")
        return out

    # ------------------------------------------------------------------
    def _register_storage(self, owner_id: int, annotation: str,
                          renamed: dict, primary_owner: int) -> None:
        """Fill leaf_storage entries for one owner's inline region.

        For type-merged owners the column names come from the primary
        owner's walk, matched positionally via a parallel traversal.
        """
        tree = self.tree
        primary_leaves = self._region_leaves(primary_owner)
        owner_leaves = self._region_leaves(owner_id)
        if len(primary_leaves) != len(owner_leaves):  # pragma: no cover
            raise MappingError(
                f"type-merged owners of {annotation!r} have diverging shapes")
        for (p_leaf, p_occurrence), (o_leaf, _) in zip(primary_leaves,
                                                       owner_leaves):
            column = renamed[self._column_key(p_leaf, p_occurrence)]
            storage = self.leaf_storage.setdefault(
                o_leaf, LeafStorage(leaf_id=o_leaf))
            storage.inline_annotation = annotation
            if p_occurrence is None:
                storage.column = column
                self.column_of_leaf[o_leaf] = column
            else:
                storage.split_columns = storage.split_columns + (column,)

    def _region_leaves(self, owner_id: int) -> list[tuple[int, int | None]]:
        """(leaf_id, occurrence) pairs in region walk order."""
        tree = self.tree
        out: list[tuple[int, int | None]] = []

        def walk(node: SchemaNode) -> None:
            for child in tree.children(node):
                if child.kind == NodeKind.SIMPLE:
                    continue
                if child.kind == NodeKind.ATTRIBUTE:
                    out.append((child.node_id, None))
                    continue
                if child.kind == NodeKind.TAG:
                    if child.node_id in self.annotation_map:
                        continue
                    if tree.is_leaf_element(child):
                        out.append((child.node_id, None))
                        for attr in tree.attributes_of(child):
                            out.append((attr.node_id, None))
                    else:
                        walk(child)
                elif child.kind == NodeKind.REPETITION:
                    split = self.split_map.get(child.node_id)
                    if split is None:
                        continue
                    leaf = tree.children(child)[0]
                    for occurrence in range(1, split + 1):
                        out.append((leaf.node_id, occurrence))
                else:
                    walk(child)

        walk(tree.node(owner_id))
        return out

    # ------------------------------------------------------------------
    # Partitions
    # ------------------------------------------------------------------
    def _build_partitions(self, annotation: str, owner_ids: list[int],
                          columns: list[ColumnSpec]) -> list[PartitionSpec]:
        tree = self.tree
        owner = owner_ids[0]
        dists = [d for d in self.mapping.distributions
                 if self.mapping.distribution_owner(d) == owner]
        all_names = tuple(c.name for c in columns)
        if not dists:
            return [PartitionSpec(annotation, (), all_names)]

        per_dist: list[list[tuple[str, PartitionCondition]]] = []
        for dist in sorted(dists, key=lambda d: sorted(d.nodes())):
            per_dist.append(self._partition_options(dist))

        partitions: list[PartitionSpec] = []
        for combo in itertools.product(*per_dist):
            suffix = "_".join(tag for tag, _ in combo)
            conditions = tuple(cond for _, cond in combo)
            names = self._partition_columns(columns, conditions)
            partitions.append(PartitionSpec(
                table_name=f"{annotation}_{suffix}",
                conditions=conditions,
                column_names=names))
        return partitions

    def _partition_options(self, dist: UnionDistribution):
        tree = self.tree
        options: list[tuple[str, object]] = []
        if dist.choice_id is not None:
            choice = tree.node(dist.choice_id)
            for index, branch in enumerate(tree.children(choice)):
                options.append((self._branch_tag(branch),
                                BranchCondition(dist.choice_id, index)))
        else:
            names = [self._branch_tag(tree.node(oid))
                     for oid in sorted(dist.optional_ids)]
            label = "_".join(names)[:40]
            options.append((f"has_{label}",
                            PresenceCondition(dist.optional_ids, True)))
            options.append((f"no_{label}",
                            PresenceCondition(dist.optional_ids, False)))
        return options

    def _branch_tag(self, node: SchemaNode) -> str:
        """Short label for a choice branch / optional node."""
        if node.kind == NodeKind.TAG:
            return node.name
        for child in self.tree.children(node):
            label = self._branch_tag(child)
            if label:
                return label
        return f"b{node.node_id}"

    def _partition_columns(self, columns: list[ColumnSpec],
                           conditions) -> tuple[str, ...]:
        """Columns kept in a partition: drop statically absent leaves."""
        absent: set[int] = set()
        for condition in conditions:
            if isinstance(condition, BranchCondition):
                choice = self.tree.node(condition.choice_id)
                for index, branch in enumerate(self.tree.children(choice)):
                    if index != condition.branch_index:
                        absent |= self._leaves_under(branch)
            elif isinstance(condition, PresenceCondition) and not condition.present:
                for optional_id in condition.optional_ids:
                    absent |= self._leaves_under(self.tree.node(optional_id))
        names = []
        for spec in columns:
            if spec.leaf_id is not None and spec.leaf_id in absent:
                continue
            names.append(spec.name)
        return tuple(names)

    def _leaves_under(self, node: SchemaNode) -> set[int]:
        out: set[int] = set()

        def walk(current: SchemaNode) -> None:
            if current.kind == NodeKind.ATTRIBUTE:
                out.add(current.node_id)
                return
            if current.kind == NodeKind.TAG:
                if self.tree.is_leaf_element(current):
                    out.add(current.node_id)
                    for attr in self.tree.attributes_of(current):
                        out.add(attr.node_id)
                    return
                if current.node_id in self.annotation_map:
                    return
            for child in self.tree.children(current):
                walk(child)

        walk(node)
        return out
