"""End-to-end lint of a schema + mapping + workload bundle.

:func:`lint_bundle` drives all three analyzers over one design problem:
the mapping is validated (MAP001) and its derived schema checked for
losslessness (MAP002..MAP006); every workload query is translated
(XLT001 on failure), semantically analyzed against the stats-only
catalog (SQL001..SQL009), planned by the what-if optimizer, and the
resulting plan sanitized (PLAN001..PLAN006). Findings are *collected*,
never raised — this is the ``repro check`` CLI's engine, which decides
the exit code from the ERROR count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import MappingError, PlanError, TranslationError
from ..mapping import CollectedStats, Mapping, derive_schema
from ..translate import Translator
from ..workload import Workload
from .findings import Findings
from .mapping_checker import check_mapping, check_schema
from .plan_checker import check_plan
from .runtime import override_checks
from .sql_analyzer import analyze_query


@dataclass
class BundleReport:
    """Outcome of one bundle lint."""

    findings: Findings = field(default_factory=Findings)
    queries_checked: int = 0
    queries_failed: int = 0
    tables_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings.errors

    def summary(self) -> str:
        errors = len(self.findings.errors)
        warnings = len(self.findings.warnings)
        status = "OK" if self.ok else "FAILED"
        return (f"{status}: {self.tables_checked} table(s), "
                f"{self.queries_checked} quer(y/ies) checked, "
                f"{errors} error(s), {warnings} warning(s)")


def _prefixed(findings: Findings, prefix: str) -> Findings:
    out = Findings()
    for finding in findings:
        location = f"{prefix}.{finding.location}" if finding.location \
            else prefix
        out.add(finding.code, finding.message, location,
                severity=finding.severity)
    return out


def lint_bundle(mapping: Mapping, workload: Workload,
                stats: CollectedStats) -> BundleReport:
    """Lint one design bundle end-to-end; collects, never raises."""
    from ..search.evaluator import build_stats_only_database

    report = BundleReport()
    report.findings.extend(check_mapping(mapping))
    if report.findings.errors:
        return report  # schema derivation would compound the damage
    try:
        schema = derive_schema(mapping)
    except MappingError as exc:
        report.findings.add("MAP001", f"schema derivation failed: {exc}",
                            "mapping")
        return report
    report.findings.extend(check_schema(schema))
    if report.findings.errors:
        return report  # a lossy schema cannot be populated or queried
    db = build_stats_only_database(schema, stats)
    report.tables_checked = len(db.catalog.tables)
    translator = Translator(schema)
    for i, wq in enumerate(workload):
        where = f"query[{i}]"
        report.queries_checked += 1
        try:
            sql = translator.translate(wq.query)
        except TranslationError as exc:
            report.queries_failed += 1
            report.findings.add(
                "XLT001", f"cannot translate {wq.query!r}: {exc}", where)
            continue
        report.findings.extend(
            _prefixed(analyze_query(sql, db.catalog), where))
        try:
            with override_checks(False):  # the linter is the checker here
                planned = db.estimate(sql)
        except PlanError as exc:
            report.queries_failed += 1
            report.findings.add(
                "XLT001", f"cannot plan {wq.query!r}: {exc}", where)
            continue
        report.findings.extend(_prefixed(
            check_plan(sql, planned, db.catalog, what_if=True), where))
    return report
