"""Parallel fan-out for candidate costing.

Costing the candidates of one greedy round (or one naive enumeration
pass) is embarrassingly parallel: every evaluation reads the immutable
schema tree, the workload, and the collected statistics, and builds its
own private stats-only database. This module runs those evaluations on
a ``concurrent.futures`` pool:

* **process backend** (default) — workers are initialized once with a
  pickled ``(workload, collected stats, storage bound)`` context and
  receive one picklable work unit per candidate (the mapping plus, for
  partial evaluations, the reused costs and carried object sets);
* **thread backend** — a fallback for platforms where process pools
  are unavailable (and available explicitly via
  ``REPRO_PARALLEL_BACKEND=thread``); correct but not faster for this
  pure-Python workload.

Determinism is preserved by construction: tasks are submitted and their
outputs absorbed in submission order, each worker computes the same
pure function the serial path computes, and the serial and parallel
code paths share every decision *around* the evaluations (caching,
dedup, scoring). Worker-side observability is not lost — each task
returns its counter deltas, metric deltas, and span tree, which the
caller grafts into the main process's tracer in submission order.

Controls: ``--jobs N`` on the CLI / the ``jobs=`` search argument, or
the ``REPRO_PARALLEL`` environment variable (``0``/unset = serial,
``1``/``auto`` = one worker per CPU, ``N`` = exactly N workers). See
docs/performance.md.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import (Executor, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..errors import InjectedFault
from ..obs import NULL_TRACER, NullTracer, Tracer, get_tracer
from ..resilience import RetryPolicy, active_fault_plan, install_fault_plan
from .result import SearchCounters

__all__ = ["EvaluationPool", "EvaluationTask", "WorkerOutput",
           "resolve_jobs", "parallel_backend", "graft_spans"]

#: SearchCounters fields a worker evaluation can advance. ``wall_time``
#: is excluded: the search's Stopwatch measures real elapsed time in
#: the main process, and summing worker times would double-count.
_COUNTER_FIELDS = ("transformations_searched", "mappings_evaluated",
                   "cache_hits", "cache_hits_infeasible",
                   "persistent_cache_hits", "tuner_calls",
                   "optimizer_calls", "derived_query_costs",
                   "fault_retries", "faulted_evaluations")

#: Exceptions that mean "the pool infrastructure broke", as opposed to
#: the evaluation itself failing. ``FuturesTimeout`` is handled apart —
#: on 3.12+ it aliases the builtin ``TimeoutError`` (an ``OSError``
#: subclass), so it must be caught before this tuple.
_INFRA_ERRORS = (BrokenProcessPool, OSError, pickle.PicklingError,
                 RuntimeError, InjectedFault)


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count from an explicit argument or ``REPRO_PARALLEL``.

    ``None`` defers to the environment: unset/``0``/``off`` mean serial;
    ``1``/``auto``/``on`` mean one worker per CPU (minimum 2, so the
    parallel machinery is exercised even on single-CPU runners); any
    other integer is the exact worker count. An explicit non-positive
    argument is an error (``--jobs 0`` used to be silently clamped to
    serial, masking the typo).
    """
    if jobs is not None:
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(
                f"jobs must be >= 1 (got {jobs}); use jobs=1 for a serial "
                "run, or leave it unset to follow REPRO_PARALLEL")
        return jobs
    raw = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if raw in ("", "0", "off", "false", "no"):
        return 1
    if raw in ("1", "auto", "on", "true", "yes"):
        return max(2, os.cpu_count() or 1)
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def parallel_backend() -> str:
    """``process`` (default) or ``thread`` via ``REPRO_PARALLEL_BACKEND``."""
    raw = os.environ.get("REPRO_PARALLEL_BACKEND", "process").strip().lower()
    return "thread" if raw == "thread" else "process"


# ----------------------------------------------------------------------
# Work units
# ----------------------------------------------------------------------

#: ``(kind, mapping, reuse, carried)`` where ``kind`` is ``"exact"`` or
#: ``"partial"``; ``reuse`` maps workload indices to reused costs and
#: ``carried`` maps the same indices to the object sets those costs were
#: derived with (both ``None`` for exact evaluations).
EvaluationTask = tuple


@dataclass
class WorkerOutput:
    """Everything one evaluation produced, in picklable form.

    ``fault`` marks a result dropped by the resilience policy (retries
    exhausted, deadline fired) — such a ``None`` is *not* a fact about
    the mapping and must never be cached by the absorbing side.
    """

    result: object  # EvaluatedMapping | None
    counters: dict[str, int] = field(default_factory=dict)
    metrics: dict[str, dict[str, float]] = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    fault: str | None = None


def _counters_snapshot(counters: SearchCounters) -> dict[str, int]:
    return {name: getattr(counters, name) for name in _COUNTER_FIELDS}


def run_task(evaluator, task: EvaluationTask, tracing: bool) -> WorkerOutput:
    """Execute one work unit on an evaluator and package the output.

    Shared by the process workers and the thread fallback; the caller
    guarantees the evaluator is not used concurrently. The retry
    policy runs *inside* the task (``_execute_uncached``), so its
    counter deltas ride back with the rest.
    """
    from ..obs import trace_to_dicts

    kind, mapping, reuse, carried = task
    tracer = Tracer() if tracing else NULL_TRACER
    evaluator.rebind_tracer(tracer)
    before = _counters_snapshot(evaluator.counters)
    result, fault = evaluator._execute_uncached(kind, mapping, reuse, carried)
    after = _counters_snapshot(evaluator.counters)
    deltas = {name: after[name] - before[name]
              for name in _COUNTER_FIELDS if after[name] != before[name]}
    if not tracing:
        return WorkerOutput(result=result, counters=deltas, fault=fault)
    exported = trace_to_dicts(tracer)
    return WorkerOutput(result=result, counters=deltas,
                        metrics=tracer.metric_snapshot(),
                        spans=exported["spans"], fault=fault)


# ----------------------------------------------------------------------
# Process-pool worker side
# ----------------------------------------------------------------------

_WORKER_EVALUATOR = None
_WORKER_TRACING = False


def _init_worker(payload: bytes) -> None:
    """Build this worker's evaluator once from the pickled context.

    The active fault plan travels as its spec string and is rebuilt
    with fresh per-site counters, so fault injection reaches pool
    workers too; the retry policy rides along so worker-side retries
    follow the same bounds as serial ones.
    """
    global _WORKER_EVALUATOR, _WORKER_TRACING
    from .evaluator import MappingEvaluator

    (workload, collected, storage_bound, tracing,
     policy, fault_spec) = pickle.loads(payload)
    install_fault_plan(fault_spec)
    _WORKER_EVALUATOR = MappingEvaluator(
        workload, collected, storage_bound,
        use_cache=False, jobs=1, tracer=NULL_TRACER, policy=policy)
    _WORKER_TRACING = tracing


def _pool_task(task: EvaluationTask) -> WorkerOutput:
    assert _WORKER_EVALUATOR is not None, "worker initializer did not run"
    return run_task(_WORKER_EVALUATOR, task, _WORKER_TRACING)


# ----------------------------------------------------------------------
# Main-process side
# ----------------------------------------------------------------------


class EvaluationPool:
    """A lazily created executor bound to one evaluation problem.

    Degradation chain: ``process`` → ``thread`` → ``inline``. Each
    broken-infrastructure signal (a killed worker, a pickling failure,
    an injected ``pool.submit`` fault, a fired deadline) steps the
    backend down one tier; the batch always finishes, and because every
    task is a pure function of pickled inputs, the results are
    identical on every tier.
    """

    def __init__(self, workload, collected, storage_bound,
                 jobs: int, tracing: bool, backend: str | None = None,
                 policy: RetryPolicy | None = None,
                 counters: SearchCounters | None = None,
                 tracer: Tracer | NullTracer | None = None):
        self.workload = workload
        self.collected = collected
        self.storage_bound = storage_bound
        self.jobs = jobs
        self.tracing = tracing
        self.backend = backend or parallel_backend()
        self.policy = policy if policy is not None else RetryPolicy()
        self.counters = counters if counters is not None else SearchCounters()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._executor: Executor | None = None

    # ------------------------------------------------------------------
    def _ensure_executor(self) -> None:
        if self._executor is not None or self.backend == "inline":
            return
        if self.backend == "process":
            plan = active_fault_plan()
            payload = pickle.dumps(
                (self.workload, self.collected, self.storage_bound,
                 self.tracing, self.policy,
                 plan.to_spec() if plan.enabled else None))
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_init_worker, initargs=(payload,))
                return
            except (OSError, ValueError, pickle.PicklingError):
                self.backend = "thread"  # e.g. no /dev/shm semaphores
        self._executor = ThreadPoolExecutor(max_workers=self.jobs)

    def _thread_task(self, task: EvaluationTask) -> WorkerOutput:
        # A fresh evaluator per task: nothing mutable is shared between
        # concurrently running thread tasks.
        from .evaluator import MappingEvaluator

        evaluator = MappingEvaluator(
            self.workload, self.collected, self.storage_bound,
            use_cache=False, jobs=1, tracer=NULL_TRACER, policy=self.policy)
        return run_task(evaluator, task, self.tracing)

    def _serial_task(self, task: EvaluationTask) -> WorkerOutput:
        return self._thread_task(task)

    # ------------------------------------------------------------------
    def run(self, tasks: list[EvaluationTask]) -> list[WorkerOutput]:
        """Evaluate all tasks; outputs are in submission order.

        Broken infrastructure (a worker killed by the OS, a pickling
        failure, an injected submission fault) degrades one backend
        tier and finishes the batch in-process — the batch always
        completes. A per-evaluation deadline (``policy.timeout``)
        abandons a hung evaluation: that candidate comes back as
        infeasible-by-fault (``fault="timeout"``, never cached, never
        re-run in the main process — it might hang it too) and the
        pool degrades away from the backend that hung. Evaluation-level
        exceptions (e.g. :class:`~repro.errors.CheckError`) propagate:
        they signal bugs, not infrastructure failures.
        """
        if self.backend == "inline":
            return [self._serial_task(task) for task in tasks]
        try:
            active_fault_plan().maybe_raise("pool.submit")
            self._ensure_executor()
            assert self._executor is not None
            if self.backend == "thread":
                futures = [self._executor.submit(self._thread_task, task)
                           for task in tasks]
            else:
                futures = [self._executor.submit(_pool_task, task)
                           for task in tasks]
        except _INFRA_ERRORS:
            self._degrade("submit")
            return [self._serial_task(task) for task in tasks]
        outputs: list[WorkerOutput] = []
        degraded = False
        for index, future in enumerate(futures):
            if degraded:
                outputs.append(self._serial_task(tasks[index]))
                continue
            try:
                outputs.append(future.result(timeout=self.policy.timeout))
            except FuturesTimeout:
                # Abandon the hung evaluation; the candidate degrades
                # to infeasible-by-fault and the search continues.
                self.counters.timeouts += 1
                self.counters.faulted_evaluations += 1
                self.tracer.metrics("pool").incr("timeouts")
                self.tracer.event("evaluation_timeout", index=index)
                degraded = True
                self._degrade("timeout")
                outputs.append(WorkerOutput(result=None, fault="timeout"))
            except _INFRA_ERRORS:
                degraded = True
                self._degrade("worker")
                outputs.append(self._serial_task(tasks[index]))
        return outputs

    def _degrade(self, reason: str) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            # wait=False: a hung worker must not hang the shutdown too.
            executor.shutdown(wait=False, cancel_futures=True)
        previous = self.backend
        self.backend = "thread" if previous == "process" else "inline"
        self.counters.pool_degradations += 1
        self.tracer.metrics("pool").incr(f"degradations.{reason}")
        self.tracer.event("pool_degraded", reason=reason,
                          backend=previous, fallback=self.backend)

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Trace grafting
# ----------------------------------------------------------------------


def graft_spans(tracer: Tracer | NullTracer, span_dicts: list[dict]) -> None:
    """Attach worker span trees under the tracer's current span.

    Replayed spans keep their recorded attributes, events, and wall
    times (worker compute time — their sum can exceed the batch's real
    elapsed time, exactly as in any parallel trace), and receive fresh
    sequence numbers in submission order so exporters stay
    deterministic.
    """
    if not tracer.enabled:
        return
    for span_dict in span_dicts:
        with tracer.span(span_dict["name"]) as span:
            for key, value in span_dict.get("attributes", {}).items():
                span.set(key, value)
            for event in span_dict.get("events", []):
                span.event(event["name"], **event.get("attributes", {}))
            graft_spans(tracer, span_dict.get("children", []))
        span.wall_time = span_dict.get("wall_time", 0.0)


def merge_metrics(tracer: Tracer | NullTracer,
                  metrics: dict[str, dict[str, float]]) -> None:
    """Fold worker metric deltas into the main tracer's registries."""
    if not tracer.enabled:
        return
    for component in sorted(metrics):
        registry = tracer.metrics(component)
        counters = metrics[component]
        for name in sorted(counters):
            registry.incr(name, counters[name])
