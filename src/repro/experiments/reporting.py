"""Plain-text tables and series, shaped like the paper's figures."""

from __future__ import annotations

from io import StringIO


def format_table(title: str, headers: list[str],
                 rows: list[list], note: str | None = None) -> str:
    """Fixed-width table with a title rule, like the paper's tables."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    out = StringIO()
    rule = "-+-".join("-" * w for w in widths)
    out.write(f"== {title} ==\n")
    out.write(" | ".join(h.ljust(w) for h, w in zip(headers, widths)) + "\n")
    out.write(rule + "\n")
    for row in cells:
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    if note:
        out.write(f"note: {note}\n")
    return out.getvalue()


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_series(title: str, x_label: str,
                  series: dict[str, dict[str, float]]) -> str:
    """One row per x value, one column per series (a figure-as-table)."""
    xs: list[str] = []
    for values in series.values():
        for x in values:
            if x not in xs:
                xs.append(x)
    headers = [x_label] + list(series)
    rows = [[x] + [series[name].get(x, "") for name in series] for x in xs]
    return format_table(title, headers, rows)
