"""Property-based round-trip tests for the SQL AST: for any AST the
renderer can produce, ``parse_sql(str(ast)) == ast``."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlast import (And, ColumnRef, Comparison, ComparisonOp, Exists,
                          IsNull, Literal, Or, Query, Select, SelectItem,
                          TableRef, parse_sql, render)

_names = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {"select", "from", "where", "union", "all", "order",
                        "by", "and", "or", "as", "null", "is", "not",
                        "exists"})

_columns = st.builds(ColumnRef, table=_names, column=_names)
_literals = st.one_of(
    st.builds(Literal, st.integers(-10_000, 10_000)),
    st.builds(Literal, st.floats(allow_nan=False, allow_infinity=False)),
    st.builds(Literal, st.booleans()),
    st.builds(Literal, st.text(
        alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
        max_size=12)),
    st.just(Literal(None)),
)
_scalars = st.one_of(_columns, _literals)

_comparisons = st.builds(
    Comparison, left=_columns, op=st.sampled_from(list(ComparisonOp)),
    right=_scalars)
_is_nulls = st.builds(IsNull, operand=_columns, negated=st.booleans())
_atoms = st.one_of(_comparisons, _is_nulls)


def _flatten_and(items):
    """Canonical AND: directly nested ANDs flatten (renderer drops the
    parentheses, so only flattened trees round-trip identically)."""
    out = []
    for item in items:
        if isinstance(item, And):
            out.extend(item.items)
        else:
            out.append(item)
    return And(tuple(out))


def _flatten_or(items):
    out = []
    for item in items:
        if isinstance(item, Or):
            out.extend(item.items)
        else:
            out.append(item)
    return Or(tuple(out))


def _bool_exprs():
    return st.recursive(
        _atoms,
        lambda children: st.one_of(
            st.builds(lambda items: _flatten_and(items),
                      st.lists(children, min_size=2, max_size=3)),
            st.builds(lambda items: _flatten_or(items),
                      st.lists(children, min_size=2, max_size=3)),
        ),
        max_leaves=6)


@st.composite
def selects(draw, width=None):
    n_items = width if width is not None else draw(st.integers(1, 4))
    items = tuple(SelectItem(draw(_scalars)) for _ in range(n_items))
    tables = tuple(
        TableRef(draw(_names), draw(_names))
        for _ in range(draw(st.integers(1, 2))))
    where = draw(st.one_of(st.none(), _bool_exprs()))
    if draw(st.booleans()):
        inner = Select(
            items=(SelectItem(Literal(1)),),
            from_tables=(TableRef(draw(_names), draw(_names)),),
            where=draw(_atoms))
        exists = Exists(inner)
        where = exists if where is None else _flatten_and([where, exists])
    return Select(items=items, from_tables=tables, where=where)


@st.composite
def queries(draw):
    width = draw(st.integers(1, 4))
    n_selects = draw(st.integers(1, 3))
    body = tuple(draw(selects(width=width)) for _ in range(n_selects))
    order_by = tuple(draw(st.lists(st.integers(1, width), max_size=2)))
    return Query(selects=body, order_by=order_by)


@given(queries())
@settings(max_examples=200, deadline=None)
def test_roundtrip_single_line(query):
    assert parse_sql(str(query)) == query


@given(queries())
@settings(max_examples=100, deadline=None)
def test_roundtrip_rendered(query):
    assert parse_sql(render(query)) == query


@given(queries())
@settings(max_examples=50, deadline=None)
def test_referenced_tables_stable_under_roundtrip(query):
    reparsed = parse_sql(str(query))
    assert reparsed.referenced_tables == query.referenced_tables


# ----------------------------------------------------------------------
# Regression cases found by the PR-2 renderer/parser audit
# ----------------------------------------------------------------------

def _one_literal_query(value):
    return Query(selects=(Select(
        items=(SelectItem(Literal(value)),),
        from_tables=(TableRef("t", "t"),), where=None),))


@pytest.mark.parametrize("value", [
    # bools used to render "True"/"False" and re-parse as ColumnRefs
    True, False,
    # exponents used to fail tokenization ("1e+20", "1e-07")
    1e20, 1e-7, -3.5e-12, 6.02e23,
    # plain numerics
    1.0, 0.1, -7, 0,
    # string escaping: embedded quotes, operator chars, keyword look-alikes
    "a'b", "don''t", "<>", "<= '", "NULL", "SELECT", "1995", "",
    "O''Brien", "a\nb",
])
def test_literal_roundtrip_regressions(value):
    query = _one_literal_query(value)
    assert parse_sql(str(query)) == query
    assert parse_sql(render(query)) == query


def test_nonfinite_literal_rendering_raises():
    for value in (float("inf"), float("-inf"), float("nan")):
        with pytest.raises(ValueError):
            str(Literal(value))


def test_bool_literal_renders_as_number():
    assert str(Literal(True)) == "1"
    assert str(Literal(False)) == "0"
