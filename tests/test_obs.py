"""Tests for the observability subsystem (repro.obs).

Covers the tracer core (nesting, determinism, the no-op singleton),
exporters, and — the load-bearing guarantee — that the trace's
aggregated span attributes agree with the ``SearchCounters`` the
experiments report, after a full greedy run on the movie schema.
"""

import json

import pytest

from repro.datasets import generate_movies, movie_schema
from repro.mapping import collect_statistics
from repro.obs import (NULL_TRACER, MetricRegistry, Tracer, find_spans,
                       get_tracer, iter_spans, render_tree, set_tracer,
                       sum_attribute, summarize, to_json, trace_to_dicts)
from repro.search import GreedySearch
from repro.workload import Workload


class TestTracerCore:
    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                inner.set("k", 1)
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["outer"]
        assert [s.name for s in outer.children] == ["inner", "inner"]
        assert outer.children[0].attributes == {"k": 1}
        assert tracer.current is None

    def test_sequence_numbers_order_children_and_events(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            tracer.event("first")
            with tracer.span("child"):
                pass
            tracer.event("last")
        seqs = [root.events[0].seq, root.children[0].seq, root.events[1].seq]
        assert seqs == sorted(seqs)

    def test_incr_and_event_attributes(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.incr("hits")
            span.incr("hits", 2)
            span.event("e", kind="x")
        assert span.attributes["hits"] == 3
        assert span.events[0].name == "e"
        assert span.events[0].attributes == {"kind": "x"}

    def test_wall_time_accumulates(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            pass
        assert span.wall_time >= 0

    def test_exception_unwinds_stack(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current is None

    def test_metrics_registry(self):
        tracer = Tracer()
        tracer.metrics("db").incr("estimate_calls")
        tracer.metrics("db").incr("estimate_calls", 4)
        assert tracer.metrics("db") is tracer.metrics("db")
        assert tracer.metric_snapshot() == {"db": {"estimate_calls": 5}}

    def test_metric_registry_snapshot_sorted(self):
        registry = MetricRegistry("c")
        registry.incr("zz")
        registry.incr("aa")
        assert list(registry.snapshot()) == ["aa", "zz"]


class TestNullTracer:
    def test_disabled_tracer_records_nothing(self):
        with NULL_TRACER.span("ignored", attr=1) as span:
            span.set("k", "v")
            span.incr("n")
            span.event("e")
            NULL_TRACER.event("top")
        assert not NULL_TRACER.spans
        assert not NULL_TRACER.events
        assert span.attributes == {}
        assert not NULL_TRACER.enabled

    def test_null_span_is_a_shared_singleton(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_null_metrics_vanish(self):
        registry = NULL_TRACER.metrics("db")
        registry.incr("calls", 10)
        assert registry.get("calls") == 0
        assert NULL_TRACER.metric_snapshot() == {}

    def test_ambient_tracer_install_and_clear(self):
        assert get_tracer() is NULL_TRACER
        tracer = Tracer()
        try:
            assert set_tracer(tracer) is tracer
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestExport:
    def _sample(self):
        tracer = Tracer()
        with tracer.span("tune", queries=2) as span:
            span.set("optimizer_calls", 7)
            tracer.event("cache_hit", kind="exact")
            with tracer.span("estimate"):
                pass
        return tracer

    def test_render_tree_is_deterministic_without_times(self):
        text = render_tree(self._sample(), include_times=False)
        assert text == ("- tune optimizer_calls=7 queries=2\n"
                        "  * cache_hit kind=exact\n"
                        "  - estimate")
        assert render_tree(self._sample(), include_times=False) == text

    def test_render_tree_includes_times_by_default(self):
        assert "ms]" in render_tree(self._sample())

    def test_to_json_round_trips(self):
        document = json.loads(to_json(self._sample()))
        assert document["spans"][0]["name"] == "tune"
        assert document["spans"][0]["attributes"]["optimizer_calls"] == 7
        assert document["spans"][0]["children"][0]["name"] == "estimate"
        assert document["spans"][0]["events"][0]["name"] == "cache_hit"

    def test_trace_to_dicts_attribute_order_sorted(self):
        document = trace_to_dicts(self._sample(), include_times=False)
        attributes = document["spans"][0]["attributes"]
        assert list(attributes) == sorted(attributes)

    def test_find_and_sum(self):
        tracer = self._sample()
        assert [s.name for s in iter_spans(tracer)] == ["tune", "estimate"]
        assert len(find_spans(tracer, "estimate")) == 1
        assert sum_attribute(find_spans(tracer, "tune"),
                             "optimizer_calls") == 7

    def test_summarize_aggregates(self):
        text = summarize(self._sample())
        assert "tune" in text and "optimizer_calls=7" in text

    def test_empty_tracer_exports(self):
        tracer = Tracer()
        assert render_tree(tracer) == "(no spans recorded)"
        assert summarize(tracer) == "(no spans recorded)"
        assert json.loads(to_json(tracer)) == {"spans": [], "events": [],
                                               "metrics": {}}


@pytest.fixture(scope="module")
def movie_run():
    tree = movie_schema()
    doc = generate_movies(400, seed=11)
    stats = collect_statistics(tree, doc)
    workload = Workload.from_strings("w", [
        "//movie/year", "//movie/avg_rating",
        '//movie[year >= "1990"]/title', "//movie/box_office"])
    tracer = Tracer()
    search = GreedySearch(tree, workload, stats, tracer=tracer)
    result = search.run()
    return tracer, result


class TestSearchTraceAgreesWithCounters:
    """The trace is only auditable if it reconciles with the counters
    the Fig. 5-9 experiments report."""

    def test_result_carries_root_span(self, movie_run):
        tracer, result = movie_run
        assert result.trace is not None
        assert result.trace.name == "greedy"
        assert result.trace in tracer.spans

    def test_tuner_calls_match_tune_spans(self, movie_run):
        tracer, result = movie_run
        successful_tunes = [s for s in find_spans(tracer, "advisor.tune")
                            if "optimizer_calls" in s.attributes]
        assert result.counters.tuner_calls == len(successful_tunes)

    def test_optimizer_calls_match_span_totals(self, movie_run):
        tracer, result = movie_run
        tunes = find_spans(tracer, "advisor.tune")
        assert result.counters.optimizer_calls == \
            sum_attribute(tunes, "optimizer_calls")

    def test_mappings_evaluated_match_evaluate_spans(self, movie_run):
        tracer, result = movie_run
        spans = (find_spans(tracer, "evaluate.exact")
                 + find_spans(tracer, "evaluate.partial"))
        assert result.counters.mappings_evaluated == len(spans)

    def test_cache_hits_match_events(self, movie_run):
        tracer, result = movie_run
        hits = [event for span in iter_spans(tracer)
                for event in span.events if event.name == "cache_hit"]
        assert result.counters.cache_hits == len(hits)

    def test_derived_costs_match_partial_spans(self, movie_run):
        tracer, result = movie_run
        partials = find_spans(tracer, "evaluate.partial")
        assert result.counters.derived_query_costs == \
            sum_attribute(partials, "reused")

    def test_database_estimate_metric_counted(self, movie_run):
        tracer, result = movie_run
        estimates = tracer.metrics("database").get("estimate_calls")
        assert estimates > 0
        assert estimates >= result.counters.optimizer_calls

    def test_disabled_search_tracing_attaches_nothing(self):
        tree = movie_schema()
        doc = generate_movies(200, seed=12)
        stats = collect_statistics(tree, doc)
        workload = Workload.from_strings("w", ["//movie/year"])
        result = GreedySearch(tree, workload, stats).run()
        assert result.trace is None

    def test_trace_structure_is_reproducible(self):
        tree = movie_schema()
        doc = generate_movies(250, seed=13)
        stats = collect_statistics(tree, doc)
        renders = []
        for _ in range(2):
            workload = Workload.from_strings("w", [
                "//movie/year", "//movie/avg_rating"])
            tracer = Tracer()
            GreedySearch(tree, workload, stats, tracer=tracer).run()
            renders.append(render_tree(tracer, include_times=False))
        assert renders[0] == renders[1]


# ----------------------------------------------------------------------
# Concurrency: registry counters and histogram snapshots under load
# ----------------------------------------------------------------------


class TestMetricRegistryConcurrency:
    """Regression tests for the serve-pool metrics races.

    ``MetricRegistry.incr`` used to be an unlocked dict
    read-modify-write; hammered from worker threads (exactly how the
    query service calls it) increments were lost. The tiny switch
    interval forces thread preemption inside the read-modify-write
    window, so the old code fails this test in well under a second.
    """

    @pytest.fixture(autouse=True)
    def _fast_preemption(self):
        import sys
        previous = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        yield
        sys.setswitchinterval(previous)

    def test_incr_hammer_loses_no_increments(self):
        import threading
        registry = MetricRegistry("hammer")
        threads_n, per_thread = 8, 5000

        def worker() -> None:
            for _ in range(per_thread):
                registry.incr("requests")
                registry.incr("bytes", 3)

        threads = [threading.Thread(target=worker)
                   for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.get("requests") == threads_n * per_thread
        assert registry.get("bytes") == threads_n * per_thread * 3

    def test_incr_survives_a_forced_preemption_window(self):
        """The deterministic form of the hammer: a scheduling point is
        injected *inside* the read-modify-write window (``dict.get``
        yields the GIL before the store). The unlocked ``incr`` loses
        ~90% of the increments here; the locked one loses none."""
        import threading
        import time

        class YieldingDict(dict):
            def get(self, *args):
                value = super().get(*args)
                time.sleep(0)  # explicit preemption point mid-RMW
                return value

        registry = MetricRegistry("hammer")
        registry.counters = YieldingDict()
        threads_n, per_thread = 8, 300

        def worker() -> None:
            for _ in range(per_thread):
                registry.incr("requests")

        threads = [threading.Thread(target=worker)
                   for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.get("requests") == threads_n * per_thread

    def test_histogram_get_or_create_is_single(self):
        import threading
        registry = MetricRegistry("hammer")
        seen = []
        barrier = threading.Barrier(4)

        def worker() -> None:
            barrier.wait()
            seen.append(registry.histogram("lat"))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(h) for h in seen}) == 1

    def test_snapshot_is_internally_consistent_under_load(self):
        """`snapshot` must be computed from ONE locked copy of the
        state. All observations are exactly 0.25 s (a binary-exact
        value), so any consistent snapshot has ``mean == 0.25``; the
        old field-by-field reads tore (``total`` bumped before
        ``count``) and produced impossible means."""
        import threading
        from repro.obs import LatencyHistogram
        histogram = LatencyHistogram("t")
        stop = threading.Event()

        def worker() -> None:
            while not stop.is_set():
                histogram.observe(0.25)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(3000):
                snapshot = histogram.snapshot()
                if snapshot["count"]:
                    assert snapshot["mean"] == 0.25, snapshot
                    assert snapshot["p99"] <= snapshot["max"]
                mean = histogram.mean
                assert mean in (0.0, 0.25)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert histogram.count == sum(
            c for _, c in histogram.nonzero_buckets())
