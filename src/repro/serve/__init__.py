"""The serving layer: a long-lived query service plus a load harness.

The advisor designs a schema; this package *serves* it. A
:class:`QueryService` loads one tuned design into a SQLite backend
once, translates XPath through an LRU :class:`PlanCache`, and answers
queries from a thread pool (one backend connection per worker). A
:class:`LoadGenerator` drives it in closed- or open-loop mode with a
seeded Zipf query mix and reports p50/p95/p99 latency and QPS; the
HTML run report archives one run. See docs/serving.md.
"""

from .loadgen import LoadGenerator, LoadReport, RequestRecord
from .plan_cache import CachedPlan, PlanCache
from .report import render_run_report, write_run_report
from .service import (CircuitOpenError, QueryService, RequestTimeout,
                      ServeResult, ServiceError, ServiceOverloaded,
                      ServiceStats)

__all__ = [
    "QueryService",
    "ServeResult",
    "ServiceError",
    "ServiceOverloaded",
    "RequestTimeout",
    "CircuitOpenError",
    "ServiceStats",
    "PlanCache",
    "CachedPlan",
    "LoadGenerator",
    "LoadReport",
    "RequestRecord",
    "render_run_report",
    "write_run_report",
]
