"""Unit tests for the XML document model, parser, and writer."""

import pytest

from repro.errors import XMLParseError
from repro.xmlkit import Document, Element, count_elements, element, parse, serialize


class TestElementModel:
    def test_append_sets_parent(self):
        parent = Element("a")
        child = parent.make_child("b")
        assert child.parent is parent
        assert parent.children == (child,)

    def test_make_child_with_text(self):
        el = Element("a")
        child = el.make_child("title", "Titanic")
        assert child.text == "Titanic"

    def test_find_and_find_all(self):
        root = element("r", element("x", "1"), element("y"), element("x", "2"))
        assert root.find("x").text == "1"
        assert [e.text for e in root.find_all("x")] == ["1", "2"]
        assert root.find("missing") is None

    def test_iter_is_preorder(self):
        root = element("a", element("b", element("c")), element("d"))
        assert [e.tag for e in root.iter()] == ["a", "b", "c", "d"]

    def test_descendants_filters_by_tag(self):
        root = element("a", element("b", element("b")), element("c"))
        assert len(list(root.descendants("b"))) == 2
        assert len(list(root.descendants())) == 3

    def test_string_value_concatenates_descendant_text(self):
        root = element("a", "x", element("b", "y"), "z")
        assert root.string_value() == "xyz"

    def test_len_counts_children(self):
        root = element("a", element("b"), element("c"))
        assert len(root) == 2

    def test_count_elements(self):
        roots = [element("a", element("b")), element("c")]
        assert count_elements(roots) == 3


class TestParser:
    def test_simple_document(self):
        doc = parse("<a><b>hello</b></a>")
        assert doc.root.tag == "a"
        assert doc.root.find("b").text == "hello"

    def test_declaration(self):
        doc = parse('<?xml version="1.1" encoding="latin-1"?><a/>')
        assert doc.version == "1.1"
        assert doc.encoding == "latin-1"

    def test_attributes(self):
        doc = parse("""<a x="1" y='two "quoted"'/>""")
        assert doc.root.attributes == {"x": "1", "y": 'two "quoted"'}

    def test_entities(self):
        doc = parse("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert doc.root.text == "<>&'\""

    def test_numeric_character_references(self):
        doc = parse("<a>&#65;&#x42;</a>")
        assert doc.root.text == "AB"

    def test_self_closing(self):
        doc = parse("<a><b/><c/></a>")
        assert [c.tag for c in doc.root.children] == ["b", "c"]

    def test_comments_and_pis_skipped(self):
        doc = parse("<!-- top --><?pi data?><a><!-- in -->text<?x?></a>")
        assert doc.root.text == "text"

    def test_cdata(self):
        doc = parse("<a><![CDATA[<not>parsed&]]></a>")
        assert doc.root.text == "<not>parsed&"

    def test_doctype_skipped(self):
        doc = parse('<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x</a>')
        assert doc.root.text == "x"

    def test_mixed_content_preserved(self):
        doc = parse("<a>one<b>two</b>three</a>")
        assert doc.root.text == "onethree"
        assert doc.root.string_value() == "onetwothree"

    def test_whitespace_in_end_tag(self):
        doc = parse("<a>x</a >")
        assert doc.root.text == "x"

    @pytest.mark.parametrize("bad", [
        "<a><b></a>",          # mismatched tags
        "<a>",                  # unterminated
        "<a x=1/>",            # unquoted attribute
        "<a x='1' x='2'/>",    # duplicate attribute
        "<a>&nosuch;</a>",     # unknown entity
        "<a/><b/>",            # two roots
        "just text",            # no element
        "<a></a>trailing<b/>", # content after root
        "<a>&#xZZ;</a>",       # bad char ref
    ])
    def test_malformed_raises(self, bad):
        with pytest.raises(XMLParseError):
            parse(bad)

    def test_error_carries_location(self):
        with pytest.raises(XMLParseError) as excinfo:
            parse("<a>\n  <b></c>\n</a>")
        assert excinfo.value.line == 2


class TestWriter:
    def test_roundtrip_simple(self):
        text = '<a x="1"><b>hi &amp; bye</b><c/></a>'
        doc = parse(text)
        assert serialize(doc, declaration=False) == text

    def test_escapes_attribute_quotes(self):
        el = Element("a", {"x": 'say "hi" & <go>'})
        out = serialize(el)
        assert "&quot;" in out and "&amp;" in out and "&lt;" in out
        assert parse(out).root.attributes["x"] == 'say "hi" & <go>'

    def test_declaration_emitted(self):
        doc = Document(Element("a"))
        assert serialize(doc).startswith('<?xml version="1.0"')

    def test_pretty_print_indents(self):
        root = element("a", element("b", "x"), element("c"))
        out = serialize(root, indent=2)
        assert "\n  <b>" in out

    def test_roundtrip_mixed_content(self):
        text = "<a>one<b>two</b>three</a>"
        assert serialize(parse(text), declaration=False) == text
