"""Statistics: collect once at the finest granularity, derive everywhere.

Paper Section 4.1: "The search always starts with a fully split schema
... Such a schema allows statistics to be collected on the finest
granularity. Later, any generated schema can be transformed from the
fully split schema by only using merge transformations. Thus, the
statistics of such schema can be accurately derived."

We collect, per schema-tree node, directly from the XML data:

* instance counts of every TAG node,
* value distributions (:class:`~repro.engine.ColumnStats`) of every leaf,
* per-REPETITION cardinality histograms (for repetition-split sizing,
  Section 4.6),
* per-TAG *joint* presence signatures over the optional/choice features
  in its non-repeated region — exactly the statistic needed to size the
  partitions of any (merged) implicit-union candidate exactly, which the
  paper notes is hard to infer in the other direction.

:func:`derive_table_stats` then produces engine ``TableStats`` for the
tables of *any* mapping without touching the data again.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..engine import ColumnStats, TableStats
from ..errors import MappingError
from ..xmlkit import Document, Element
from ..xsd import NodeKind, SchemaNode, SchemaTree
from .relschema import (BranchCondition, MappedSchema, PresenceCondition)

# Signature atoms: ("opt", option_id) and ("choice", choice_id, branch).
Signature = frozenset


@dataclass
class CollectedStats:
    """Finest-granularity statistics for one schema tree + data set."""

    total_elements: int = 0
    instance_counts: dict[int, int] = field(default_factory=dict)
    leaf_stats: dict[int, ColumnStats] = field(default_factory=dict)
    cardinality: dict[int, Counter] = field(default_factory=dict)
    joint: dict[int, Counter] = field(default_factory=dict)

    def instances(self, node_id: int) -> int:
        return self.instance_counts.get(node_id, 0)

    def occurrences_at_least(self, rep_id: int, k: int) -> int:
        """#parent instances with >= k occurrences under the repetition."""
        hist = self.cardinality.get(rep_id, Counter())
        return sum(freq for count, freq in hist.items() if count >= k)

    def overflow_count(self, rep_id: int, k: int) -> int:
        """Total occurrences beyond the first ``k`` per parent instance."""
        hist = self.cardinality.get(rep_id, Counter())
        return sum((count - k) * freq for count, freq in hist.items()
                   if count > k)

    def total_occurrences(self, rep_id: int) -> int:
        hist = self.cardinality.get(rep_id, Counter())
        return sum(count * freq for count, freq in hist.items())

    def suggest_split_count(self, rep_id: int, cmax: int = 5,
                            coverage: float = 0.80) -> int | None:
        """Paper Section 4.6: smallest k <= cmax covering ``coverage`` of
        instances; None when the cardinality distribution is not skewed
        enough for repetition split to pay off."""
        hist = self.cardinality.get(rep_id)
        if not hist:
            return None
        total = sum(hist.values())
        max_card = max(hist)
        if max_card <= cmax:
            return max_card if max_card >= 1 else None
        running = 0
        for k in range(0, cmax + 1):
            running += hist.get(k, 0)
            if k >= 1 and running / total >= coverage:
                return k
        if hist.get(0, 0) + sum(f for c, f in hist.items()
                                if 1 <= c <= cmax) >= coverage * total:
            return cmax
        return None


# ----------------------------------------------------------------------
# Collection
# ----------------------------------------------------------------------


class _Collector:
    def __init__(self, tree: SchemaTree):
        self.tree = tree
        self.total_elements = 0
        self.instance_counts: Counter = Counter()
        self.leaf_values: dict[int, list] = {}
        self.cardinality: dict[int, Counter] = {}
        self.joint: dict[int, Counter] = {}
        self._region_reps: dict[int, list[int]] = {}

    def run(self, docs) -> CollectedStats:
        if isinstance(docs, (Document, Element)):
            docs = [docs]
        for doc in docs:
            root = doc.root if isinstance(doc, Document) else doc
            if root.tag != self.tree.root.name:
                raise MappingError(
                    f"document root <{root.tag}> does not match schema")
            self._visit_tag(root, self.tree.root, collectors_above=[])
        leaf_stats = {}
        for leaf_id, values in self.leaf_values.items():
            leaf = self.tree.node(leaf_id)
            base = self.tree.leaf_base_type(leaf)  # element or attribute
            typed = [_coerce(base, v) for v in values]
            leaf_stats[leaf_id] = ColumnStats.from_values(
                typed, is_string=(base.value == "string"))
        return CollectedStats(
            total_elements=self.total_elements,
            instance_counts=dict(self.instance_counts),
            leaf_stats=leaf_stats,
            cardinality=self.cardinality,
            joint=self.joint,
        )

    # ------------------------------------------------------------------
    def _visit_tag(self, element: Element, node: SchemaNode,
                   collectors_above: list[set]) -> None:
        self.total_elements += 1
        self.instance_counts[node.node_id] += 1
        for attr in self.tree.attributes_of(node):
            value = element.attributes.get(attr.name)
            if value is not None:
                self.instance_counts[attr.node_id] += 1
                self.leaf_values.setdefault(attr.node_id, []).append(value)
        if self.tree.is_leaf_element(node):
            self.leaf_values.setdefault(node.node_id, []).append(element.text)
            return
        signature: set = set()
        collectors = collectors_above + [signature]
        rep_counts: Counter = Counter()
        dispatch = self._dispatch(node)
        # Iterate the element itself (not .children) so a lazy root's
        # child list is streamed, never materialized.
        for child in element:
            entry = dispatch.get(child.tag)
            if entry is None:
                raise MappingError(
                    f"unexpected element <{child.tag}> under "
                    f"<{element.tag}> while collecting statistics")
            child_node, optional_ids, choice_branch, rep_id = entry
            for target in collectors:
                for optional_id in optional_ids:
                    target.add(("opt", optional_id))
                if choice_branch is not None:
                    target.add(("choice",) + choice_branch)
            if rep_id is not None:
                rep_counts[rep_id] += 1
                self._visit_tag(child, child_node, collectors_above=[])
            else:
                self._visit_tag(child, child_node, collectors)
        for rep_id in self._region_reps[node.node_id]:
            self.cardinality.setdefault(rep_id, Counter())[
                rep_counts.get(rep_id, 0)] += 1
        self.joint.setdefault(node.node_id, Counter())[
            frozenset(signature)] += 1

    def _dispatch(self, node: SchemaNode):
        """tag name -> (child TAG, crossed option ids, choice branch, rep)."""
        cached = getattr(self, "_dispatch_cache", None)
        if cached is None:
            cached = self._dispatch_cache = {}
        if node.node_id in cached:
            return cached[node.node_id]
        tree = self.tree
        out: dict[str, tuple] = {}
        reps: list[int] = []

        def walk(current: SchemaNode, optional_ids: frozenset,
                 choice_branch, rep_id: int | None) -> None:
            for child in tree.children(current):
                if child.kind == NodeKind.SIMPLE:
                    continue
                if child.kind == NodeKind.TAG:
                    out[child.name] = (child, optional_ids, choice_branch,
                                       rep_id)
                elif child.kind == NodeKind.OPTION:
                    walk(child, optional_ids | {child.node_id},
                         choice_branch, rep_id)
                elif child.kind == NodeKind.CHOICE:
                    for index, branch in enumerate(tree.children(child)):
                        if branch.kind == NodeKind.TAG:
                            out[branch.name] = (branch, optional_ids,
                                                (child.node_id, index), rep_id)
                        else:
                            walk_single(branch, optional_ids,
                                        (child.node_id, index), rep_id)
                elif child.kind == NodeKind.SEQUENCE:
                    walk(child, optional_ids, choice_branch, rep_id)
                elif child.kind == NodeKind.REPETITION:
                    reps.append(child.node_id)
                    walk(child, optional_ids, choice_branch, child.node_id)

        def walk_single(current, optional_ids, choice_branch, rep_id):
            walk(current, optional_ids, choice_branch, rep_id)

        walk(node, frozenset(), None, None)
        self._region_reps[node.node_id] = reps
        cached[node.node_id] = out
        return out


def _coerce(base, value):
    from ..xsd import BaseType
    try:
        if base == BaseType.INTEGER:
            return int(str(value).strip())
        if base == BaseType.DECIMAL:
            return float(str(value).strip())
    except ValueError:
        return None
    return value


def collect_statistics(tree: SchemaTree, docs) -> CollectedStats:
    """Collect finest-granularity statistics from documents."""
    return _Collector(tree).run(docs)


# ----------------------------------------------------------------------
# Derivation
# ----------------------------------------------------------------------


def _uniform_int_stats(rows: int, lo: int, hi: int,
                       n_distinct: int | None = None) -> ColumnStats:
    if rows == 0:
        return ColumnStats(row_count=0)
    hi = max(hi, lo)
    buckets = min(32, max(1, rows))
    boundaries = [lo + round((hi - lo) * (b + 1) / buckets)
                  for b in range(buckets)]
    return ColumnStats(
        row_count=rows, null_count=0,
        n_distinct=n_distinct if n_distinct is not None else rows,
        min_value=lo, max_value=hi,
        boundaries=boundaries, bucket_rows=rows / buckets)


def _signature_matches(signature: Signature, conditions) -> bool:
    for condition in conditions:
        if isinstance(condition, BranchCondition):
            if ("choice", condition.choice_id,
                    condition.branch_index) not in signature:
                return False
        elif isinstance(condition, PresenceCondition):
            present = any(("opt", oid) in signature
                          for oid in condition.optional_ids)
            if present != condition.present:
                return False
    return True


class StatsDeriver:
    """Derives per-table statistics for any mapping from collected stats."""

    def __init__(self, collected: CollectedStats):
        self.collected = collected

    # ------------------------------------------------------------------
    def derive(self, schema: MappedSchema) -> dict[str, TableStats]:
        out: dict[str, TableStats] = {}
        for group in schema.groups.values():
            for partition in group.partitions:
                out[partition.table_name] = self._partition_stats(
                    schema, group, partition)
        return out

    # ------------------------------------------------------------------
    def _partition_stats(self, schema, group, partition) -> TableStats:
        tree = schema.tree
        collected = self.collected
        rows = 0
        parent_rows = 0
        leaf_owner = None
        for owner_id in group.owner_ids:
            node = tree.node(owner_id)
            rep = tree.enclosing_repetition(node)
            split = (schema.mapping.split_map.get(rep.node_id)
                     if rep is not None else None)
            if tree.is_leaf_element(node) and split is not None:
                # Overflow table of a repetition split.
                rows += collected.overflow_count(rep.node_id, split)
            else:
                rows += self._matching_instances(owner_id,
                                                 partition.conditions)
            leaf_owner = node
            parent_owner = schema.mapping.parent_owner_of(owner_id)
            if parent_owner is not None:
                parent_rows += collected.instances(parent_owner)

        stats = TableStats(row_count=rows)
        for name in partition.column_names:
            spec = group.column(name)
            stats.columns[name] = self._column_stats(
                schema, group, partition, spec, rows, parent_rows)
        return stats

    def _matching_instances(self, owner_id: int, conditions) -> int:
        collected = self.collected
        if not conditions:
            return collected.instances(owner_id)
        joint = collected.joint.get(owner_id)
        if joint is None:
            return 0
        return sum(freq for signature, freq in joint.items()
                   if _signature_matches(signature, conditions))

    # ------------------------------------------------------------------
    def _column_stats(self, schema, group, partition, spec, rows,
                      parent_rows) -> ColumnStats:
        collected = self.collected
        if spec.name == "ID":
            return _uniform_int_stats(rows, 1, max(collected.total_elements, 1))
        if spec.name == "PID":
            return _uniform_int_stats(
                rows, 1, max(collected.total_elements, 1),
                n_distinct=min(max(parent_rows, 1), max(rows, 1)))
        assert spec.leaf_id is not None
        source = collected.leaf_stats.get(spec.leaf_id)
        if source is None:
            return ColumnStats(row_count=rows, null_count=rows)
        if spec.occurrence is not None:
            # Repetition-split column name_i: non-null iff the parent has
            # >= i occurrences.
            leaf = schema.tree.node(spec.leaf_id)
            rep = schema.tree.enclosing_repetition(leaf)
            assert rep is not None
            non_null = collected.occurrences_at_least(
                rep.node_id, spec.occurrence)
            non_null = min(non_null, rows)
            return source.scaled(rows, new_null_count=rows - non_null)
        # Plain column: presence governed by the leaf's optional/choice
        # ancestors within the owner region.
        non_null = self._leaf_presence(schema, group, partition,
                                       spec.leaf_id, rows)
        return source.scaled(rows, new_null_count=max(0, rows - non_null))

    def _leaf_presence(self, schema, group, partition, leaf_id: int,
                       rows: int) -> int:
        """#rows of the partition where the leaf column is non-null."""
        tree = schema.tree
        collected = self.collected
        owner_id = group.owner_ids[0]
        if tree.is_leaf_element(tree.node(owner_id)):
            return rows  # value column of a leaf's own table
        # Governing features on the path owner -> leaf.
        features: list = []
        current = tree.node(leaf_id)
        while current is not None and current.node_id != owner_id:
            parent = tree.parent(current)
            if parent is None:
                break
            if parent.kind == NodeKind.OPTION:
                features.append(("opt", parent.node_id))
            elif parent.kind == NodeKind.CHOICE:
                index = parent.child_ids.index(current.node_id)
                features.append(("choice", parent.node_id, index))
            current = parent
        if not features:
            # No optional/choice constraints on the path: presence is
            # governed purely by instance counts (covers attributes and
            # leaves of always-present elements).
            owner_count = sum(collected.instances(o)
                              for o in group.owner_ids) or 1
            ratio = collected.instances(leaf_id) / owner_count
            return int(round(rows * min(1.0, ratio)))
        total = 0
        joint_total = 0
        joint = collected.joint.get(owner_id, Counter())
        for signature, freq in joint.items():
            if not _signature_matches(signature, partition.conditions):
                continue
            joint_total += freq
            if all(f in signature for f in features):
                total += freq
        if joint_total == 0:
            # Fallback: global presence ratio.
            owner_count = sum(collected.instances(o)
                              for o in group.owner_ids) or 1
            ratio = collected.instances(leaf_id) / owner_count
            return int(round(rows * min(1.0, ratio)))
        return int(round(rows * total / joint_total))


def derive_table_stats(schema: MappedSchema,
                       collected: CollectedStats) -> dict[str, TableStats]:
    """Convenience wrapper around :class:`StatsDeriver`."""
    return StatsDeriver(collected).derive(schema)
