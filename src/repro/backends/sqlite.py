"""A real-DBMS execution backend on stdlib ``sqlite3``.

All of the machinery — streaming bulk load, the crash-safe load
manifest, physical-design DDL, per-thread connections, exclusive
timing — lives in :class:`~repro.backends.dbms.RelationalBackend`;
this module supplies the sqlite3 driver hooks:

* **Per-thread connections.** ``sqlite3`` connections are not
  thread-safe objects, so every thread gets its own. In-memory
  databases use a uniquely named shared-cache URI
  (``file:...?mode=memory&cache=shared``) so the per-thread
  connections all see the data the primary connection loaded;
  file-backed databases can be reopened read-only
  (``read_only=True`` opens every connection with ``mode=ro``), which
  is what a long-lived query service wants — serving connections
  physically cannot write.
* **Journaling.** WAL on file-backed databases keeps bulk-load
  transactions cheap and lets read-only serving connections coexist
  with a writer; in-memory databases use MEMORY journaling.
* **Busy classification.** ``SQLITE_BUSY``/``SQLITE_LOCKED`` map to
  the retryable :class:`~repro.backends.dbms.BackendBusyError` — under
  WAL a busy reader/writer collision is momentary.
* **Statistics.** ``ANALYZE`` runs after configuration DDL so the
  planner sees index cardinalities.

The SQL itself comes from :data:`repro.backends.dialect.SQLITE` — see
that module for the affinity mapping (DECIMAL→REAL, BOOLEAN→INTEGER,
DATE→TEXT) and docs/backends.md for how it diverges from DuckDB's.
"""

from __future__ import annotations

import itertools
import os
import sqlite3

from ..obs import NullTracer, Tracer
from ..resilience import active_fault_plan
from .base import timed_runs
from .dbms import (DEFAULT_LOAD_BATCH, DEFAULT_TXN_ROWS, MANIFEST_TABLE,
                   BackendBusyError, BackendError, LoadManifest,
                   RelationalBackend)
from .dialect import SQLITE

__all__ = ["SQLiteBackend", "BackendError", "BackendBusyError",
           "LoadManifest", "MANIFEST_TABLE",
           "DEFAULT_LOAD_BATCH", "DEFAULT_TXN_ROWS"]


#: Distinguishes the shared-cache URIs of concurrently live in-memory
#: backends within one process (the pid covers forked workers).
_MEMORY_SERIAL = itertools.count(1)


class SQLiteBackend(RelationalBackend):
    """:class:`~repro.backends.base.SQLBackend` over stdlib sqlite3."""

    name = "sqlite"
    dialect = SQLITE
    post_ddl = ("ANALYZE",)
    _driver_error = (sqlite3.Error,)

    def __init__(self, path: str = ":memory:",
                 tracer: Tracer | NullTracer | None = None,
                 read_only: bool = False):
        if path == ":memory:":
            # A plain ":memory:" connection is private to itself — a
            # second (per-thread) connection would see an empty
            # database. A named shared-cache URI gives every
            # connection of this backend the same in-memory database.
            self._uri = (f"file:repro-sqlite-{os.getpid()}-"
                         f"{next(_MEMORY_SERIAL)}?mode=memory&cache=shared")
        else:
            base = f"file:{path}"
            self._uri = f"{base}?mode=ro" if read_only else base
        self._worker_uri = self._uri
        super().__init__(path=path, tracer=tracer, read_only=read_only)

    # ------------------------------------------------------------------
    # Driver hooks
    # ------------------------------------------------------------------
    def _open(self, uri: str) -> sqlite3.Connection:
        active_fault_plan().maybe_raise("backend.connect")
        try:
            # check_same_thread=False so close() can close every
            # connection from one thread; each connection is otherwise
            # used only by the thread that opened it.
            return sqlite3.connect(uri, uri=True, check_same_thread=False)
        except sqlite3.Error as exc:
            raise BackendError(f"cannot open {uri!r}: {exc}") from exc

    def _open_primary(self) -> sqlite3.Connection:
        return self._open(self._uri)

    def _open_worker(self) -> sqlite3.Connection:
        return self._open(self._worker_uri)

    def _configure_primary(self) -> None:
        self.connection.execute("PRAGMA synchronous = OFF")
        if self.path == ":memory:":
            self.connection.execute("PRAGMA journal_mode = MEMORY")
        elif not self.read_only:
            # WAL keeps bulk-load transactions cheap on file-backed
            # databases and lets read-only serving connections coexist
            # with a writer. (Read-only opens cannot switch modes.)
            self.connection.execute("PRAGMA journal_mode = WAL")

    def _is_busy(self, exc: BaseException) -> bool:
        if not isinstance(exc, sqlite3.OperationalError):
            return False
        message = str(exc).lower()
        return "locked" in message or "busy" in message

    def _timed_runs(self, run, repeat: int, warmup: int):
        # Resolved through this module's namespace so tests can
        # monkeypatch ``repro.backends.sqlite.timed_runs``.
        return timed_runs(run, repeat=repeat, warmup=warmup)

    # ------------------------------------------------------------------
    # Catalog introspection
    # ------------------------------------------------------------------
    def _table_on_disk(self, name: str) -> bool:
        try:
            row = self.connection.execute(
                "SELECT 1 FROM sqlite_master WHERE type = 'table' "
                "AND name = ?", (name,)).fetchone()
        except sqlite3.Error as exc:  # pragma: no cover - defensive
            raise BackendError(
                f"inspecting sqlite_master failed: {exc}") from exc
        return row is not None

    def table_names_on_disk(self) -> list[str]:
        rows = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name NOT LIKE 'sqlite_%' ORDER BY name").fetchall()
        return [name for (name,) in rows]

    def table_columns(self, name: str) -> list[tuple[str, str]]:
        quoted = self.dialect.quote(name)
        rows = self.connection.execute(
            f"PRAGMA table_info({quoted})").fetchall()
        return [(row[1], str(row[2]).upper()) for row in rows]

    def index_names(self) -> list[str]:
        # sqlite_autoindex_* entries back PRIMARY KEY / UNIQUE
        # constraints, not user DDL.
        rows = self.connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name NOT LIKE 'sqlite_%' ORDER BY name").fetchall()
        return [name for (name,) in rows]
