"""SQLite dialect: render ``repro.sqlast`` trees and catalog DDL.

``str(query)`` already yields SQL that SQLite mostly accepts, but the
dialect adapter is deliberately explicit about everything where "mostly"
is not good enough:

* **Identifier quoting** — every table/column/alias is ``"quoted"`` so
  schema-derived names can never collide with SQLite keywords.
* **Type affinity** — the engine stores DATE values as Python strings
  and BOOLEAN as 0/1 integers, so DATE maps to TEXT affinity (SQLite's
  own NUMERIC affinity for ``DATE`` would coerce year-like strings to
  integers and re-order mixed columns) and BOOLEAN to INTEGER.
  DECIMAL maps to REAL, VARCHAR to TEXT.
* **Covering indexes** — SQLite has no ``INCLUDE`` clause; included
  columns are appended to the key so the index still covers the query.
* **Materialized structures** — join views become populated tables
  (``CREATE TABLE ... AS SELECT``), matching how the engine's size and
  cost accounting treats them.

Ordering semantics line up without translation work: SQLite orders
``NULL < numeric < text`` ascending, exactly the engine's
``encode_key`` order, and ``ORDER BY <position>`` after ``UNION ALL``
is supported natively.
"""

from __future__ import annotations

from ..engine import Index, JoinViewDefinition, SQLType, Table
from ..errors import ReproError
from ..sqlast import (And, BoolExpr, ColumnRef, Comparison, Exists, IsNull,
                      Literal, Or, Query, Scalar, Select, SelectItem,
                      TableRef)


class DialectError(ReproError):
    """An AST node the dialect cannot render."""


def quote_identifier(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


SQLITE_TYPES = {
    SQLType.INTEGER: "INTEGER",
    SQLType.DECIMAL: "REAL",
    SQLType.VARCHAR: "TEXT",
    SQLType.DATE: "TEXT",      # engine stores dates as strings
    SQLType.BOOLEAN: "INTEGER",  # engine compares/sorts them numerically
}


def sqlite_type(sql_type: SQLType) -> str:
    return SQLITE_TYPES[sql_type]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


def render_scalar(expr: Scalar) -> str:
    if isinstance(expr, Literal):
        # Literal.__str__ already renders SQLite-compatible constants
        # (doubled quotes, 1/0 booleans, repr'd finite floats, NULL).
        return str(expr)
    if isinstance(expr, ColumnRef):
        column = quote_identifier(expr.column)
        if expr.table:
            return f"{quote_identifier(expr.table)}.{column}"
        return column
    raise DialectError(f"cannot render scalar {expr!r}")


def render_condition(expr: BoolExpr) -> str:
    if isinstance(expr, Comparison):
        return (f"{render_scalar(expr.left)} {expr.op.value} "
                f"{render_scalar(expr.right)}")
    if isinstance(expr, IsNull):
        suffix = "IS NOT NULL" if expr.negated else "IS NULL"
        return f"{render_scalar(expr.operand)} {suffix}"
    if isinstance(expr, And):
        return " AND ".join(f"({render_condition(i)})" for i in expr.items)
    if isinstance(expr, Or):
        return " OR ".join(f"({render_condition(i)})" for i in expr.items)
    if isinstance(expr, Exists):
        return f"EXISTS ({render_select(expr.subquery)})"
    raise DialectError(f"cannot render condition {expr!r}")


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


def _render_table_ref(ref: TableRef) -> str:
    table = quote_identifier(ref.table)
    if ref.alias and ref.alias != ref.table:
        return f"{table} AS {quote_identifier(ref.alias)}"
    return table


def _render_item(item: SelectItem) -> str:
    rendered = render_scalar(item.expr)
    if item.alias:
        return f"{rendered} AS {quote_identifier(item.alias)}"
    return rendered


def render_select(select: Select) -> str:
    parts = ["SELECT " + ", ".join(_render_item(i) for i in select.items)]
    parts.append(
        "FROM " + ", ".join(_render_table_ref(t) for t in select.from_tables))
    if select.where is not None:
        parts.append("WHERE " + render_condition(select.where))
    return " ".join(parts)


def render_query(query: Query) -> str:
    """One translated query as a single SQLite statement."""
    body = " UNION ALL ".join(render_select(s) for s in query.selects)
    if query.order_by:
        body += " ORDER BY " + ", ".join(str(p) for p in query.order_by)
    return body


# ----------------------------------------------------------------------
# DDL / DML
# ----------------------------------------------------------------------


def create_table_sql(table: Table) -> str:
    columns = []
    for column in table.columns:
        decl = f"{quote_identifier(column.name)} {sqlite_type(column.sql_type)}"
        if table.primary_key == column.name:
            decl += " PRIMARY KEY"
        columns.append(decl)
    return (f"CREATE TABLE {quote_identifier(table.name)} "
            f"({', '.join(columns)})")


def insert_sql(table: Table) -> str:
    names = ", ".join(quote_identifier(c.name) for c in table.columns)
    marks = ", ".join("?" for _ in table.columns)
    return (f"INSERT INTO {quote_identifier(table.name)} ({names}) "
            f"VALUES ({marks})")


def create_index_sql(index: Index) -> str:
    # No INCLUDE in SQLite: appending the included columns to the key
    # preserves the covering property (at a modest key-width cost).
    columns = ", ".join(quote_identifier(c) for c in index.all_columns)
    return (f"CREATE INDEX {quote_identifier(index.name)} "
            f"ON {quote_identifier(index.table_name)} ({columns})")


def create_view_table_sql(name: str, definition: JoinViewDefinition) -> str:
    """A join view, materialized as a populated table."""
    items = []
    for view_col, (source_table, source_col) in definition.columns:
        alias = "P" if source_table == definition.parent_table else "C"
        items.append(f"{alias}.{quote_identifier(source_col)} "
                     f"AS {quote_identifier(view_col)}")
    return (
        f"CREATE TABLE {quote_identifier(name)} AS "
        f"SELECT {', '.join(items)} "
        f"FROM {quote_identifier(definition.parent_table)} AS P, "
        f"{quote_identifier(definition.child_table)} AS C "
        f"WHERE C.{quote_identifier(definition.child_fk_column)} = P.\"ID\"")
