"""XPath-to-SQL translation (sorted outer union)."""

from .xpath_to_sql import Translator, resolve_steps, translate_xpath

__all__ = ["Translator", "translate_xpath", "resolve_steps"]
