"""Shared fixtures for the paper-reproduction benchmarks.

Scale knobs (environment variables):

* ``REPRO_BENCH_SCALE``   — publications/movies per data set (default 1200)
* ``REPRO_BENCH_QUERIES`` — queries per small workload (default 10)
* ``REPRO_BENCH_NAIVE``   — set to ``0`` to skip Naive-Greedy runs
* ``REPRO_BENCH_TRACE``   — set to ``0`` to disable span tracing

Tracing (docs/observability.md) is on by default: an ambient
:class:`repro.obs.Tracer` is installed around every benchmark and its
aggregated per-phase summary (advisor calls, optimizer calls, cache hit
ratios, time per phase) is printed after the test, so the Fig. 5/7/8/9
speed-up claims are auditable breakdowns rather than single wall-time
numbers.

The defaults keep the full benchmark suite in the tens of minutes;
raising the scale sharpens the ratios (the paper's ran at 100 MB) at the
price of run time. All benchmark output tables are printed uncaptured so
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` records
the reproduced figures.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import DatasetBundle
from repro.obs import Tracer, set_tracer, summarize

SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "1200"))
QUERIES = int(os.environ.get("REPRO_BENCH_QUERIES", "10"))
RUN_NAIVE = os.environ.get("REPRO_BENCH_NAIVE", "1") != "0"
TRACE = os.environ.get("REPRO_BENCH_TRACE", "1") != "0"


@pytest.fixture(scope="session")
def dblp_bundle():
    return DatasetBundle.dblp(scale=SCALE)


@pytest.fixture(scope="session")
def movie_bundle():
    return DatasetBundle.movie(scale=SCALE)


@pytest.fixture
def emit(capsys):
    """Print a report table to the real terminal (uncaptured)."""
    def _emit(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)
    return _emit


@pytest.fixture(autouse=True)
def ambient_trace(request, capsys):
    """Trace every benchmark and attach the per-phase summary.

    Installs an ambient tracer (picked up by every search/advisor
    constructed without an explicit one) for the duration of the test
    and prints the aggregated span summary uncaptured afterwards.
    """
    if not TRACE:
        yield None
        return
    tracer = Tracer()
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(None)
    if tracer.spans:
        with capsys.disabled():
            print(f"\ntrace summary — {request.node.name}")
            print(summarize(tracer))


@pytest.fixture(scope="session")
def comparison_cache():
    """Figs. 4-6 share one expensive comparison run per data set."""
    return {}


def build_comparison(bundle, cache, emit=None):
    """Run (or fetch) the Fig. 4-6 comparison for one data set.

    When tracing is on, each (algorithm, workload) run is traced
    individually; pass ``emit`` to print the per-run trace report
    alongside the figure tables.
    """
    from repro.experiments import compare_algorithms

    if bundle.name not in cache:
        generator = bundle.workload_generator(seed=41)
        workloads = generator.standard_suite(QUERIES)
        if bundle.name == "DBLP":
            # The paper also runs 2x-size workloads on DBLP
            # (Naive-Greedy is skipped there, as in the paper).
            workloads += generator.standard_suite(QUERIES * 2)
        algorithms = ("greedy", "naive-greedy", "two-step") if RUN_NAIVE \
            else ("greedy", "two-step")
        cache[bundle.name] = compare_algorithms(
            bundle, workloads, algorithms=algorithms,
            naive_max_queries=QUERIES, trace=TRACE)
    result = cache[bundle.name]
    if emit is not None and TRACE:
        report = result.trace_report()
        if report:
            emit(report)
    return result
