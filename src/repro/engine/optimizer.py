"""Cost-based query optimizer.

For every SELECT branch the optimizer:

1. classifies WHERE conjuncts into per-alias filters, equi-join
   predicates, and EXISTS probes;
2. considers replacing a parent/child join with a matching materialized
   view (column-coverage + join-shape match);
3. picks an access path per alias — sequential scan, index seek, or
   covering (index-only) seek — using histogram selectivities;
4. enumerates left-deep join orders, choosing per edge between hash
   join, index-nested-loop join, and block nested-loop join;
5. compiles residual predicates and output expressions.

The optimizer works identically over materialized and stats-only
catalogs; with ``what_if`` additional hypothetical indexes/views can be
costed without being built, which is how the tuning advisor evaluates
candidate configurations (and how the design search evaluates candidate
mappings without loading data).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

from ..errors import PlanError
from ..sqlast import (And, BoolExpr, ColumnRef, Comparison, ComparisonOp,
                      Exists, IsNull, Literal, Or, Query, Select)
from .cost import (CPU_OPERATOR_COST, CPU_TUPLE_COST, HASH_TUPLE_COST,
                   RANDOM_PAGE_COST, SEQ_PAGE_COST, SORT_FACTOR)
from .expressions import (Environment, compile_predicate, compile_scalar,
                          referenced_columns)
from .index import Index
from .plans import (HashJoin, IndexNestedLoopJoin, IndexSeek, NestedLoopJoin,
                    PlanNode, Project, Runtime, SeqScan, SortPlan,
                    UnionAllPlan)
from .schema import Catalog, Table
from .statistics import ColumnStats, StatisticsCatalog
from .types import PAGE_FILL_FACTOR, PAGE_SIZE

_DEFAULT_EQ_SEL = 0.005
_DEFAULT_RANGE_SEL = 0.30
_DEFAULT_NULL_SEL = 0.05

_RANGE_OPS = {
    ComparisonOp.LT: "<",
    ComparisonOp.LE: "<=",
    ComparisonOp.GT: ">",
    ComparisonOp.GE: ">=",
}


# ----------------------------------------------------------------------
# EXISTS probes
# ----------------------------------------------------------------------


class ExistsProbe:
    """A compiled EXISTS subquery, probed once per candidate row.

    Bound to a runtime before execution; probes either an index seek or
    a set of correlation keys materialized on first use.
    """

    def __init__(self, table_name: str, alias: str,
                 corr_column: str, corr_outer: ColumnRef,
                 index: Index | None,
                 local_predicate: Callable[[Environment], bool] | None,
                 resolve_outer: Callable[[ColumnRef], tuple[str, int]],
                 local_filter_expr: BoolExpr | None = None,
                 extra_key_values: tuple = ()):
        self.table_name = table_name
        self.alias = alias
        self.corr_column = corr_column
        self.corr_outer = corr_outer
        self.index = index
        self.local_predicate = local_predicate
        self.local_filter_expr = local_filter_expr
        self.extra_key_values = extra_key_values
        self._outer_fetch = compile_scalar(corr_outer, resolve_outer)
        self._runtime: Runtime | None = None
        self._key_set: set | None = None

    def bind(self, runtime: Runtime) -> None:
        self._runtime = runtime
        self._key_set = None

    def objects_used(self) -> set[str]:
        if self.index is not None:
            return {self.index.name}
        return {self.table_name}

    def __call__(self, env: Environment) -> bool:
        runtime = self._runtime
        if runtime is None:
            raise PlanError("EXISTS probe executed without bind()")
        outer_value = self._outer_fetch(env)
        if outer_value is None:
            return False
        if self.index is not None:
            table = runtime.table(self.table_name)
            runtime.counter.charge_random_pages(self.index.height(table))
            key = (outer_value,) + self.extra_key_values
            for _, position in self.index.tree.range_scan(key, key):
                runtime.counter.charge_tuples(1)
                if self.local_predicate is None:
                    return True
                if self.local_predicate({self.alias: table.rows[position]}):
                    return True
            return False
        if self._key_set is None:
            table = runtime.table(self.table_name)
            runtime.counter.charge_seq_pages(table.page_count)
            corr_pos = table.column_position(self.corr_column)
            keys = set()
            for row in table.rows or ():
                runtime.counter.charge_tuples(1)
                if self.local_predicate is None or \
                        self.local_predicate({self.alias: row}):
                    keys.add(row[corr_pos])
            self._key_set = keys
        runtime.counter.charge_operations(1)
        return outer_value in self._key_set


# ----------------------------------------------------------------------
# Planned query container
# ----------------------------------------------------------------------


@dataclass
class PlannedQuery:
    """The optimizer's output for one SQL query."""

    root: SortPlan | UnionAllPlan | Project
    est_cost: float
    probes: list[ExistsProbe] = field(default_factory=list)
    branch_plans: list[PlanNode] = field(default_factory=list)

    def objects_used(self) -> frozenset[str]:
        used = set(self.root.objects_used())
        for probe in self.probes:
            used |= probe.objects_used()
        return frozenset(used)

    def prepare(self, runtime: Runtime) -> None:
        for probe in self.probes:
            probe.bind(runtime)

    def explain(self) -> str:
        return self.root.explain()


# ----------------------------------------------------------------------
# Conjunct classification
# ----------------------------------------------------------------------


def _split_or_flatten(where: BoolExpr | None) -> list[BoolExpr]:
    if where is None:
        return []
    if isinstance(where, And):
        out: list[BoolExpr] = []
        for item in where.items:
            out.extend(_split_or_flatten(item))
        return out
    return [where]


def _aliases_of(expr: BoolExpr, default_alias_of: Callable[[str], str]) -> set[str]:
    refs = referenced_columns(expr)
    aliases = set()
    for ref in refs:
        aliases.add(ref.table or default_alias_of(ref.column))
    if isinstance(expr, Or):
        for item in expr.items:
            if isinstance(item, Exists):
                aliases |= _exists_outer_aliases(item, default_alias_of)
    if isinstance(expr, Exists):
        aliases |= _exists_outer_aliases(expr, default_alias_of)
    return aliases


def _exists_outer_aliases(expr: Exists,
                          default_alias_of: Callable[[str], str]) -> set[str]:
    inner_aliases = {t.name for t in expr.subquery.from_tables}
    out = set()
    for select_where in [expr.subquery.where]:
        if select_where is None:
            continue
        for ref in referenced_columns(select_where):
            alias = ref.table or default_alias_of(ref.column)
            if alias not in inner_aliases:
                out.add(alias)
    return out


# ----------------------------------------------------------------------
# The optimizer
# ----------------------------------------------------------------------


class Optimizer:
    def __init__(self, catalog: Catalog, stats: StatisticsCatalog,
                 what_if: bool = False,
                 extra_indexes: list[Index] | None = None,
                 extra_tables: list[Table] | None = None):
        self.catalog = catalog
        self.stats = stats
        self.what_if = what_if
        self.extra_indexes = list(extra_indexes or [])
        self.extra_tables = {t.name: t for t in (extra_tables or [])}

    # -- catalog helpers -------------------------------------------------
    def _table(self, name: str) -> Table:
        if name in self.extra_tables:
            return self.extra_tables[name]
        return self.catalog.table(name)

    def _indexes_on(self, table_name: str) -> list[Index]:
        indexes = [ix for ix in self.catalog.indexes.values()
                   if ix.table_name == table_name]
        indexes += [ix for ix in self.extra_indexes
                    if ix.table_name == table_name]
        if not self.what_if:
            indexes = [ix for ix in indexes if ix.is_built or ix.clustered]
        return indexes

    def _column_stats(self, table_name: str, column: str) -> ColumnStats | None:
        return self.stats.column(table_name, column)

    # -- public API ------------------------------------------------------
    def plan(self, query: Query) -> PlannedQuery:
        probes: list[ExistsProbe] = []
        branches: list[Project] = []
        branch_plans: list[PlanNode] = []
        total_cost = 0.0
        total_rows = 0.0
        for select in query.selects:
            project, cost, rows = self._plan_select(select, probes)
            branches.append(project)
            branch_plans.append(project)
            total_cost += cost
            total_rows += rows
        if len(branches) == 1:
            top: SortPlan | UnionAllPlan | Project = branches[0]
        else:
            top = UnionAllPlan(branches)
            top.est_rows = total_rows
            top.est_cost = total_cost
        if query.order_by:
            sort = SortPlan(top, query.order_by)
            sort.est_rows = total_rows
            sort_cost = (total_rows * math.log2(max(total_rows, 2))
                         * SORT_FACTOR)
            total_cost += sort_cost
            sort.est_cost = total_cost
            top = sort
        return PlannedQuery(root=top, est_cost=total_cost, probes=probes,
                            branch_plans=branch_plans)

    # -- per-select planning ----------------------------------------------
    def _plan_select(self, select: Select,
                     probes_out: list[ExistsProbe]) -> tuple[Project, float, float]:
        candidates: list[tuple[Project, float, float, list[ExistsProbe]]] = []
        direct = self._plan_select_over(select, None)
        candidates.append(direct)
        for view in self._candidate_views(select):
            try:
                candidates.append(self._plan_select_over(select, view))
            except PlanError:
                continue
        best = min(candidates, key=lambda c: c[1])
        probes_out.extend(best[3])
        return best[0], best[1], best[2]

    def _candidate_views(self, select: Select) -> list[Table]:
        views = [t for t in self.catalog.views()]
        views += [t for t in self.extra_tables.values() if t.is_view]
        if not self.what_if:
            views = [v for v in views if v.is_materialized]
        tables = {t.table for t in select.from_tables}
        out = []
        for view in views:
            assert view.view_def is not None
            if tables == {view.view_def.parent_table, view.view_def.child_table}:
                out.append(view)
        return out

    def _plan_select_over(self, select: Select, view: Table | None):
        """Plan one SELECT, optionally substituting a join view."""
        alias_tables: dict[str, Table] = {}
        for ref in select.from_tables:
            alias_tables[ref.name] = self._table(ref.table)

        def default_alias(column: str) -> str:
            owners = [a for a, t in alias_tables.items() if t.has_column(column)]
            if len(owners) != 1:
                raise PlanError(
                    f"column {column!r} is ambiguous or unknown in "
                    f"{list(alias_tables)}")
            return owners[0]

        conjuncts = _split_or_flatten(select.where)
        local: dict[str, list[BoolExpr]] = {a: [] for a in alias_tables}
        joins: list[tuple[str, str, str, str]] = []  # (aliasA, colA, aliasB, colB)
        exists_list: list[Exists] = []
        multi: list[BoolExpr] = []
        for conjunct in conjuncts:
            if isinstance(conjunct, Exists):
                exists_list.append(conjunct)
                continue
            if isinstance(conjunct, Comparison) and \
                    isinstance(conjunct.left, ColumnRef) and \
                    isinstance(conjunct.right, ColumnRef) and \
                    conjunct.op == ComparisonOp.EQ:
                la = conjunct.left.table or default_alias(conjunct.left.column)
                ra = conjunct.right.table or default_alias(conjunct.right.column)
                if la != ra:
                    joins.append((la, conjunct.left.column, ra,
                                  conjunct.right.column))
                    continue
            aliases = _aliases_of(conjunct, default_alias)
            if len(aliases) == 1:
                local[next(iter(aliases))].append(conjunct)
            else:
                multi.append(conjunct)

        # Column binding: (alias, column) -> (env_alias, position)
        if view is None:
            binding = {}
            for alias, table in alias_tables.items():
                for i, col in enumerate(table.columns):
                    binding[(alias, col.name)] = (alias, i)
        else:
            join_exempt = {(la, lc) for la, lc, _, _ in joins} | \
                          {(ra, rc) for _, _, ra, rc in joins}
            binding = self._view_binding(select, view, alias_tables,
                                         join_exempt)

        def resolve(ref: ColumnRef) -> tuple[str, int]:
            alias = ref.table or default_alias(ref.column)
            key = (alias, ref.column)
            if key not in binding:
                raise PlanError(f"cannot resolve column {ref}")
            return binding[key]

        probes: list[ExistsProbe] = []
        # EXISTS nested inside OR filters are compiled via a probe too.
        probe_map: dict[int, ExistsProbe] = {}

        def install_probe(exists: Exists) -> ExistsProbe:
            probe = self._build_probe(exists, default_alias, resolve)
            probes.append(probe)
            probe_map[id(exists)] = probe
            return probe

        def compile_bool(expr: BoolExpr) -> Callable[[Environment], bool]:
            if isinstance(expr, Exists):
                probe = probe_map.get(id(expr)) or install_probe(expr)
                return probe
            if isinstance(expr, And):
                parts = [compile_bool(e) for e in expr.items]
                return lambda env: all(p(env) for p in parts)
            if isinstance(expr, Or):
                parts = [compile_bool(e) for e in expr.items]
                return lambda env: any(p(env) for p in parts)
            return compile_predicate(expr, resolve)

        # Top-level EXISTS conjuncts attach to the alias they correlate with.
        exists_sel: dict[str, float] = {}
        for exists in exists_list:
            outer_aliases = _exists_outer_aliases(exists, default_alias)
            if len(outer_aliases) != 1:
                raise PlanError("EXISTS must correlate with exactly one alias")
            owner = next(iter(outer_aliases))
            local[owner].append(exists)
            exists_sel[owner] = exists_sel.get(owner, 1.0) * 0.5

        if view is None:
            plan, cost, rows = self._plan_joins(
                select, alias_tables, local, joins, multi,
                compile_bool, resolve)
        else:
            plan, cost, rows = self._plan_view_scan(
                select, view, alias_tables, local, joins, multi,
                compile_bool, binding)

        exprs = [compile_scalar(item.expr, resolve) for item in select.items]
        project = Project(plan, exprs)
        cost += rows * CPU_TUPLE_COST
        project.est_rows = rows
        project.est_cost = cost
        return project, cost, rows, probes

    # ------------------------------------------------------------------
    # View substitution
    # ------------------------------------------------------------------
    def _view_binding(self, select: Select, view: Table,
                      alias_tables: dict[str, Table],
                      join_exempt: set[tuple[str, str]] = frozenset()) -> dict:
        assert view.view_def is not None
        source_of = {name: src for name, src in view.view_def.columns}
        table_alias = {table.name: alias
                       for alias, table in alias_tables.items()}
        binding: dict[tuple[str, str], tuple[str, int]] = {}
        for position, col in enumerate(view.columns):
            # The view's own columns are addressable under the "@view"
            # alias (used by filters rewritten onto the view).
            binding[("@view", col.name)] = ("@view", position)
            src = source_of.get(col.name)
            if src is None:
                continue
            src_table, src_col = src
            alias = table_alias.get(src_table)
            if alias is not None:
                binding[(alias, src_col)] = ("@view", position)
        # Verify every referenced column of the select is bound; the
        # join columns implied by the view definition are exempt.
        needed = {(r.table, r.column) for r in self._select_column_refs(select)}
        for alias, column in needed:
            key = (alias or self._owner_alias(column, alias_tables), column)
            if key in join_exempt:
                continue
            if key not in binding:
                raise PlanError(
                    f"view {view.name!r} does not cover column {key}")
        return binding

    @staticmethod
    def _owner_alias(column: str, alias_tables: dict[str, Table]) -> str:
        owners = [a for a, t in alias_tables.items() if t.has_column(column)]
        if len(owners) != 1:
            raise PlanError(f"column {column!r} is ambiguous")
        return owners[0]

    @staticmethod
    def _select_column_refs(select: Select) -> set[ColumnRef]:
        refs: set[ColumnRef] = set()
        for item in select.items:
            refs |= referenced_columns(item.expr)
        if select.where is not None:
            refs |= {r for r in referenced_columns(select.where)}
        return refs

    def _plan_view_scan(self, select: Select, view: Table,
                        alias_tables, local, joins, multi,
                        compile_bool, binding):
        """Plan the select as a scan/seek over the substituted view."""
        filters: list[BoolExpr] = []
        for alias_filters in local.values():
            filters.extend(alias_filters)
        filters.extend(multi)
        # Join conjuncts between the two source tables are implied by the
        # view itself; any other join is unplannable here.
        assert view.view_def is not None
        pair = {view.view_def.parent_table, view.view_def.child_table}
        for la, lc, ra, rc in joins:
            ta = alias_tables[la].name
            tb = alias_tables[ra].name
            if {ta, tb} != pair:
                raise PlanError("view does not cover this join")
        rewritten = self._rewrite_filters_for_view(
            filters, view, binding, alias_tables)
        stats_rows = self._view_row_count(view)
        plan, cost, rows = self._best_access_path(
            view, "@view", rewritten, compile_bool,
            required_columns=self._view_required_columns(view, binding),
            row_count=stats_rows, rebind=binding, alias_tables=alias_tables)
        return plan, cost, rows

    def _view_row_count(self, view: Table) -> int:
        table_stats = self.stats.table(view.name)
        if table_stats is not None:
            return table_stats.row_count
        return view.row_count

    @staticmethod
    def _view_required_columns(view: Table, binding) -> set[str]:
        return {view.columns[pos].name
                for (_, _), (env, pos) in binding.items() if env == "@view"}

    def _rewrite_filters_for_view(self, filters, view, binding, alias_tables):
        """Map filter column refs onto the view's own columns."""
        def rewrite_ref(ref: ColumnRef) -> ColumnRef:
            alias = ref.table or self._owner_alias(ref.column, alias_tables)
            env, pos = binding[(alias, ref.column)]
            return ColumnRef("@view", view.columns[pos].name)

        def rewrite(expr):
            if isinstance(expr, Comparison):
                left = rewrite_ref(expr.left) if isinstance(expr.left, ColumnRef) else expr.left
                right = rewrite_ref(expr.right) if isinstance(expr.right, ColumnRef) else expr.right
                return Comparison(left, expr.op, right)
            if isinstance(expr, IsNull):
                return IsNull(rewrite_ref(expr.operand), expr.negated)
            if isinstance(expr, And):
                return And(tuple(rewrite(e) for e in expr.items))
            if isinstance(expr, Or):
                return Or(tuple(rewrite(e) for e in expr.items))
            raise PlanError(f"cannot push {expr!r} into a view scan")

        return [rewrite(f) for f in filters]

    # ------------------------------------------------------------------
    # EXISTS probe construction
    # ------------------------------------------------------------------
    def _build_probe(self, exists: Exists, default_alias, resolve) -> ExistsProbe:
        sub = exists.subquery
        if len(sub.from_tables) != 1:
            raise PlanError("EXISTS subqueries must reference one table")
        inner_ref = sub.from_tables[0]
        inner_table = self._table(inner_ref.table)
        inner_alias = inner_ref.name
        corr_column = None
        corr_outer = None
        local_parts: list[BoolExpr] = []
        for conjunct in _split_or_flatten(sub.where):
            if isinstance(conjunct, Comparison) and \
                    conjunct.op == ComparisonOp.EQ and \
                    isinstance(conjunct.left, ColumnRef) and \
                    isinstance(conjunct.right, ColumnRef):
                left_inner = conjunct.left.table == inner_alias
                right_inner = conjunct.right.table == inner_alias
                if left_inner and not right_inner:
                    corr_column, corr_outer = conjunct.left.column, conjunct.right
                    continue
                if right_inner and not left_inner:
                    corr_column, corr_outer = conjunct.right.column, conjunct.left
                    continue
            local_parts.append(conjunct)
        if corr_column is None or corr_outer is None:
            raise PlanError("EXISTS subquery must have a correlation equality")

        # Pick an index whose leading key is the correlation column; if
        # the next key column carries an equality local predicate, fold
        # it into the seek key.
        best_index = None
        extra_values: tuple = ()
        for index in self._indexes_on(inner_table.name):
            if index.clustered or index.key_columns[0] != corr_column:
                continue
            values: tuple = ()
            if len(index.key_columns) > 1 and len(local_parts) == 1:
                part = local_parts[0]
                if isinstance(part, Comparison) and part.op == ComparisonOp.EQ \
                        and isinstance(part.left, ColumnRef) \
                        and isinstance(part.right, Literal) \
                        and part.left.column == index.key_columns[1]:
                    values = (part.right.value,)
            if best_index is None or len(values) > len(extra_values):
                best_index = index
                extra_values = values

        local_predicate = None
        remaining = [p for p in local_parts]
        if best_index is not None and extra_values:
            remaining = []
        if remaining:
            def resolve_inner(ref: ColumnRef):
                if ref.table in ("", inner_alias):
                    return inner_alias, inner_table.column_position(ref.column)
                raise PlanError(f"unexpected outer reference {ref} in EXISTS")
            local_predicate = compile_predicate(
                And(tuple(remaining)) if len(remaining) > 1 else remaining[0],
                resolve_inner)
        return ExistsProbe(
            table_name=inner_table.name,
            alias=inner_alias,
            corr_column=corr_column,
            corr_outer=corr_outer,
            index=best_index,
            local_predicate=local_predicate,
            resolve_outer=resolve,
            extra_key_values=extra_values,
        )

    # ------------------------------------------------------------------
    # Selectivity
    # ------------------------------------------------------------------
    def _conjunct_selectivity(self, table: Table, expr: BoolExpr) -> float:
        if isinstance(expr, Comparison):
            column, literal = None, None
            if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
                column, literal = expr.left.column, expr.right.value
            elif isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
                column, literal = expr.right.column, expr.left.value
            if column is None:
                return 0.5
            stats = self._column_stats(table.name, column)
            if expr.op == ComparisonOp.EQ:
                if stats is None:
                    return _DEFAULT_EQ_SEL
                return stats.eq_selectivity(self._coerce(table, column, literal))
            if expr.op == ComparisonOp.NE:
                if stats is None:
                    return 1.0 - _DEFAULT_EQ_SEL
                return max(0.0, stats.non_null_fraction
                           - stats.eq_selectivity(self._coerce(table, column, literal)))
            if expr.op in _RANGE_OPS:
                if stats is None:
                    return _DEFAULT_RANGE_SEL
                return stats.range_selectivity(
                    _RANGE_OPS[expr.op], self._coerce(table, column, literal))
            return 0.5
        if isinstance(expr, IsNull):
            stats = self._column_stats(table.name, expr.operand.column)
            if stats is None:
                fraction = _DEFAULT_NULL_SEL
            else:
                fraction = stats.null_fraction
            return 1.0 - fraction if expr.negated else fraction
        if isinstance(expr, And):
            sel = 1.0
            for item in expr.items:
                sel *= self._conjunct_selectivity(table, item)
            return sel
        if isinstance(expr, Or):
            sel = 1.0
            for item in expr.items:
                sel *= 1.0 - self._conjunct_selectivity(table, item)
            return 1.0 - sel
        if isinstance(expr, Exists):
            return 0.5
        return 0.5

    @staticmethod
    def _coerce(table: Table, column: str, literal):
        try:
            return table.column(column).sql_type.coerce(literal)
        except (ValueError, TypeError):
            return literal

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def _best_access_path(self, table: Table, alias: str,
                          filters: list[BoolExpr], compile_bool,
                          required_columns: set[str],
                          row_count: int | None = None,
                          rebind=None, alias_tables=None):
        """Cheapest scan/seek for one table. Returns (plan, cost, rows)."""
        rows_in = row_count if row_count is not None else self._row_count(table)
        selectivity = 1.0
        for expr in filters:
            selectivity *= self._conjunct_selectivity(table, expr)
        rows_out = max(rows_in * selectivity, 0.0)
        predicate = None
        if filters:
            combined = And(tuple(filters)) if len(filters) > 1 else filters[0]
            predicate = compile_bool(combined)

        pages = self._page_count(table, rows_in)
        best_plan: PlanNode = SeqScan(table.name, alias, predicate)
        best_cost = (pages * SEQ_PAGE_COST
                     + rows_in * CPU_TUPLE_COST
                     + rows_in * len(filters) * CPU_OPERATOR_COST)
        best_plan.est_rows = rows_out
        best_plan.est_cost = best_cost

        for index in self._indexes_on(table.name):
            seek = self._try_index_seek(index, table, alias, filters,
                                        compile_bool, required_columns,
                                        rows_in)
            if seek is None:
                continue
            plan, cost = seek
            if cost < best_cost:
                best_plan, best_cost = plan, cost
                best_plan.est_rows = rows_out
                best_plan.est_cost = cost
        return best_plan, best_cost, rows_out

    def _row_count(self, table: Table) -> int:
        table_stats = self.stats.table(table.name)
        if table_stats is not None:
            return table_stats.row_count
        return table.row_count

    def _page_count(self, table: Table, rows: int) -> int:
        usable = PAGE_SIZE * PAGE_FILL_FACTOR
        per_page = max(1, int(usable // table.row_width))
        return max(1, math.ceil(rows / per_page))

    def _try_index_seek(self, index: Index, table: Table, alias: str,
                        filters: list[BoolExpr], compile_bool,
                        required_columns: set[str], rows_in: int):
        """Build an IndexSeek over constant predicates, if sargable."""
        eq_values: dict[str, object] = {}
        range_pred: dict[str, tuple] = {}
        other: list[BoolExpr] = []
        for expr in filters:
            placed = False
            if isinstance(expr, Comparison) and \
                    isinstance(expr.left, ColumnRef) and \
                    isinstance(expr.right, Literal):
                column = expr.left.column
                value = self._coerce(table, column, expr.right.value)
                if expr.op == ComparisonOp.EQ and column not in eq_values:
                    eq_values[column] = value
                    placed = True
                elif expr.op in _RANGE_OPS and column not in range_pred:
                    range_pred[column] = (expr.op, value)
                    placed = True
            if not placed:
                other.append(expr)

        prefix: list[str] = []
        for column in index.key_columns:
            if column in eq_values:
                prefix.append(column)
            else:
                break
        range_column = None
        if len(prefix) < len(index.key_columns):
            next_col = index.key_columns[len(prefix)]
            if next_col in range_pred:
                range_column = next_col
        if not prefix and range_column is None:
            if not index.clustered:
                return None
            return None  # full clustered scan == seq scan; already costed

        seek_sel = 1.0
        residual_filters: list[BoolExpr] = list(other)
        used_eq = set(prefix)
        for column, value in eq_values.items():
            expr = Comparison(ColumnRef(alias, column), ComparisonOp.EQ,
                              Literal(value))
            if column in used_eq:
                seek_sel *= self._conjunct_selectivity(table, expr)
            else:
                residual_filters.append(expr)
        bounds = None
        if range_column is not None:
            op, value = range_pred.pop(range_column)
            expr = Comparison(ColumnRef(alias, range_column), op, Literal(value))
            seek_sel *= self._conjunct_selectivity(table, expr)
            if op in (ComparisonOp.GT, ComparisonOp.GE):
                bounds = (value, op == ComparisonOp.GE, None, True)
            else:
                bounds = (None, True, value, op == ComparisonOp.LE)
        for column, (op, value) in range_pred.items():
            residual_filters.append(
                Comparison(ColumnRef(alias, column), op, Literal(value)))

        matched = max(rows_in * seek_sel, 0.0)
        covering = index.covers(required_columns, table)
        entries_per_page = max(1, int(
            PAGE_SIZE * PAGE_FILL_FACTOR // index.entry_width(table)))
        cost = (index.height(table) * RANDOM_PAGE_COST
                + (matched / entries_per_page) * SEQ_PAGE_COST
                + matched * CPU_TUPLE_COST
                + matched * len(residual_filters) * CPU_OPERATOR_COST)
        if not covering:
            cost += matched * RANDOM_PAGE_COST

        residual = None
        if residual_filters:
            combined = (And(tuple(residual_filters))
                        if len(residual_filters) > 1 else residual_filters[0])
            residual = compile_bool(combined)
        eq_exprs = [(lambda v: (lambda env: v))(eq_values[c]) for c in prefix]
        plan = IndexSeek(index, table.name, alias, eq_exprs,
                         range_bounds=bounds, residual=residual,
                         covering=covering)
        plan.est_leaf_pages = matched / entries_per_page
        plan.est_fetches = 0.0 if covering else matched
        return plan, cost

    # ------------------------------------------------------------------
    # Join planning
    # ------------------------------------------------------------------
    def _plan_joins(self, select: Select, alias_tables: dict[str, Table],
                    local: dict[str, list[BoolExpr]],
                    joins: list[tuple[str, str, str, str]],
                    multi: list[BoolExpr], compile_bool, resolve):
        aliases = list(alias_tables)
        required: dict[str, set[str]] = {a: set() for a in aliases}
        for ref in self._select_column_refs(select):
            alias = ref.table or self._owner_alias(ref.column, alias_tables)
            required[alias].add(ref.column)
        for la, lc, ra, rc in joins:
            required[la].add(lc)
            required[ra].add(rc)

        if len(aliases) == 1:
            alias = aliases[0]
            plan, cost, rows = self._best_access_path(
                alias_tables[alias], alias, local[alias], compile_bool,
                required[alias])
            if multi:
                raise PlanError("multi-alias predicate with one table")
            return plan, cost, rows

        orders = (itertools.permutations(aliases)
                  if len(aliases) <= 4 else [tuple(aliases)])
        best = None
        for order in orders:
            try:
                planned = self._plan_join_order(
                    list(order), alias_tables, local, joins, multi,
                    compile_bool, resolve, required)
            except PlanError:
                continue
            if best is None or planned[1] < best[1]:
                best = planned
        if best is None:
            raise PlanError("no feasible join order")
        return best

    def _plan_join_order(self, order, alias_tables, local, joins, multi,
                         compile_bool, resolve, required):
        first = order[0]
        plan, cost, rows = self._best_access_path(
            alias_tables[first], first, local[first], compile_bool,
            required[first])
        bound = {first}
        for alias in order[1:]:
            edge = [(la, lc, ra, rc) for la, lc, ra, rc in joins
                    if (la in bound and ra == alias)
                    or (ra in bound and la == alias)]
            plan, cost, rows = self._join_step(
                plan, cost, rows, bound, alias, alias_tables, local,
                edge, compile_bool, resolve, required)
            bound.add(alias)
        remaining = [m for m in multi]
        if remaining:
            combined = And(tuple(remaining)) if len(remaining) > 1 else remaining[0]
            predicate = compile_bool(combined)
            filtered = _FilterWrap(plan, predicate)
            filtered.est_rows = rows * 0.5
            filtered.est_cost = cost + rows * CPU_OPERATOR_COST
            plan, rows = filtered, rows * 0.5
            cost += rows * CPU_OPERATOR_COST
        return plan, cost, rows

    def _join_step(self, outer_plan, outer_cost, outer_rows, bound, alias,
                   alias_tables, local, edge, compile_bool, resolve, required):
        inner_table = alias_tables[alias]
        inner_rows_total = self._row_count(inner_table)
        inner_filters = local[alias]
        if not edge:
            # Cartesian product (never produced by the translator, but
            # legal SQL): block nested loop.
            inner_plan, inner_cost, inner_rows = self._best_access_path(
                inner_table, alias, inner_filters, compile_bool,
                required[alias])
            join = NestedLoopJoin(outer_plan, inner_plan)
            rows = outer_rows * inner_rows
            cost = (outer_cost + inner_cost
                    + outer_rows * inner_rows * CPU_OPERATOR_COST)
            join.est_rows, join.est_cost = rows, cost
            return join, cost, rows

        # Join selectivity from the first edge's key distinctness.
        la, lc, ra, rc = edge[0]
        if la in bound:
            outer_alias, outer_col, inner_col = la, lc, rc
        else:
            outer_alias, outer_col, inner_col = ra, rc, lc
        inner_stats = self._column_stats(inner_table.name, inner_col)
        outer_stats = self._column_stats(alias_tables[outer_alias].name, outer_col)
        distinct = max(
            inner_stats.n_distinct if inner_stats else 0,
            outer_stats.n_distinct if outer_stats else 0,
            1)
        local_sel = 1.0
        for expr in inner_filters:
            local_sel *= self._conjunct_selectivity(inner_table, expr)
        join_rows = max(
            outer_rows * inner_rows_total * local_sel / distinct, 0.0)

        candidates = []

        # Hash join: build on inner access path, probe outer.
        inner_plan, inner_cost, inner_rows = self._best_access_path(
            inner_table, alias, inner_filters, compile_bool, required[alias])
        build_keys = [compile_scalar(ColumnRef(alias, inner_col), resolve)]
        probe_keys = [compile_scalar(ColumnRef(outer_alias, outer_col), resolve)]
        residual = self._edge_residual(edge[1:], compile_bool)
        hash_plan = HashJoin(inner_plan, outer_plan, build_keys, probe_keys,
                             residual)
        hash_cost = (outer_cost + inner_cost
                     + (inner_rows + outer_rows) * HASH_TUPLE_COST)
        hash_plan.est_rows, hash_plan.est_cost = join_rows, hash_cost
        candidates.append((hash_plan, hash_cost))

        # Index nested loop join: index on inner join column.
        for index in self._indexes_on(inner_table.name):
            if index.key_columns[0] != inner_col:
                continue
            covering = index.covers(required[alias], inner_table)
            matches_per_probe = max(
                inner_rows_total / max(
                    inner_stats.n_distinct if inner_stats else inner_rows_total, 1),
                0.0)
            per_probe = (index.height(inner_table) * RANDOM_PAGE_COST
                         + matches_per_probe * CPU_TUPLE_COST)
            if not covering:
                per_probe += matches_per_probe * RANDOM_PAGE_COST
            inlj_cost = outer_cost + outer_rows * per_probe
            if inlj_cost >= hash_cost and inlj_cost >= candidates[0][1]:
                continue
            residual_filters = list(inner_filters)
            inner_residual = None
            if residual_filters:
                combined = (And(tuple(residual_filters))
                            if len(residual_filters) > 1 else residual_filters[0])
                inner_residual = compile_bool(combined)
            eq_exprs = [compile_scalar(ColumnRef(outer_alias, outer_col), resolve)]
            seek = IndexSeek(index, inner_table.name, alias, eq_exprs,
                             residual=inner_residual, covering=covering)
            seek.est_rows = matches_per_probe
            inlj = IndexNestedLoopJoin(outer_plan, seek)
            inlj.est_rows, inlj.est_cost = join_rows, inlj_cost
            candidates.append((inlj, inlj_cost))

        plan, cost = min(candidates, key=lambda c: c[1])
        return plan, cost, join_rows

    @staticmethod
    def _edge_residual(extra_edges, compile_bool):
        if not extra_edges:
            return None
        parts = tuple(
            Comparison(ColumnRef(la, lc), ComparisonOp.EQ, ColumnRef(ra, rc))
            for la, lc, ra, rc in extra_edges)
        return compile_bool(And(parts) if len(parts) > 1 else parts[0])


class _FilterWrap(PlanNode):
    """Residual filter over an environment stream."""

    def __init__(self, child: PlanNode, predicate):
        self.child = child
        self.predicate = predicate

    def label(self) -> str:
        return "Filter"

    def children(self) -> list[PlanNode]:
        return [self.child]

    def execute(self, runtime: Runtime):
        predicate = self.predicate
        for env in self.child.execute(runtime):
            runtime.counter.charge_operations(1)
            if predicate(env):
                yield env
