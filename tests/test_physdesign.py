"""Unit tests for the physical design advisor."""

import pytest

from repro.engine import Column, Database, Index, SQLType
from repro.errors import SearchError
from repro.physdesign import (CandidateGenerator, Configuration,
                              IndexTuningAdvisor, analyze_select,
                              materialize)
from repro.sqlast import parse_sql


@pytest.fixture
def db():
    import random
    rng = random.Random(3)
    database = Database()
    database.create_table("pub", [
        Column("ID", SQLType.INTEGER, False),
        Column("PID", SQLType.INTEGER),
        Column("title", SQLType.VARCHAR),
        Column("venue", SQLType.VARCHAR),
        Column("year", SQLType.INTEGER),
    ])
    database.create_table("person", [
        Column("ID", SQLType.INTEGER, False),
        Column("PID", SQLType.INTEGER),
        Column("name", SQLType.VARCHAR),
    ])
    database.insert_rows("pub", [
        (i, 0, f"t{i}", f"V{rng.randrange(12)}", 1980 + i % 25)
        for i in range(4000)])
    database.insert_rows("person", [
        (10_000 + j, rng.randrange(4000), f"n{j % 500}")
        for j in range(9000)])
    database.analyze()
    database.build_primary_key_indexes()
    return database


JOIN_SQL = ("SELECT P.ID, A.name FROM pub P, person A "
            "WHERE P.venue = 'V3' AND P.ID = A.PID")


class TestCandidateGeneration:
    def test_shape_analysis(self, db):
        query = parse_sql(JOIN_SQL)
        shape = analyze_select(query.selects[0], db)
        assert shape.eq_columns["P"] == ["venue"]
        assert shape.join_edges == [("P", "ID", "A", "PID")]
        assert "name" in shape.referenced["A"]

    def test_candidates_include_covering_and_view(self, db):
        generator = CandidateGenerator(db)
        indexes, views = generator.for_query(parse_sql(JOIN_SQL))
        assert any(set(ix.included_columns) for ix in indexes)
        assert any(ix.key_columns == ("venue",) for ix in indexes)
        assert any(ix.key_columns[0] == "PID" for ix in indexes)
        assert len(views) == 1
        assert views[0].definition.child_fk_column == "PID"

    def test_candidates_deduplicated(self, db):
        generator = CandidateGenerator(db)
        first, _ = generator.for_query(parse_sql(JOIN_SQL))
        second, second_views = generator.for_query(parse_sql(JOIN_SQL))
        assert second == []
        assert second_views == []

    def test_range_predicate_candidates(self, db):
        generator = CandidateGenerator(db)
        indexes, _ = generator.for_query(parse_sql(
            "SELECT P.title FROM pub P WHERE P.year >= 2000"))
        assert any(ix.key_columns == ("year",) for ix in indexes)

    def test_exists_probe_candidate(self, db):
        generator = CandidateGenerator(db)
        indexes, _ = generator.for_query(parse_sql(
            "SELECT P.ID FROM pub P WHERE EXISTS "
            "(SELECT A.ID FROM person A WHERE A.PID = P.ID "
            "AND A.name = 'n3')"))
        assert any(ix.key_columns[:1] == ("PID",) for ix in indexes)


class TestAdvisor:
    def test_recommendation_lowers_cost(self, db):
        workload = [(parse_sql(JOIN_SQL), 1.0)]
        advisor = IndexTuningAdvisor(db)
        base_cost = db.estimate(JOIN_SQL).est_cost
        result = advisor.tune(workload)
        assert result.total_cost < base_cost
        assert len(result.configuration) >= 1

    def test_respects_storage_bound(self, db):
        workload = [(parse_sql(JOIN_SQL), 1.0)]
        advisor = IndexTuningAdvisor(db)
        data = db.catalog.total_data_bytes()
        tight = advisor.tune(workload, storage_bound=data + 64 * 1024)
        roomy = advisor.tune(workload, storage_bound=data + 1 << 30)
        assert tight.configuration.size_bytes(db) <= 64 * 1024
        assert roomy.total_cost <= tight.total_cost

    def test_bound_below_data_size_rejected(self, db):
        advisor = IndexTuningAdvisor(db)
        with pytest.raises(SearchError):
            advisor.tune([(parse_sql(JOIN_SQL), 1.0)], storage_bound=1)

    def test_reports_objects_used(self, db):
        workload = [(parse_sql(JOIN_SQL), 1.0)]
        result = IndexTuningAdvisor(db).tune(workload)
        report = result.reports[0]
        assert report.objects_used
        config_names = result.configuration.object_names()
        named = {o for o in report.objects_used
                 if o.startswith("cand_")}
        assert named <= config_names

    def test_weights_steer_selection(self, db):
        q_cheap = parse_sql("SELECT P.title FROM pub P WHERE P.year = 1999")
        advisor = IndexTuningAdvisor(db)
        heavy = advisor.tune([(q_cheap, 100.0),
                              (parse_sql(JOIN_SQL), 0.001)])
        year_indexed = any("year" in ix.key_columns
                           for ix in heavy.configuration.indexes)
        assert year_indexed

    def test_materialize_builds_everything(self, db):
        workload = [(parse_sql(JOIN_SQL), 1.0)]
        result = IndexTuningAdvisor(db).tune(workload)
        materialize(db, result.configuration)
        for index in result.configuration.indexes:
            assert db.catalog.indexes[index.name].is_built
        for view in result.configuration.views:
            assert db.catalog.table(view.name).is_materialized

    def test_advisor_never_mutates_catalog(self, db):
        tables_before = set(db.catalog.tables)
        indexes_before = set(db.catalog.indexes)
        IndexTuningAdvisor(db).tune([(parse_sql(JOIN_SQL), 1.0)])
        assert set(db.catalog.tables) == tables_before
        assert set(db.catalog.indexes) == indexes_before

    def test_estimated_matches_measured_direction(self, db):
        """The advisor's estimated win must materialize as a real win."""
        workload = [(parse_sql(JOIN_SQL), 1.0)]
        before = db.execute(JOIN_SQL).cost
        result = IndexTuningAdvisor(db).tune(workload)
        materialize(db, result.configuration)
        after = db.execute(JOIN_SQL).cost
        assert after < before


class TestConfiguration:
    def test_extended_is_persistent(self):
        config = Configuration()
        index = Index("x", "pub", ("venue",), hypothetical=True)
        extended = config.extended(index)
        assert len(config) == 0
        assert len(extended) == 1

    def test_describe_empty(self):
        assert "no physical structures" in Configuration().describe()


class TestAdvisorEfficiency:
    def test_one_size_computation_per_candidate(self, db, monkeypatch):
        """Regression: greedy selection used to recompute the chosen
        configuration's size (``Configuration.size_bytes``) on every
        heap pop, making selection quadratic in configuration size.
        Candidate sizes are now computed once each and the accepted
        size is a running sum."""
        advisor = IndexTuningAdvisor(db)
        size_calls = []
        original_size = IndexTuningAdvisor._candidate_size

        def counting_size(self, candidate):
            size_calls.append(candidate)
            return original_size(self, candidate)

        monkeypatch.setattr(IndexTuningAdvisor, "_candidate_size",
                            counting_size)

        def forbidden(self, *args, **kwargs):
            raise AssertionError(
                "Configuration.size_bytes called during tuning")

        monkeypatch.setattr(Configuration, "size_bytes", forbidden)
        data = db.catalog.total_data_bytes()
        result = advisor.tune([(parse_sql(JOIN_SQL), 1.0)],
                              storage_bound=data + 1 << 30)
        assert len(result.configuration) >= 1
        # Exactly one size computation per generated candidate — none
        # repeated across greedy passes.
        assert len(size_calls) == result.candidates_considered
        assert len(size_calls) == len(set(map(id, size_calls)))

    def test_shared_cost_cache_across_invocations(self, db):
        """A second tune of the same workload against the same database
        is served entirely from the shared what-if cost cache."""
        shared: dict = {}
        workload = [(parse_sql(JOIN_SQL), 1.0)]
        first = IndexTuningAdvisor(db, cost_cache=shared).tune(workload)
        second = IndexTuningAdvisor(db, cost_cache=shared).tune(workload)
        assert second.total_cost == first.total_cost
        assert second.configuration.describe() == \
            first.configuration.describe()
        assert first.optimizer_calls > 0
        assert second.optimizer_calls == 0
