"""The index/materialized-view tuning advisor.

Plays the role of SQL Server 2000's Index Tuning Wizard in the paper's
architecture (Fig. 2): given a SQL workload and a storage bound, it

1. generates per-query index and join-view candidates,
2. costs configurations with what-if optimizer calls (no data touched),
3. greedily selects the structure with the best benefit-per-byte until
   no structure improves the workload or the bound is reached,
4. reports per-query estimated costs and the object sets ``I(Q)`` used
   by each query plan — the hooks the search algorithm's cost-derivation
   optimization (paper Section 4.8) relies on.

The advisor never materializes anything; call :func:`materialize` on a
database holding real data to build the final recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..engine import Database, Index
from ..errors import PlanError, SearchError
from ..obs import NullTracer, Tracer, get_tracer
from ..sqlast import Query
from .candidates import CandidateGenerator
from .config import Configuration, ViewCandidate


@dataclass
class QueryReport:
    """Advisor output for one workload query."""

    query: Query
    weight: float
    cost: float
    objects_used: frozenset[str]


@dataclass
class TuningResult:
    """Advisor output for one workload."""

    configuration: Configuration
    total_cost: float
    reports: list[QueryReport]
    optimizer_calls: int
    candidates_considered: int

    def cost_of(self, index: int) -> float:
        return self.reports[index].cost


@dataclass
class AdvisorStats:
    """Cumulative instrumentation across advisor invocations."""

    invocations: int = 0
    optimizer_calls: int = 0
    cost_cache_lookups: int = 0
    cost_cache_hits: int = 0
    heap_reevaluations: int = 0


class IndexTuningAdvisor:
    """Greedy what-if physical design advisor."""

    def __init__(self, db: Database, max_rounds: int = 12,
                 min_benefit: float = 1e-6,
                 tracer: Tracer | NullTracer | None = None,
                 cost_cache: dict | None = None):
        self.db = db
        self.max_rounds = max_rounds
        self.min_benefit = min_benefit
        self.stats = AdvisorStats()
        self.tracer = tracer if tracer is not None else get_tracer()
        # What-if cost cache: (database name, rendered query, signatures
        # of the structures relevant to it) -> (cost, objects used). A
        # candidate index on a table the query never touches cannot
        # change its plan, so most greedy-round evaluations hit here.
        # Pass ``cost_cache`` to share the cache across advisor
        # invocations (the search layer shares one per evaluator, so an
        # exact re-check after a partial tune of the same mapping does
        # not re-pay optimizer calls for unchanged query/configuration
        # pairs); keys carry the database name, so entries never collide
        # across the stats-only databases of different mappings.
        self._cost_cache: dict[tuple, tuple[float, frozenset[str]]] = \
            cost_cache if cost_cache is not None else {}
        self._optimizer_calls = 0
        self._cache_lookups = 0
        self._cache_hits = 0
        self._heap_reevaluations = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _relevant_signature(tables: frozenset[str],
                            configuration: Configuration) -> frozenset:
        parts: list = []
        for index in configuration.indexes:
            if index.table_name in tables:
                parts.append(index.signature())
        for view in configuration.views:
            definition = view.definition
            if {definition.parent_table, definition.child_table} <= tables:
                parts.append(("view", definition))
        return frozenset(parts)

    def _cost_cached(self, query_key: str, query: Query,
                     tables: frozenset[str],
                     configuration: Configuration
                     ) -> tuple[float, frozenset[str]]:
        key = (self.db.name, query_key,
               self._relevant_signature(tables, configuration))
        self._cache_lookups += 1
        hit = self._cost_cache.get(key)
        if hit is not None:
            self._cache_hits += 1
            return hit
        result = self._cost(query, configuration)
        self._optimizer_calls += 1
        self._cost_cache[key] = result
        return result

    # ------------------------------------------------------------------
    def tune(self, workload: list[tuple[Query, float]],
             storage_bound: int | None = None,
             extra_candidates: list[Index | ViewCandidate] | None = None,
             update_load: dict[str, float] | None = None
             ) -> TuningResult:
        """Recommend a configuration for the weighted SQL workload.

        ``update_load`` (extension) maps table name to expected row
        inserts per unit of workload time; candidate structures on
        loaded tables are charged a maintenance penalty.
        """
        from ..resilience import active_fault_plan
        active_fault_plan().maybe_raise("advisor")
        self.stats.invocations += 1
        self._cache_lookups = 0
        self._cache_hits = 0
        self._heap_reevaluations = 0
        with self.tracer.span("advisor.tune", queries=len(workload),
                              database=self.db.name) as span:
            result = self._tune(workload, storage_bound, extra_candidates,
                                update_load)
            span.set("candidates", result.candidates_considered)
            span.set("optimizer_calls", result.optimizer_calls)
            span.set("cost_cache_lookups", self._cache_lookups)
            span.set("cost_cache_hits", self._cache_hits)
            span.set("cost_cache_hit_ratio",
                     round(self._cache_hits / max(self._cache_lookups, 1), 4))
            span.set("heap_reevaluations", self._heap_reevaluations)
            span.set("structures_selected",
                     len(result.configuration.indexes)
                     + len(result.configuration.views))
            span.set("total_cost", result.total_cost)
        return result

    def _tune(self, workload: list[tuple[Query, float]],
              storage_bound: int | None = None,
              extra_candidates: list[Index | ViewCandidate] | None = None,
              update_load: dict[str, float] | None = None
              ) -> TuningResult:
        generator = CandidateGenerator(self.db)
        candidates: list[Index | ViewCandidate] = list(extra_candidates or [])
        per_query_tables: list[frozenset[str]] = []
        per_query_keys: list[str] = []
        for query, _ in workload:
            indexes, views = generator.for_query(query)
            candidates.extend(indexes)
            candidates.extend(views)
            per_query_tables.append(query.referenced_tables)
            per_query_keys.append(str(query))

        data_bytes = self.db.catalog.total_data_bytes()
        budget = None
        if storage_bound is not None:
            budget = storage_bound - data_bytes
            if budget < 0:
                raise SearchError(
                    f"storage bound {storage_bound} is below the data size "
                    f"{data_bytes}")

        self._optimizer_calls = 0
        chosen = Configuration()
        current_costs: list[float] = []
        for i, (query, _) in enumerate(workload):
            cost, _ = self._cost_cached(per_query_keys[i], query,
                                        per_query_tables[i], chosen)
            current_costs.append(cost)

        update_load = update_load or {}

        # Lazy greedy selection: a candidate's benefit-per-byte can only
        # shrink as the configuration grows (diminishing returns), so we
        # keep stale scores in a max-heap and only re-evaluate the
        # candidate currently on top. This avoids re-costing every
        # candidate every round.
        import heapq

        # Candidate sizes never change during selection, so each is
        # computed exactly once (size estimation walks the table's
        # column widths); the accepted configuration's size is tracked
        # as a running sum — re-deriving ``chosen.size_bytes`` on every
        # heap pop made selection quadratic in configuration size.
        sizes: dict[int, int] = {}
        chosen_size = 0

        def evaluate(candidate, base_costs, size):
            trial = chosen.extended(candidate)
            affected_table = self._candidate_table(candidate)
            new_costs = list(base_costs)
            benefit = -self._maintenance_cost(candidate, update_load)
            for i, (query, weight) in enumerate(workload):
                if affected_table is not None and \
                        affected_table not in per_query_tables[i]:
                    continue
                cost, _ = self._cost_cached(per_query_keys[i], query,
                                            per_query_tables[i], trial)
                benefit += weight * (base_costs[i] - cost)
                new_costs[i] = cost
            return benefit / max(size, 1), benefit, new_costs, size

        heap: list = []
        for order, candidate in enumerate(candidates):
            size = sizes[order] = self._candidate_size(candidate)
            if budget is not None and size > budget:
                continue
            score, benefit, new_costs, _ = evaluate(candidate, current_costs,
                                                    size)
            if benefit <= self.min_benefit:
                continue
            heapq.heappush(heap, (-score, 0, order, candidate, new_costs))

        rounds = 0
        while heap and rounds < self.max_rounds:
            neg_score, generation, order, candidate, new_costs = \
                heapq.heappop(heap)
            size = sizes[order]
            if budget is not None and chosen_size + size > budget:
                continue
            if generation != rounds:
                # Stale score: re-evaluate against the current config.
                self._heap_reevaluations += 1
                score, benefit, new_costs, _ = evaluate(candidate,
                                                        current_costs, size)
                if benefit <= self.min_benefit:
                    continue
                heapq.heappush(heap, (-score, rounds, order, candidate,
                                      new_costs))
                continue
            chosen = chosen.extended(candidate)
            chosen_size += size
            current_costs = new_costs
            rounds += 1
            # Scores in the heap are now stale relative to `rounds`.

        reports: list[QueryReport] = []
        total = 0.0
        for i, (query, weight) in enumerate(workload):
            cost, objects = self._cost_cached(per_query_keys[i], query,
                                              per_query_tables[i], chosen)
            reports.append(QueryReport(query=query, weight=weight,
                                       cost=cost, objects_used=objects))
            total += weight * cost
        # Update maintenance: base row-insert work plus per-structure
        # upkeep (extension; zero when no update load is declared).
        total += self._base_update_cost(update_load)
        for index in chosen.indexes:
            total += self._maintenance_cost(index, update_load)
        for view in chosen.views:
            total += self._maintenance_cost(view, update_load)
        self.stats.optimizer_calls += self._optimizer_calls
        self.stats.cost_cache_lookups += self._cache_lookups
        self.stats.cost_cache_hits += self._cache_hits
        self.stats.heap_reevaluations += self._heap_reevaluations
        return TuningResult(
            configuration=chosen,
            total_cost=total,
            reports=reports,
            optimizer_calls=self._optimizer_calls,
            candidates_considered=len(candidates),
        )

    # ------------------------------------------------------------------
    # Update maintenance model (extension)
    # ------------------------------------------------------------------
    def _maintenance_cost(self, candidate: Index | ViewCandidate,
                          update_load: dict[str, float]) -> float:
        """Upkeep cost per unit time for one structure under the load."""
        if not update_load:
            return 0.0
        from ..engine.cost import CPU_TUPLE_COST, RANDOM_PAGE_COST

        if isinstance(candidate, Index):
            rate = update_load.get(candidate.table_name, 0.0)
            if rate == 0.0:
                return 0.0
            table = self.db.catalog.table(candidate.table_name)
            # One tree descent plus a leaf write per inserted row.
            return rate * (candidate.height(table) * RANDOM_PAGE_COST
                           + RANDOM_PAGE_COST + CPU_TUPLE_COST)
        definition = candidate.definition
        child_rate = update_load.get(definition.child_table, 0.0)
        parent_rate = update_load.get(definition.parent_table, 0.0)
        # Each child insert adds a view row (parent lookup + write);
        # parent inserts alone add nothing (no matching child rows yet).
        return child_rate * (2 * RANDOM_PAGE_COST + CPU_TUPLE_COST) \
            + parent_rate * CPU_TUPLE_COST

    def _base_update_cost(self, update_load: dict[str, float]) -> float:
        """Row-insert work independent of the chosen structures."""
        if not update_load:
            return 0.0
        from ..engine.cost import CPU_TUPLE_COST, RANDOM_PAGE_COST
        return sum(rate * (RANDOM_PAGE_COST + CPU_TUPLE_COST)
                   for rate in update_load.values())

    # ------------------------------------------------------------------
    def _candidate_size(self, candidate: Index | ViewCandidate) -> int:
        if isinstance(candidate, Index):
            table = self.db.catalog.table(candidate.table_name)
            return candidate.size_bytes(table)
        return candidate.size_bytes()

    @staticmethod
    def _candidate_table(candidate: Index | ViewCandidate) -> str | None:
        if isinstance(candidate, Index):
            return candidate.table_name
        return None  # views affect both tables; never skip

    def _cost(self, query: Query,
              configuration: Configuration) -> tuple[float, frozenset[str]]:
        try:
            planned = self.db.estimate(
                query,
                extra_indexes=configuration.indexes,
                extra_tables=configuration.extra_tables())
        except PlanError as exc:
            raise SearchError(f"cannot cost query {query}: {exc}") from exc
        return planned.est_cost, planned.objects_used()


def materialize(db: Database, configuration: Configuration) -> None:
    """Build a recommended configuration on a database with real data."""
    for view in configuration.views:
        db.create_materialized_view(view.name, view.definition)
    for index in configuration.indexes:
        table = db.catalog.table(index.table_name)
        built = Index(name=index.name, table_name=index.table_name,
                      key_columns=index.key_columns,
                      included_columns=index.included_columns)
        db.catalog.add_index(built)
        if table.is_materialized:
            built.build(table)
