"""Sanity checks over optimizer output (:class:`PlannedQuery`).

Validates a finished plan against the query it was built for and the
catalog it was planned over:

* PLAN001 — every node's ``est_rows``/``est_cost`` (and the plan total)
  is finite and non-negative,
* PLAN002 — every :class:`IndexSeek` and index-backed EXISTS probe
  references a catalog index or a declared what-if index, and only
  built/clustered indexes outside what-if mode,
* PLAN003 — every scan and probe targets a known table,
* PLAN004 — a materialized-view substitution covers the FROM tables of
  the branch it replaced,
* PLAN005 — each branch's scans produce exactly the aliases its SELECT
  requires,
* PLAN006 — the plan has one branch per SELECT.
"""

from __future__ import annotations

import math
from typing import Iterable

from ..engine import Index, Table
from ..engine.plans import IndexSeek, PlanNode, SeqScan
from ..engine.schema import Catalog
from ..sqlast import Query
from .findings import Findings


def _walk(node: PlanNode) -> Iterable[PlanNode]:
    yield node
    for child in node.children():
        yield from _walk(child)


def _scans(node: PlanNode) -> list[SeqScan | IndexSeek]:
    return [n for n in _walk(node) if isinstance(n, (SeqScan, IndexSeek))]


class _PlanChecker:
    def __init__(self, catalog: Catalog, extra_indexes: Iterable[Index] = (),
                 extra_tables: Iterable[Table] = (), what_if: bool = False):
        self.catalog = catalog
        self.indexes = dict(catalog.indexes)
        for index in extra_indexes:
            self.indexes[index.name] = index
        self.tables = dict(catalog.tables)
        for table in extra_tables:
            self.tables[table.name] = table
        self.table_names = set(self.tables)
        self.what_if = what_if
        self.findings = Findings()

    # ------------------------------------------------------------------
    def run(self, query: Query, planned) -> Findings:
        self._check_estimates(planned)
        for node in _walk(planned.root):
            self._check_node(node, "plan")
        for k, probe in enumerate(planned.probes):
            self._check_probe(probe, f"probe[{k}]")
        self._check_branches(query, planned)
        return self.findings

    # ------------------------------------------------------------------
    def _check_estimates(self, planned) -> None:
        self._check_number(planned.est_cost, "total est_cost", "plan")
        for node in _walk(planned.root):
            where = node.label()
            self._check_number(node.est_rows, "est_rows", where)
            self._check_number(node.est_cost, "est_cost", where)

    def _check_number(self, value: float, what: str, where: str) -> None:
        if not math.isfinite(value) or value < 0:
            self.findings.add(
                "PLAN001", f"{what} is {value!r}; estimates must be finite "
                           f"and non-negative", where)

    # ------------------------------------------------------------------
    def _check_node(self, node: PlanNode, where: str) -> None:
        if isinstance(node, SeqScan):
            self._check_table(node.table_name, node.label())
        elif isinstance(node, IndexSeek):
            self._check_table(node.table_name, node.label())
            self._check_index(node.index, node.label())

    def _check_probe(self, probe, where: str) -> None:
        self._check_table(probe.table_name, where)
        if probe.index is not None:
            self._check_index(probe.index, where)

    def _check_table(self, table_name: str, where: str) -> None:
        if table_name not in self.table_names:
            self.findings.add(
                "PLAN003", f"scan of unknown table {table_name!r}", where)

    def _check_index(self, index: Index, where: str) -> None:
        declared = self.indexes.get(index.name)
        if declared is None:
            self.findings.add(
                "PLAN002", f"index {index.name!r} is neither in the catalog "
                           f"nor declared as a what-if index", where)
            return
        if declared.table_name != index.table_name:
            self.findings.add(
                "PLAN002", f"index {index.name!r} is declared on table "
                           f"{declared.table_name!r} but the seek targets "
                           f"{index.table_name!r}", where)
        if not self.what_if and not (index.is_built or index.clustered):
            self.findings.add(
                "PLAN002", f"index {index.name!r} is hypothetical/unbuilt "
                           f"but the plan was built for execution", where)

    # ------------------------------------------------------------------
    def _check_branches(self, query: Query, planned) -> None:
        if len(planned.branch_plans) != len(query.selects):
            self.findings.add(
                "PLAN006", f"plan has {len(planned.branch_plans)} branch(es) "
                           f"for {len(query.selects)} SELECT(s)", "plan")
            return
        for i, (select, branch) in enumerate(zip(query.selects,
                                                 planned.branch_plans)):
            scans = _scans(branch)
            produced = {scan.alias for scan in scans}
            required = {ref.name: ref.table for ref in select.from_tables}
            missing = set(required) - produced
            if not missing:
                continue
            view_scans = [s for s in scans if s.alias == "@view"]
            if view_scans:
                self._check_view_coverage(view_scans[0], required, missing,
                                          f"branch[{i}]")
            else:
                self.findings.add(
                    "PLAN005", f"branch produces aliases {sorted(produced)} "
                               f"but its SELECT requires "
                               f"{sorted(required)}", f"branch[{i}]")

    def _check_view_coverage(self, view_scan, required: dict[str, str],
                             missing: set[str], where: str) -> None:
        """PLAN004: the substituted view must cover the replaced tables."""
        view = self.tables.get(view_scan.table_name)
        view_def = view.view_def if view is not None else None
        if view_def is None:
            self.findings.add(
                "PLAN004", f"branch scans {view_scan.table_name!r} as a "
                           f"view, but it has no view definition", where)
            return
        covered = {view_def.parent_table, view_def.child_table}
        uncovered = {required[alias] for alias in missing} - covered
        if uncovered:
            self.findings.add(
                "PLAN004", f"view {view_scan.table_name!r} joins {sorted(covered)} "
                           f"but the branch also requires {sorted(uncovered)}",
                where)


def check_plan(query: Query, planned, catalog: Catalog,
               extra_indexes: Iterable[Index] = (),
               extra_tables: Iterable[Table] = (),
               what_if: bool = False) -> Findings:
    """Run the plan sanitizer; returns the findings."""
    checker = _PlanChecker(catalog, extra_indexes, extra_tables, what_if)
    return checker.run(query, planned)
