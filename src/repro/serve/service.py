"""The long-lived query service.

:class:`QueryService` is the artifact that makes "serve a tuned design"
concrete: load a mapped schema's shredded data into a SQLite backend
**once**, build the recommended physical configuration, and then answer
XPath queries from many concurrent clients. Per request it:

1. resolves the XPath through the LRU :class:`~repro.serve.PlanCache`
   (translation paid once per distinct query),
2. executes the SQL on the worker thread's own SQLite connection (the
   backend opens one per thread — see ``repro.backends.sqlite``),
3. records a ``serve.request`` span and a latency-histogram
   observation on the service's metric registry.

The service owns a thread pool; :meth:`submit` is the asynchronous
client API (returns a future), :meth:`serve` the synchronous one. Both
funnel through the same request path, so every answer — cached plan or
not — is the plan-cache-translated, real-DBMS-executed result.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..backends import SQLiteBackend
from ..errors import ReproError
from ..mapping import MappedSchema
from ..obs import (LatencyHistogram, NullMetricRegistry, NullTracer,
                   Tracer, get_tracer)
from ..physdesign import Configuration
from ..resilience import note_suppressed
from ..xpath import XPathQuery
from .plan_cache import PlanCache

__all__ = ["QueryService", "ServeResult", "ServiceError", "ServiceStats"]


class ServiceError(ReproError):
    """The query service was misused (not started, already closed)."""


@dataclass(frozen=True)
class ServeResult:
    """One served request: rows plus request-level metadata."""

    xpath: str
    rows: list[tuple]
    seconds: float
    plan_key: str
    cached_plan: bool      # True: the plan came from the cache


@dataclass
class ServiceStats:
    """Aggregate counters snapshot for one service."""

    requests: int = 0
    errors: int = 0
    plan_cache: dict = field(default_factory=dict)
    latency: dict = field(default_factory=dict)

    def describe(self) -> str:
        lines = [f"requests: {self.requests} ({self.errors} errors)"]
        if self.latency.get("count"):
            lines.append(
                "latency: p50 {p50:.6f}s  p95 {p95:.6f}s  p99 {p99:.6f}s  "
                "max {max:.6f}s".format(**self.latency))
        cache = self.plan_cache
        if cache:
            lines.append(
                f"plan cache: {cache['entries']:.0f}/{cache['capacity']:.0f} "
                f"entries, {cache['hits']:.0f} hits / "
                f"{cache['misses']:.0f} misses "
                f"({cache['hit_rate']:.1%}), "
                f"{cache['evictions']:.0f} evictions")
        return "\n".join(lines)


class QueryService:
    """Serve XPath queries over one loaded design from a thread pool.

    ``db_path=None`` serves from a shared in-memory SQLite database;
    a path serves from that file, and workers reopen it **read-only**
    (they physically cannot write). ``workers`` bounds concurrent
    executions; each pool worker gets its own SQLite connection on
    first use. ``load_batch_size`` overrides the startup bulk load's
    streaming chunk size — with a lazy document (``stream=True``
    datasets) the service can load far more data than fits in memory
    as a materialized tree (docs/scaling.md).
    """

    def __init__(self, schema: MappedSchema, docs,
                 configuration: Configuration | None = None,
                 workers: int = 4, plan_cache_size: int = 128,
                 db_path: str | None = None,
                 load_batch_size: int | None = None,
                 tracer: Tracer | NullTracer | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("serve.service")
        # The latency histogram is service state, not optional
        # telemetry — stats() and the HTML report read it even under
        # the (default) null tracer, which discards observations.
        self._latency = LatencyHistogram("request_seconds")
        if not isinstance(self._metrics, NullMetricRegistry):
            self._metrics.histograms["request_seconds"] = self._latency
        self.schema = schema
        self.configuration = configuration or Configuration()
        self.workers = workers
        self.plan_cache = PlanCache(schema, capacity=plan_cache_size,
                                    tracer=self.tracer)
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        self._requests = 0
        self._errors = 0
        self._count_lock = threading.Lock()

        with self.tracer.span("serve.startup", workers=workers):
            loader = SQLiteBackend(db_path or ":memory:",
                                   tracer=self.tracer)
            load_kwargs = ({"batch_size": load_batch_size}
                           if load_batch_size else {})
            loader.load(schema, docs, **load_kwargs)
            loader.apply_configuration(self.configuration)
            if db_path is None:
                self.backend: SQLiteBackend = loader
            else:
                # Load and build DDL through a writable connection,
                # then serve through read-only worker connections on
                # the same file.
                loader.close()
                self.backend = SQLiteBackend(db_path, tracer=self.tracer,
                                             read_only=True)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def _handle(self, xpath: XPathQuery | str) -> ServeResult:
        started = time.perf_counter()
        with self.tracer.span("serve.request") as span:
            was_cached = xpath in self.plan_cache
            plan = self.plan_cache.get_or_translate(xpath)
            rows = self.backend.execute(plan.sql)
            seconds = time.perf_counter() - started
            span.set("plan_key", plan.key)
            span.set("cached_plan", was_cached)
            span.set("rows", len(rows))
            span.set("seconds", seconds)
        self._latency.observe(seconds)
        self._metrics.incr("requests")
        with self._count_lock:
            self._requests += 1
        return ServeResult(xpath=str(plan.xpath), rows=rows,
                           seconds=seconds, plan_key=plan.key,
                           cached_plan=was_cached)

    def _handle_counted(self, xpath: XPathQuery | str) -> ServeResult:
        try:
            return self._handle(xpath)
        except Exception as exc:
            # The failure is re-raised to the caller's Future, but it is
            # also classified and counted here so per-service error
            # accounting survives callers that drop their futures.
            note_suppressed(exc, "serve.request", self.tracer)
            self._metrics.incr("errors")
            with self._count_lock:
                self._errors += 1
            raise

    def submit(self, xpath: XPathQuery | str) -> "Future[ServeResult]":
        """Asynchronously serve one query (the open-loop client API)."""
        if self._closed or self._pool is None:
            raise ServiceError("query service is closed")
        return self._pool.submit(self._handle_counted, xpath)

    def serve(self, xpath: XPathQuery | str) -> ServeResult:
        """Serve one query and wait for its result (closed-loop API)."""
        return self.submit(xpath).result()

    # ------------------------------------------------------------------
    @property
    def latency_histogram(self):
        """The per-request latency histogram metric (read-only use)."""
        return self._latency

    def stats(self) -> ServiceStats:
        with self._count_lock:
            requests, errors = self._requests, self._errors
        return ServiceStats(requests=requests, errors=errors,
                            plan_cache=self.plan_cache.stats(),
                            latency=self._latency.snapshot())

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self.backend.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
