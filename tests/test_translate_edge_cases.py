"""Edge-case tests for the translator: anchor chains, consolidation,
and partitioned-anchor handling."""

import pytest

from repro.datasets import dblp_schema, generate_dblp, movie_schema
from repro.engine import Database
from repro.errors import TranslationError
from repro.mapping import (UnionDistribution, derive_schema, fully_split,
                           hybrid_inlining, load_documents, shared_inlining)
from repro.translate import translate_xpath
from repro.xpath import evaluate_values, parse_xpath
from repro.xsd import NodeKind


@pytest.fixture(scope="module")
def dblp():
    return dblp_schema()


@pytest.fixture(scope="module")
def dblp_doc():
    return generate_dblp(250, seed=51)


def check(schema, doc, xpath):
    db = Database()
    load_documents(db, schema, doc)
    expected = sorted(evaluate_values(parse_xpath(xpath), doc))
    rows = db.execute(translate_xpath(schema, xpath)).rows
    got = sorted(str(v) for row in rows for v in row[1:] if v is not None)
    assert got == expected, xpath


class TestAnchorChains:
    def test_predicate_on_parent_context_on_child_table(self, dblp, dblp_doc):
        """Predicate anchored at inproc, context rows in the author
        table: the translator joins upward to apply the filter."""
        schema = derive_schema(fully_split(dblp))
        check(schema, dblp_doc,
              '/dblp/inproceedings[booktitle = "VLDB"]/author')

    def test_anchor_two_levels_up(self, dblp, dblp_doc):
        schema = derive_schema(fully_split(dblp))
        # title is outlined too: predicate on inproc, context = title.
        check(schema, dblp_doc, '/dblp/inproceedings[year >= "1990"]/title')

    def test_anchor_chain_sql_contains_up_join(self, dblp):
        schema = derive_schema(fully_split(dblp))
        sql = translate_xpath(
            schema, '/dblp/inproceedings[booktitle = "VLDB"]/author')
        text = str(sql)
        assert "PID" in text
        # Context table, anchor table, and the outlined predicate leaf's
        # table all participate.
        assert {"author", "inproc", "booktitle"} <= sql.referenced_tables


class TestSharedTableConsolidation:
    def test_all_owners_covered_single_scan(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        sql = translate_xpath(schema, "//author")
        # One branch, no discrimination join.
        assert len(sql.selects) == 1
        assert len(sql.selects[0].from_tables) == 1

    def test_single_owner_discriminated(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        sql = translate_xpath(schema, "/dblp/book/author")
        # Discrimination join against the book table.
        assert "book" in sql.referenced_tables

    def test_results_match_evaluator(self, dblp, dblp_doc):
        schema = derive_schema(hybrid_inlining(dblp))
        for xpath in ("//author", "/dblp/book/author",
                      "/dblp/inproceedings/author"):
            check(schema, dblp_doc, xpath)

    def test_merged_titles_roundtrip(self, dblp, dblp_doc):
        from repro.mapping import TypeMerge
        mapping = shared_inlining(dblp)
        titles = dblp.find_tags("title")
        merged = TypeMerge(tuple(t.node_id for t in titles),
                           "title_all").validate_applied(mapping)
        schema = derive_schema(merged)
        for xpath in ("//title", "/dblp/book/title",
                      "/dblp/inproceedings/title"):
            check(schema, dblp_doc, xpath)


class TestPartitionedAnchors:
    def test_predicate_through_partitioned_anchor(self):
        """Anchor table horizontally partitioned: one branch set per
        anchor partition."""
        tree = movie_schema()
        choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
        mapping = hybrid_inlining(tree).with_distribution(
            UnionDistribution(choice_id=choice.node_id))
        schema = derive_schema(mapping)
        sql = translate_xpath(schema, '//movie[year >= "1990"]/aka_title')
        assert {"movie_box_office", "movie_seasons"} <= sql.referenced_tables

    def test_partition_pruning_through_anchor(self):
        tree = movie_schema()
        choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
        mapping = hybrid_inlining(tree).with_distribution(
            UnionDistribution(choice_id=choice.node_id))
        schema = derive_schema(mapping)
        sql = translate_xpath(schema, '//movie[seasons = "3"]/aka_title')
        assert "movie_box_office" not in sql.referenced_tables

    def test_unsupported_deep_probe_raises(self, dblp):
        # Selection path crossing two annotated levels requires a
        # multi-hop probe, which the translator rejects explicitly.
        schema = derive_schema(fully_split(dblp))
        with pytest.raises(TranslationError):
            translate_xpath(schema, '/dblp[inproceedings = "x"]/book')
