"""Result and instrumentation types shared by the search algorithms."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..mapping import MappedSchema, Mapping
from ..obs import Span
from ..physdesign import Configuration
from ..sqlast import Query
from ..workload import Workload


@dataclass
class SearchCounters:
    """Instrumentation the experiments report (Figs. 5–9)."""

    transformations_searched: int = 0
    mappings_evaluated: int = 0
    #: In-memory memo hits that returned a feasible evaluation. Cached
    #: infeasible (``None``) lookups are counted apart — they never
    #: saved an advisor call, so folding them in overstated hit rate.
    cache_hits: int = 0
    cache_hits_infeasible: int = 0
    #: Hits served from the persistent cross-run cache (warm hits).
    persistent_cache_hits: int = 0
    tuner_calls: int = 0
    optimizer_calls: int = 0
    derived_query_costs: int = 0
    #: Resilience accounting (see docs/resilience.md). A retried-and-
    #: recovered evaluation counts once under ``mappings_evaluated`` and
    #: once per re-attempt under ``fault_retries``, so a chaos run with
    #: recoverable faults keeps the fault-free evaluation counters.
    fault_retries: int = 0
    #: Candidates dropped as infeasible-by-fault (retries exhausted or
    #: deadline fired) — the search continued without them.
    faulted_evaluations: int = 0
    #: Pooled evaluations abandoned by the per-evaluation deadline.
    timeouts: int = 0
    #: Times the evaluation pool degraded a backend tier
    #: (process -> thread -> in-process).
    pool_degradations: int = 0
    checkpoints_written: int = 0
    wall_time: float = 0.0

    def merge(self, other: "SearchCounters") -> None:
        self.transformations_searched += other.transformations_searched
        self.mappings_evaluated += other.mappings_evaluated
        self.cache_hits += other.cache_hits
        self.cache_hits_infeasible += other.cache_hits_infeasible
        self.persistent_cache_hits += other.persistent_cache_hits
        self.tuner_calls += other.tuner_calls
        self.optimizer_calls += other.optimizer_calls
        self.derived_query_costs += other.derived_query_costs
        self.fault_retries += other.fault_retries
        self.faulted_evaluations += other.faulted_evaluations
        self.timeouts += other.timeouts
        self.pool_degradations += other.pool_degradations
        self.checkpoints_written += other.checkpoints_written
        self.wall_time += other.wall_time


@dataclass
class DesignResult:
    """Output of one design search: the chosen mapping + configuration."""

    algorithm: str
    workload: Workload
    mapping: Mapping
    schema: MappedSchema
    configuration: Configuration
    sql_queries: list[tuple[Query, float]]
    estimated_cost: float
    counters: SearchCounters
    rounds: int = 0
    applied: list[str] = field(default_factory=list)
    #: Root span of the search's trace; ``None`` unless the search ran
    #: with an enabled :class:`repro.obs.Tracer`.
    trace: Span | None = None

    def describe(self) -> str:
        lines = [
            f"algorithm: {self.algorithm}",
            f"workload: {self.workload.name}",
            f"estimated cost: {self.estimated_cost:.1f}",
            f"rounds: {self.rounds}",
            f"transformations applied: {self.applied or ['(none)']}",
            "relational schema:",
        ]
        lines += ["  " + line for line in self.schema.describe().splitlines()]
        lines.append("physical design:")
        lines += ["  " + line
                  for line in self.configuration.describe().splitlines()]
        return "\n".join(lines)


class Stopwatch:
    """Tiny context manager adding elapsed time to a counters object."""

    def __init__(self, counters: SearchCounters):
        self.counters = counters

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.counters.wall_time += time.perf_counter() - self._start
        return False
