"""Intraprocedural call graph and lock model for one module.

The concurrency pass needs three structural facts about a module:

* which functions exist (methods get ``Class.method`` qualnames, nested
  functions ``outer.inner``),
* which functions call which — resolved *within the module only*:
  ``self.foo(...)`` to a method of the enclosing class, ``foo(...)`` to
  an enclosing nested function or a module-level function. Calls
  through other objects (``self.backend.execute(...)``) are opaque and
  produce no edge;
* where work is handed to other threads: the first positional argument
  of any ``*.submit(fn, ...)`` call and the ``target=`` keyword of any
  ``Thread(...)`` construction are *submit roots* — everything
  reachable from them runs on a pool/worker thread.

Locks are identified structurally: a ``with`` context expression whose
final name contains ``"lock"`` (``with self._conn_lock:``,
``with _REGISTRY_LOCK:``). Lock node ids are ``Class.attr`` for
instance locks and ``module.name`` for module-level ones, so the
cross-module lock-order graph (:class:`LockOrderGraph`) can merge
acquisitions of the same lock from different files.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from .walker import SourceModule

__all__ = ["FunctionUnit", "LockOrderGraph", "ModuleCallGraph",
           "lock_name_of"]


def lock_name_of(expr: ast.expr) -> str | None:
    """The trailing identifier of a lock-like expression, else None."""
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    else:
        return None
    return name if "lock" in name.lower() else None


@dataclass
class FunctionUnit:
    """One function/method definition inside a module."""

    qualname: str                      # e.g. "QueryService._handle"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None             # enclosing class, if any
    scope: tuple[str, ...]             # enclosing function qualnames


@dataclass
class LockSite:
    """One ``A held while acquiring B`` observation."""

    source: str                        # lock node id held
    target: str                        # lock node id acquired under it
    location: str                      # "path:line" of the acquisition


class ModuleCallGraph:
    """Functions, call edges, submit roots, and lock use of one module."""

    def __init__(self, module: SourceModule):
        self.module = module
        self.functions: dict[str, FunctionUnit] = {}
        self.edges: dict[str, set[str]] = {}
        self.submit_roots: dict[str, str] = {}   # qualname -> site location
        #: locks a function acquires directly: qualname -> set of lock ids
        self.acquires: dict[str, set[str]] = {}
        self._collect_functions(module.tree, class_name=None, scope=())
        for unit in self.functions.values():
            self._collect_calls(unit)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _collect_functions(self, node: ast.AST, class_name: str | None,
                           scope: tuple[str, ...]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = ".".join(scope + (child.name,)) if scope else (
                    f"{class_name}.{child.name}" if class_name
                    else child.name)
                self.functions[qual] = FunctionUnit(
                    qualname=qual, node=child, class_name=class_name,
                    scope=scope)
                self._collect_functions(child, class_name,
                                        scope + (qual,) if not scope
                                        else scope + (child.name,))
            elif isinstance(child, ast.ClassDef):
                self._collect_functions(child, child.name, ())
            elif not isinstance(child, (ast.FunctionDef,
                                        ast.AsyncFunctionDef, ast.Lambda)):
                self._collect_functions(child, class_name, scope)

    def _own_statements(self, unit: FunctionUnit) -> list[ast.AST]:
        """Every node of ``unit`` excluding nested function bodies."""
        out: list[ast.AST] = []
        stack: list[ast.AST] = list(unit.node.body)
        while stack:
            node = stack.pop()
            out.append(node)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested defs are their own units
            stack.extend(ast.iter_child_nodes(node))
        return out

    def resolve_call(self, unit: FunctionUnit,
                     func: ast.expr) -> str | None:
        """Resolve a called/passed callable to a module qualname."""
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in ("self", "cls") and unit.class_name:
            qual = f"{unit.class_name}.{func.attr}"
            return qual if qual in self.functions else None
        if isinstance(func, ast.Name):
            # innermost enclosing nested scope first, then module level
            for depth in range(len(unit.scope), 0, -1):
                qual = ".".join(unit.scope[:depth] + (func.id,))
                if qual in self.functions:
                    return qual
            nested = f"{unit.qualname}.{func.id}"
            if nested in self.functions:
                return nested
            if func.id in self.functions:
                return func.id
        return None

    def _collect_calls(self, unit: FunctionUnit) -> None:
        edges = self.edges.setdefault(unit.qualname, set())
        acquires = self.acquires.setdefault(unit.qualname, set())
        for node in self._own_statements(unit):
            if isinstance(node, ast.Call):
                target = self.resolve_call(unit, node.func)
                if target is not None:
                    edges.add(target)
                self._note_submit(unit, node)
            elif isinstance(node, ast.With):
                for item in node.items:
                    lock = self.lock_id(unit, item.context_expr)
                    if lock is not None:
                        acquires.add(lock)

    def _note_submit(self, unit: FunctionUnit, call: ast.Call) -> None:
        """Record submit/Thread(target=...) roots found in this call."""
        candidates: list[ast.expr] = []
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr == "submit" and call.args:
            candidates.append(call.args[0])
        callee_name = (call.func.attr if isinstance(call.func, ast.Attribute)
                       else call.func.id if isinstance(call.func, ast.Name)
                       else "")
        if callee_name == "Thread":
            for keyword in call.keywords:
                if keyword.arg == "target":
                    candidates.append(keyword.value)
        for candidate in candidates:
            qual = self.resolve_call(unit, candidate)
            if qual is not None:
                self.submit_roots.setdefault(
                    qual, self.module.location(call))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def lock_id(self, unit: FunctionUnit, expr: ast.expr) -> str | None:
        """Node id for a lock-like with-expression, else None."""
        name = lock_name_of(expr)
        if name is None:
            return None
        if isinstance(expr, ast.Attribute) and \
                isinstance(expr.value, ast.Name) and \
                expr.value.id in ("self", "cls"):
            owner = unit.class_name or self.module.name
            return f"{owner}.{name}"
        if isinstance(expr, ast.Name):
            return f"{self.module.name}.{name}"
        return None

    def reachable_from_submit(self) -> dict[str, str]:
        """qualname -> submit-site location, transitively closed."""
        reached: dict[str, str] = {}
        frontier = list(self.submit_roots.items())
        while frontier:
            qual, site = frontier.pop()
            if qual in reached:
                continue
            reached[qual] = site
            for callee in sorted(self.edges.get(qual, ())):
                if callee not in reached:
                    frontier.append((callee, site))
        return reached

    def transitive_acquires(self) -> dict[str, set[str]]:
        """qualname -> every lock it may acquire, following call edges."""
        closure = {qual: set(locks)
                   for qual, locks in self.acquires.items()}
        changed = True
        while changed:
            changed = False
            for qual, callees in self.edges.items():
                bucket = closure.setdefault(qual, set())
                for callee in callees:
                    extra = closure.get(callee, set()) - bucket
                    if extra:
                        bucket.update(extra)
                        changed = True
        return closure


class LockOrderGraph:
    """Cross-module ``held -> acquired`` lock graph with cycle search."""

    def __init__(self) -> None:
        self.edges: dict[str, set[str]] = {}
        self.sites: list[LockSite] = []

    def add(self, source: str, target: str, location: str) -> None:
        if source == target:
            # re-entry of the same (non-reentrant) lock is a deadlock on
            # its own; keep the self-edge so cycles() reports it.
            pass
        self.edges.setdefault(source, set()).add(target)
        self.edges.setdefault(target, set())
        self.sites.append(LockSite(source, target, location))

    def observe(self, graph: ModuleCallGraph) -> None:
        """Fold one module's nested acquisitions into the graph."""
        transitive = graph.transitive_acquires()
        for unit in graph.functions.values():
            self._observe_function(graph, unit, transitive)

    def _observe_function(self, graph: ModuleCallGraph, unit: FunctionUnit,
                          transitive: dict[str, set[str]]) -> None:
        def visit(node: ast.AST, held: tuple[str, ...]) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not unit.node:
                return
            if isinstance(node, ast.With):
                inner = held
                for item in node.items:
                    lock = graph.lock_id(unit, item.context_expr)
                    if lock is not None:
                        for holder in inner:
                            self.add(holder, lock,
                                     graph.module.location(item.context_expr))
                        inner = inner + (lock,)
                for stmt in node.body:
                    visit(stmt, inner)
                return
            if isinstance(node, ast.Call) and held:
                callee = graph.resolve_call(unit, node.func)
                if callee is not None:
                    for lock in sorted(transitive.get(callee, ())):
                        for holder in held:
                            if holder != lock:
                                self.add(holder, lock,
                                         graph.module.location(node))
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for stmt in unit.node.body:
            visit(stmt, ())

    # ------------------------------------------------------------------
    def site_for(self, source: str, target: str) -> str:
        for site in self.sites:
            if site.source == source and site.target == target:
                return site.location
        return ""

    def cycles(self) -> list[list[str]]:
        """Every distinct lock-order cycle, as node-id paths.

        Deterministic: nodes are explored in sorted order and each
        cycle is rotated so its smallest node id comes first.
        """
        found: list[list[str]] = []
        seen_keys: set[tuple[str, ...]] = set()

        def canonical(path: list[str]) -> tuple[str, ...]:
            pivot = path.index(min(path))
            return tuple(path[pivot:] + path[:pivot])

        def dfs(node: str, stack: list[str], on_stack: set[str]) -> None:
            for nxt in sorted(self.edges.get(node, ())):
                if nxt in on_stack:
                    cycle = stack[stack.index(nxt):]
                    key = canonical(cycle)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        found.append(list(key))
                    continue
                stack.append(nxt)
                on_stack.add(nxt)
                dfs(nxt, stack, on_stack)
                on_stack.discard(nxt)
                stack.pop()

        for start in sorted(self.edges):
            dfs(start, [start], {start})
        return found
