"""Fig. 9 — effect of cost derivation on DBLP.

Paper shapes asserted: cost derivation speeds the search up (paper:
4-10x) with little quality loss (paper: up to 3% of the hybrid-inlining
cost).
"""

import statistics

from conftest import QUERIES

from repro.experiments import fig9_tables, run_fig9


def test_fig9_cost_derivation(benchmark, dblp_bundle, emit):
    generator = dblp_bundle.workload_generator(seed=45)
    workloads = [
        generator.generate(QUERIES * 2),
        generator.generate(QUERIES * 2, selectivity=(0.5, 1.0),
                           projections=(5, 20)),
    ]
    rows = benchmark.pedantic(
        lambda: run_fig9(dblp_bundle, workloads), rounds=1, iterations=1)
    emit(fig9_tables(rows, dblp_bundle.name))
    speedups = [r.speedup for r in rows]
    # The paper reports 4-10x; here the advisor's per-query cost cache
    # already absorbs most of the redundant optimizer work, so the
    # residual speed-up is smaller but must stay positive on average.
    assert statistics.mean(speedups) > 1.05, \
        "cost derivation must reduce search time on average"
    for row in rows:
        assert row.quality_with <= row.quality_without + 0.15, \
            "cost derivation must not cost much quality"
