"""Data-plane scaling: shred, bulk-load, and query throughput vs N.

The other benchmarks measure the advisor and the serving layer at a
fixed, small data size. This one measures the *data plane* as the
document grows: for each publication count N it streams a lazy
synthetic DBLP document through the shredder (``shred_typed_batches``),
bulk-loads the same stream into a file-backed SQLite database
(chunked ``executemany`` inside sized transactions, WAL journaling),
and times a translated XPath selection against the loaded database.
Throughput (rows/s) and peak RSS go to ``BENCH_scale.json`` so the
scaling trajectory is tracked across PRs.

The full run covers N = 10^4, 10^5, 10^6. The ``--smoke`` variant used
by CI runs one small N with a small batch size and asserts that peak
RSS growth stays bounded — the regression guard for the streaming
path's bounded-memory contract (docs/scaling.md).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scale.py          # full
    PYTHONPATH=src python benchmarks/bench_scale.py --smoke  # CI
"""

import json
import resource
import sys
import tempfile
from pathlib import Path
from time import perf_counter

from repro.backends import SQLiteBackend
from repro.datasets import dblp_schema, generate_dblp
from repro.mapping import derive_schema, hybrid_inlining, shred_typed_batches
from repro.translate import Translator
from repro.xpath import parse_xpath

SEED = 7
FULL_NS = (10_000, 100_000, 1_000_000)
SMOKE_N = 30_000
SMOKE_BATCH = 2_000
# Peak RSS ceiling for the smoke run. The whole point of the streaming
# path is that memory scales with batch size, not N; 30k publications
# eagerly materialized plus eager shredded rows would blow well past
# this, while the streaming path stays near the interpreter baseline.
SMOKE_RSS_LIMIT_MB = 120.0
QUERY = '//inproceedings[booktitle = "VLDB"]/title'
QUERY_REPEATS = 5
BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"


def _peak_rss_mb() -> float:
    """Process-lifetime peak RSS in MB (ru_maxrss is KB on Linux)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # reported in bytes there
        peak /= 1024
    return peak / 1024


def _measure(n: int, batch_size: int, db_dir: Path) -> dict:
    """Shred, load, and query one lazy DBLP document of N publications."""
    schema = derive_schema(hybrid_inlining(dblp_schema()))

    t0 = perf_counter()
    shredded_rows = 0
    for _name, batch in shred_typed_batches(
            schema, generate_dblp(n, seed=SEED, stream=True), batch_size):
        shredded_rows += len(batch)
    shred_s = perf_counter() - t0

    db_path = db_dir / f"scale_{n}.db"
    backend = SQLiteBackend(str(db_path))
    t0 = perf_counter()
    backend.load(schema, generate_dblp(n, seed=SEED, stream=True),
                 batch_size=batch_size)
    load_s = perf_counter() - t0
    loaded_rows = sum(backend.row_counts.values())

    query = Translator(schema).translate(parse_xpath(QUERY))
    t0 = perf_counter()
    for _ in range(QUERY_REPEATS):
        hits = len(backend.execute(query))
    query_s = (perf_counter() - t0) / QUERY_REPEATS
    backend.close()

    return {
        "n_publications": n,
        "batch_size": batch_size,
        "rows": loaded_rows,
        "shred": {"seconds": round(shred_s, 3),
                  "rows_per_s": round(shredded_rows / shred_s)},
        "load": {"seconds": round(load_s, 3),
                 "rows_per_s": round(loaded_rows / load_s),
                 "db_bytes": db_path.stat().st_size},
        "query": {"xpath": QUERY, "hits": hits,
                  "seconds": round(query_s, 4)},
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }


def _run(ns: tuple[int, ...], batch_size: int) -> dict:
    cells = []
    with tempfile.TemporaryDirectory(prefix="bench_scale_") as tmp:
        for n in ns:
            cell = _measure(n, batch_size, Path(tmp))
            cells.append(cell)
            print(f"N={n:>9,}: shred {cell['shred']['rows_per_s']:>7,} "
                  f"rows/s, load {cell['load']['rows_per_s']:>7,} rows/s, "
                  f"query {cell['query']['seconds'] * 1e3:.1f}ms "
                  f"({cell['query']['hits']} hits), "
                  f"peak RSS {cell['peak_rss_mb']:.0f}MB")
    return {"benchmark": "scale", "seed": SEED, "dataset": "dblp",
            "results": cells}


def _assert_sane(payload: dict) -> None:
    for cell in payload["results"]:
        assert cell["shred"]["rows_per_s"] > 0
        # Shredding and loading the same stream must agree on row count.
        assert cell["rows"] > cell["n_publications"]
        assert cell["query"]["hits"] > 0, "VLDB selection found no rows"


def test_scale_throughput(benchmark, emit):
    payload = benchmark.pedantic(
        lambda: _run((SMOKE_N,), SMOKE_BATCH), rounds=1, iterations=1)
    _assert_sane(payload)
    emit(json.dumps(payload["results"], indent=2))


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    payload = _run((SMOKE_N,) if smoke else FULL_NS,
                   SMOKE_BATCH if smoke else 10_000)
    _assert_sane(payload)
    if smoke:
        peak = payload["results"][-1]["peak_rss_mb"]
        assert peak < SMOKE_RSS_LIMIT_MB, (
            f"peak RSS {peak:.0f}MB exceeds the {SMOKE_RSS_LIMIT_MB:.0f}MB "
            f"streaming bound — the data plane is buffering more than its "
            f"batch size somewhere")
        print(f"peak RSS {peak:.0f}MB within the "
              f"{SMOKE_RSS_LIMIT_MB:.0f}MB bound")
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    print(f"wrote {BENCH_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
