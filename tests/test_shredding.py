"""Unit tests for the shredder and derived statistics."""

import pytest

from repro.datasets import (dblp_schema, generate_dblp, generate_movies,
                            movie_schema)
from repro.engine import Database
from repro.errors import ShreddingError
from repro.mapping import (Shredder, UnionDistribution, collect_statistics,
                           derive_schema, derive_table_stats, fully_split,
                           hybrid_inlining, load_documents)
from repro.xmlkit import parse
from repro.xsd import NodeKind


@pytest.fixture(scope="module")
def dblp_doc():
    return generate_dblp(400, seed=3)


@pytest.fixture(scope="module")
def movie_doc():
    return generate_movies(400, seed=3)


def count_elements(doc, tag):
    return sum(1 for _ in doc.root.descendants(tag))


class TestShredder:
    def test_row_counts_match_document(self, dblp_doc):
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        rows = Shredder(schema).shred(dblp_doc)
        assert len(rows["inproc"]) == count_elements(dblp_doc,
                                                     "inproceedings")
        assert len(rows["book"]) == count_elements(dblp_doc, "book")
        assert len(rows["author"]) == count_elements(dblp_doc, "author")
        assert len(rows["dblp"]) == 1

    def test_ids_globally_unique(self, dblp_doc):
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        rows = Shredder(schema).shred(dblp_doc)
        ids = [row[0] for table_rows in rows.values() for row in table_rows]
        assert len(ids) == len(set(ids))

    def test_pid_references_parent(self, dblp_doc):
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        rows = Shredder(schema).shred(dblp_doc)
        pub_ids = {row[0] for row in rows["inproc"]} | \
                  {row[0] for row in rows["book"]}
        assert all(row[1] in pub_ids for row in rows["author"])

    def test_optional_leaf_null_when_absent(self):
        tree = dblp_schema()
        schema = derive_schema(hybrid_inlining(tree))
        doc = parse(
            "<dblp><inproceedings><title>T</title><booktitle>V</booktitle>"
            "<year>2000</year><author>A</author><pages>1-2</pages>"
            "</inproceedings></dblp>")
        rows = Shredder(schema).shred(doc)
        inproc = schema.group("inproc").partitions[0]
        row = dict(zip(inproc.column_names, rows["inproc"][0]))
        assert row["ee"] is None
        assert row["title"] == "T"

    def test_repetition_split_overflow(self):
        tree = dblp_schema()
        author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = tree.parent(author)
        schema = derive_schema(hybrid_inlining(tree).with_split(rep.node_id, 2))
        doc = parse(
            "<dblp><inproceedings><title>T</title><booktitle>V</booktitle>"
            "<year>2000</year><author>A1</author><author>A2</author>"
            "<author>A3</author><author>A4</author><pages>1-2</pages>"
            "</inproceedings></dblp>")
        rows = Shredder(schema).shred(doc)
        inproc = schema.group("inproc").partitions[0]
        row = dict(zip(inproc.column_names, rows["inproc"][0]))
        assert row["author_1"] == "A1"
        assert row["author_2"] == "A2"
        overflow = [r[-1] for r in rows["author"]]
        assert overflow == ["A3", "A4"]

    def test_partition_routing(self, movie_doc):
        tree = movie_schema()
        choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
        schema = derive_schema(hybrid_inlining(tree).with_distribution(
            UnionDistribution(choice_id=choice.node_id)))
        rows = Shredder(schema).shred(movie_doc)
        n_tv = sum(1 for m in movie_doc.root.children
                   if m.find("seasons") is not None)
        assert len(rows["movie_seasons"]) == n_tv
        assert len(rows["movie_box_office"]) == \
            len(movie_doc.root.children) - n_tv

    def test_unexpected_element_rejected(self):
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        doc = parse("<dblp><bogus/></dblp>")
        with pytest.raises(ShreddingError):
            Shredder(schema).shred(doc)

    def test_wrong_root_rejected(self):
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        with pytest.raises(ShreddingError):
            Shredder(schema).shred(parse("<movies/>"))

    def test_repeated_unsplit_leaf_rejected(self):
        # Regression: an un-split leaf repeating inside one instance used
        # to silently overwrite the column (last-wins data loss).
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        doc = parse(
            "<dblp><inproceedings><title>T1</title><title>T2</title>"
            "<booktitle>V</booktitle><year>2000</year><author>A</author>"
            "<pages>1-2</pages></inproceedings></dblp>")
        with pytest.raises(ShreddingError, match="more than once"):
            Shredder(schema).shred(doc)

    def test_reused_shredder_matches_fresh_instance(self, dblp_doc):
        # Regression: _next_id used to persist across shred() calls, so
        # a reused Shredder diverged from shred_typed_rows' fresh one.
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        shredder = Shredder(schema)
        first = shredder.shred(dblp_doc)
        second = shredder.shred(dblp_doc)
        assert first == second
        assert second == Shredder(schema).shred(dblp_doc)

    def test_continue_ids_numbers_above_previous_call(self, dblp_doc):
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        shredder = Shredder(schema)
        first = shredder.shred(dblp_doc)
        continued = shredder.shred(dblp_doc, continue_ids=True)
        max_first = max(row[0] for rows in first.values() for row in rows)
        min_continued = min(row[0] for rows in continued.values()
                            for row in rows)
        assert min_continued == max_first + 1

    def test_load_documents_types_values(self, dblp_doc):
        db = Database()
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        load_documents(db, schema, dblp_doc)
        table = db.catalog.table("inproc")
        year_pos = table.column_position("year")
        assert all(isinstance(r[year_pos], int) for r in table.rows)


class TestCollectedStats:
    def test_instance_counts(self, dblp_doc):
        tree = dblp_schema()
        stats = collect_statistics(tree, dblp_doc)
        inproc = tree.find_tag_by_path(("dblp", "inproceedings"))
        assert stats.instances(inproc.node_id) == \
            count_elements(dblp_doc, "inproceedings")

    def test_cardinality_histogram(self, dblp_doc):
        tree = dblp_schema()
        stats = collect_statistics(tree, dblp_doc)
        author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = tree.parent(author)
        hist = stats.cardinality[rep.node_id]
        inproc_count = count_elements(dblp_doc, "inproceedings")
        assert sum(hist.values()) == inproc_count
        assert stats.total_occurrences(rep.node_id) == sum(
            len(p.find_all("author"))
            for p in dblp_doc.root.descendants("inproceedings"))

    def test_overflow_count(self, dblp_doc):
        tree = dblp_schema()
        stats = collect_statistics(tree, dblp_doc)
        author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = tree.parent(author)
        expected = sum(max(0, len(p.find_all("author")) - 5)
                       for p in dblp_doc.root.descendants("inproceedings"))
        assert stats.overflow_count(rep.node_id, 5) == expected

    def test_suggest_split_count_dblp_authors(self, dblp_doc):
        # Section 4.6: 99% of publications have <= 5 authors, so k = 5
        # (or smaller if coverage is reached earlier).
        tree = dblp_schema()
        stats = collect_statistics(tree, dblp_doc)
        author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = tree.parent(author)
        k = stats.suggest_split_count(rep.node_id, cmax=5, coverage=0.99)
        assert k == 5

    def test_suggest_split_none_for_uniform_large(self):
        from collections import Counter
        from repro.mapping.stats import CollectedStats
        stats = CollectedStats(
            cardinality={1: Counter({i: 10 for i in range(10, 30)})})
        assert stats.suggest_split_count(1, cmax=5, coverage=0.8) is None

    def test_joint_presence_signatures(self, movie_doc):
        tree = movie_schema()
        stats = collect_statistics(tree, movie_doc)
        movie = tree.find_tag_by_path(("movies", "movie"))
        joint = stats.joint[movie.node_id]
        assert sum(joint.values()) == len(movie_doc.root.children)


class TestDerivedStats:
    def test_rows_match_shredded_exactly(self, movie_doc):
        tree = movie_schema()
        choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
        year_opt = tree.parent(
            tree.find_tag_by_path(("movies", "movie", "year")))
        rating_opt = tree.parent(
            tree.find_tag_by_path(("movies", "movie", "avg_rating")))
        aka = tree.find_tag_by_path(("movies", "movie", "aka_title"))
        mapping = (hybrid_inlining(tree)
                   .with_split(tree.parent(aka).node_id, 2)
                   .with_distribution(UnionDistribution(choice_id=choice.node_id))
                   .with_distribution(UnionDistribution(optional_ids=frozenset(
                       {year_opt.node_id, rating_opt.node_id}))))
        schema = derive_schema(mapping)
        shredded = Shredder(schema).shred(movie_doc)
        stats = collect_statistics(tree, movie_doc)
        derived = derive_table_stats(schema, stats)
        for table_name, rows in shredded.items():
            assert derived[table_name].row_count == len(rows), table_name

    def test_null_counts_for_optional_column(self, movie_doc):
        tree = movie_schema()
        schema = derive_schema(hybrid_inlining(tree))
        stats = collect_statistics(tree, movie_doc)
        derived = derive_table_stats(schema, stats)
        movie_stats = derived["movie"]
        column = movie_stats.column("year")
        n_with_year = count_elements(movie_doc, "year")
        assert column.row_count - column.null_count == n_with_year

    def test_split_column_null_counts(self, dblp_doc):
        tree = dblp_schema()
        author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = tree.parent(author)
        schema = derive_schema(hybrid_inlining(tree).with_split(rep.node_id, 3))
        stats = collect_statistics(tree, dblp_doc)
        derived = derive_table_stats(schema, stats)
        inproc = derived["inproc"]
        pubs = list(dblp_doc.root.descendants("inproceedings"))
        for i in (1, 2, 3):
            expected = sum(1 for p in pubs if len(p.find_all("author")) >= i)
            column = inproc.column(f"author_{i}")
            assert column.row_count - column.null_count == expected

    def test_derived_matches_analyzed(self, dblp_doc):
        """Derived stats must closely track stats computed from loaded data."""
        tree = dblp_schema()
        schema = derive_schema(hybrid_inlining(tree))
        db = Database()
        load_documents(db, schema, dblp_doc)
        collected = collect_statistics(tree, dblp_doc)
        derived = derive_table_stats(schema, collected)
        for table_name in ("inproc", "author", "book"):
            analyzed = db.stats.table(table_name)
            assert derived[table_name].row_count == analyzed.row_count
