"""Table 1 — characteristics of the DBLP and Movie data sets."""

from repro.experiments import TABLE1_HEADERS, characterize, format_table


def test_table1_characteristics(benchmark, dblp_bundle, movie_bundle, emit):
    rows = benchmark.pedantic(
        lambda: [characterize(dblp_bundle), characterize(movie_bundle)],
        rounds=1, iterations=1)
    emit(format_table(
        "Table 1 — characteristics of data used in experiments",
        TABLE1_HEADERS, [r.row() for r in rows],
        note="the paper reports 271 transformations for (full) DBLP; this "
             "schema is the Fig. 1a fragment, so absolute counts are "
             "smaller while the non-subsumed fraction (~half) matches"))
    dblp, movie = rows
    # Shape assertions (Table 1's structural claims).
    for r in rows:
        assert r.non_subsumed < r.transformations
        assert r.non_subsumed >= r.transformations * 0.2
    assert dblp.shared_types >= 2      # author and title are shared
    assert movie.unions >= 3           # year?, avg_rating?, (box|seasons)
    assert dblp.transformations > movie.transformations  # bigger schema
