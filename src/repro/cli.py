"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``validate``   check XML documents against an XSD/DTD schema
``shred``      shred XML into relational tables (optionally dump CSV)
``query``      run an XPath query through translate + execute
``advise``     run the design search on a workload file
``experiment`` run one of the paper's experiments at a chosen scale
``calibrate``  rank-correlate cost estimates with measured SQLite times
``compare``    cross-check two execution backends (schemas, rows, queries)
``serve``      long-lived query service (plan cache + worker pool)
``loadgen``    seeded closed/open-loop load harness against the service

Workload files for ``advise`` contain one entry per line::

    # comments and blank lines are skipped
    //inproceedings[booktitle = "VLDB"]/(title | author)
    3.5 | //inproceedings[year >= "1995"]/title      # weighted query
    insert 0.5 | //inproceedings                      # insert load
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from .engine import Database
from .errors import ReproError
from .obs import NULL_TRACER, Tracer, render_tree, to_json
from .mapping import (DEFAULT_BATCH_SIZE, derive_schema, fully_split,
                      hybrid_inlining, load_documents, shared_inlining,
                      collect_statistics)
from .search import GreedySearch, NaiveGreedySearch, TwoStepSearch
from .sqlast import render
from .translate import translate_xpath
from .workload import Workload
from .xmlkit import parse_file
from .xsd import SchemaTree, parse_dtd, parse_xsd_file, validate

MAPPINGS = {
    "hybrid": hybrid_inlining,
    "shared": shared_inlining,
    "fully-split": fully_split,
}

ALGORITHMS = {
    "greedy": GreedySearch,
    "naive-greedy": NaiveGreedySearch,
    "two-step": TwoStepSearch,
}


def _load_schema(args) -> SchemaTree:
    if args.schema:
        return parse_xsd_file(args.schema)
    if args.dtd:
        if not args.root:
            raise SystemExit("--dtd requires --root <element>")
        with open(args.dtd, encoding="utf-8") as handle:
            return parse_dtd(handle.read(), root=args.root)
    raise SystemExit("provide --schema <file.xsd> or --dtd <file.dtd>")


def _schema_arguments(parser: argparse.ArgumentParser,
                      required: bool = True) -> None:
    parser.add_argument("--schema", help="XSD schema file")
    parser.add_argument("--dtd", help="DTD file (requires --root)")
    parser.add_argument("--root", help="root element name for --dtd")
    parser.add_argument("--xml", required=required, nargs="+",
                        help="XML document file(s)")


def _mapping_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mapping", choices=sorted(MAPPINGS),
                        default="hybrid",
                        help="logical mapping preset (default: hybrid)")


def _load_and_shred(args, out=None):
    tree = _load_schema(args)
    docs = [parse_file(path) for path in args.xml]
    for doc in docs:
        validate(doc, tree)
    mapping = MAPPINGS[args.mapping](tree)
    schema = derive_schema(mapping)
    db = Database()
    load_documents(db, schema, docs)
    return tree, docs, schema, db


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def cmd_validate(args, out=None) -> int:
    out = out or sys.stdout
    tree = _load_schema(args)
    failures = 0
    for path in args.xml:
        try:
            validate(parse_file(path), tree)
            print(f"{path}: OK", file=out)
        except ReproError as exc:
            failures += 1
            print(f"{path}: INVALID — {exc}", file=out)
    return 1 if failures else 0


def _shred_dataset(args, out) -> int:
    """Stream-shred a bundled dataset at scale: per-table row counts
    (and optional CSV dumps) with memory bounded by the batch size."""
    from .datasets import (dblp_schema, generate_dblp, generate_movies,
                           movie_schema)
    from .mapping import shred_typed_batches
    if args.dataset == "dblp":
        tree = dblp_schema()
        docs = generate_dblp(args.scale, seed=args.seed, stream=args.stream)
    else:
        tree = movie_schema()
        docs = generate_movies(args.scale, seed=args.seed,
                               stream=args.stream)
    schema = derive_schema(MAPPINGS[args.mapping](tree))
    print("relational schema:", file=out)
    print(schema.describe(), file=out)
    print(file=out)
    counts = {name: 0 for name in schema.table_names}
    handles: list = []
    writers: dict[str, csv.writer] = {}
    try:
        if args.out:
            out_dir = Path(args.out)
            out_dir.mkdir(parents=True, exist_ok=True)
            for table in schema.to_engine_tables():
                handle = open(out_dir / f"{table.name}.csv", "w",
                              newline="", encoding="utf-8")
                handles.append(handle)
                writer = csv.writer(handle)
                writer.writerow(table.column_names())
                writers[table.name] = writer
        for name, batch in shred_typed_batches(schema, docs,
                                               args.batch_size):
            counts[name] += len(batch)
            if writers:
                writers[name].writerows(batch)
    finally:
        for handle in handles:
            handle.close()
    for name in sorted(counts):
        print(f"{name}: {counts[name]} rows", file=out)
    if args.out:
        print(f"\nwrote CSV files to {args.out}/", file=out)
    return 0


def cmd_shred(args, out=None) -> int:
    out = out or sys.stdout
    if args.dataset:
        return _shred_dataset(args, out)
    if not args.xml:
        raise SystemExit("provide --xml <file...> or --dataset")
    tree, docs, schema, db = _load_and_shred(args, out)
    print("relational schema:", file=out)
    print(schema.describe(), file=out)
    print(file=out)
    for name in sorted(db.catalog.tables):
        table = db.catalog.table(name)
        print(f"{name}: {table.row_count} rows "
              f"({table.size_bytes / 1024:.1f} KB)", file=out)
    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for name, table in db.catalog.tables.items():
            with open(out_dir / f"{name}.csv", "w", newline="",
                      encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(table.column_names())
                writer.writerows(table.rows or [])
        print(f"\nwrote CSV files to {out_dir}/", file=out)
    return 0


def cmd_query(args, out=None) -> int:
    out = out or sys.stdout
    tree, docs, schema, db = _load_and_shred(args, out)
    sql = translate_xpath(schema, args.xpath)
    print("SQL:", file=out)
    print(render(sql, indent="  "), file=out)
    if args.explain:
        print("\nplan:", file=out)
        print(db.explain(sql).explain(), file=out)
    result = db.execute(sql)
    print(f"\n{len(result.rows)} rows (cost {result.cost:.2f}):", file=out)
    limit = args.limit if args.limit > 0 else len(result.rows)
    for row in result.rows[:limit]:
        print("  " + "\t".join("NULL" if v is None else str(v)
                               for v in row), file=out)
    if len(result.rows) > limit:
        print(f"  ... {len(result.rows) - limit} more", file=out)
    return 0


def parse_workload_file(path: str, name: str = "workload") -> Workload:
    """Parse the advise command's workload file format."""
    workload = Workload(name)
    with open(path, encoding="utf-8") as handle:
        for raw in handle:
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            weight = 1.0
            is_update = False
            if line.lower().startswith("insert "):
                is_update = True
                line = line[len("insert "):].strip()
            if "|" in line:
                head, rest = line.split("|", 1)
                try:
                    weight = float(head.strip())
                    line = rest.strip()
                except ValueError:
                    pass  # the '|' belongs to a projection group
            if is_update:
                workload.add_update(line, weight)
            else:
                workload.add(line, weight)
    if not workload.queries:
        raise SystemExit(f"workload file {path!r} contains no queries")
    return workload


def cmd_advise(args, out=None) -> int:
    out = out or sys.stdout
    if args.faults:
        from .resilience import install_fault_plan
        install_fault_plan(args.faults)
    if args.resume and not args.checkpoint_dir:
        raise SystemExit("--resume requires --checkpoint-dir")
    tree = _load_schema(args)
    docs = [parse_file(path) for path in args.xml]
    for doc in docs:
        validate(doc, tree)
    stats = collect_statistics(tree, docs)
    workload = parse_workload_file(args.workload)
    storage_bound = (args.storage_bound_mb * 1024 * 1024
                     if args.storage_bound_mb else None)
    search_cls = ALGORITHMS[args.algorithm]
    tracing = args.trace or args.trace_json
    tracer = Tracer() if tracing else NULL_TRACER
    kwargs = {"storage_bound": storage_bound, "tracer": tracer,
              "jobs": args.jobs}
    if args.cache_dir:
        if args.algorithm == "naive-greedy":
            # Naive-Greedy deliberately re-evaluates duplicates (the
            # paper's baseline has no caching); a persistent cache
            # would change what it measures.
            print("note: --cache-dir is ignored for naive-greedy",
                  file=out)
        else:
            from .search import EvaluationCache
            kwargs["cache"] = EvaluationCache(args.cache_dir,
                                              tracer=tracer)
    if args.checkpoint_dir:
        if args.algorithm == "two-step":
            # Two-step's logical step re-enumerates from scratch each
            # round with no costly per-round state worth snapshotting.
            print("note: --checkpoint-dir is ignored for two-step",
                  file=out)
        else:
            from .resilience import CheckpointStore
            kwargs["checkpoint"] = CheckpointStore(args.checkpoint_dir,
                                                   tracer=tracer)
            kwargs["checkpoint_every"] = args.checkpoint_every
            kwargs["resume"] = args.resume
    search = search_cls(tree, workload, stats, **kwargs)
    result = search.run()
    print(result.describe(), file=out)
    counters = result.counters
    print(f"\nsearch: {counters.transformations_searched} transformations, "
          f"{counters.tuner_calls} tuner calls, "
          f"{counters.cache_hits} cache hits "
          f"({counters.cache_hits_infeasible} infeasible, "
          f"{counters.persistent_cache_hits} warm), "
          f"{counters.wall_time:.1f}s", file=out)
    if (counters.fault_retries or counters.faulted_evaluations or
            counters.timeouts or counters.pool_degradations or
            counters.checkpoints_written):
        print(f"resilience: {counters.fault_retries} retries, "
              f"{counters.faulted_evaluations} faulted evaluations "
              f"({counters.timeouts} timeouts), "
              f"{counters.pool_degradations} pool degradations, "
              f"{counters.checkpoints_written} checkpoints written",
              file=out)
    if args.trace:
        print("\ntrace:", file=out)
        print(render_tree(tracer), file=out)
    if args.trace_json:
        Path(args.trace_json).write_text(to_json(tracer),
                                         encoding="utf-8")
        print(f"\nwrote trace JSON to {args.trace_json}", file=out)
    if args.measure:
        from .experiments import measure_workload, realize
        db = realize(result.schema, result.configuration, docs[0]
                     if len(docs) == 1 else docs, use_cache=False)
        measured = measure_workload(db, result.sql_queries)
        print(f"measured workload cost on loaded data: {measured:.1f}",
              file=out)
    return 0


def cmd_cache(args, out=None) -> int:
    out = out or sys.stdout
    from .search import EvaluationCache
    cache = EvaluationCache(args.cache_dir)
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached evaluations from {cache.root}",
              file=out)
        return 0
    print(cache.report(), file=out)
    return 0


def _cmd_check_code(args, out) -> int:
    import json

    from .check.code import (Baseline, lint_source_tree, load_baseline,
                             write_baseline)

    baseline_path = Path(args.baseline) if args.baseline else None
    baseline = load_baseline(baseline_path) if baseline_path else None
    root = Path(args.path) if args.path else None
    report = lint_source_tree(root, baseline=baseline)
    if args.write_baseline:
        target = baseline_path or Path("check_baseline.json")
        # Re-baseline everything currently reported, keeping entries
        # that still match. Justifications must be filled in by hand.
        combined = report.grandfathered + report.findings
        write_baseline(target, Baseline.from_findings(
            combined, justification="TODO: justify or fix"))
        print(f"wrote {len(combined)} entr(ies) to {target}", file=out)
        return 0
    if args.json:
        print(json.dumps({
            "ok": report.ok,
            "modules_checked": report.modules_checked,
            "inline_suppressed": report.inline_suppressed,
            "grandfathered": report.grandfathered.to_dicts(),
            "findings": report.findings.to_dicts(),
        }, indent=2), file=out)
    else:
        if report.findings:
            print(report.findings.render(), file=out)
        print(report.summary(), file=out)
    if report.findings.errors:
        return 1
    if args.strict and report.findings.warnings:
        return 1
    return 0


def cmd_check(args, out=None) -> int:
    import json

    from .check import lint_bundle
    from .workload import Workload

    out = out or sys.stdout
    if args.code:
        return _cmd_check_code(args, out)
    if args.dataset:
        from .experiments import DatasetBundle
        bundle = (DatasetBundle.dblp(scale=args.scale, seed=args.seed)
                  if args.dataset == "dblp"
                  else DatasetBundle.movie(scale=args.scale, seed=args.seed))
        tree, stats = bundle.tree, bundle.stats
        workload = bundle.workload_generator(seed=args.seed).generate(
            args.queries)
    else:
        tree = _load_schema(args)
        if not args.xml:
            raise SystemExit("provide --xml <file...> or --dataset")
        docs = [parse_file(path) for path in args.xml]
        for doc in docs:
            validate(doc, tree)
        stats = collect_statistics(tree, docs)
        workload = (parse_workload_file(args.workload)
                    if args.workload else Workload("empty"))
    mapping = MAPPINGS[args.mapping](tree)
    report = lint_bundle(mapping, workload, stats)
    if args.json:
        print(json.dumps({
            "ok": report.ok,
            "tables_checked": report.tables_checked,
            "queries_checked": report.queries_checked,
            "queries_failed": report.queries_failed,
            "findings": report.findings.to_dicts(),
        }, indent=2), file=out)
    else:
        if report.findings:
            print(report.findings.render(), file=out)
        print(report.summary(), file=out)
    if report.findings.errors:
        return 1
    if args.strict and report.findings.warnings:
        return 1
    return 0


def cmd_experiment(args, out=None) -> int:
    out = out or sys.stdout
    from .experiments import (DatasetBundle, TABLE1_HEADERS, characterize,
                              format_table, run_motivating_example)
    backend = getattr(args, "backend", "engine")
    if args.name == "all":
        for name in ("table1", "e0", "split-count", "comparison"):
            sub = argparse.Namespace(name=name, scale=args.scale,
                                     backend=backend)
            cmd_experiment(sub, out)
            print(file=out)
        return 0
    if args.name == "split-count":
        from .experiments import run_split_count_sweep
        sweep = run_split_count_sweep(DatasetBundle.dblp(scale=args.scale))
        print(format_table(
            "Section 4.6 — repetition-split count sweep (DBLP)",
            ["k", "measured cost", "data size", ""], sweep.rows(),
            note=f"suggested k = {sweep.suggested_k}; "
                 f"best k = {sweep.best_k()}"), file=out)
        return 0
    if args.name == "comparison":
        from .experiments import compare_algorithms
        bundle = DatasetBundle.dblp(scale=args.scale)
        workloads = [bundle.workload_generator(seed=41).generate(8),
                     bundle.workload_generator(seed=42).generate(
                         8, selectivity=(0.5, 1.0), projections=(5, 20))]
        comparison = compare_algorithms(
            bundle, workloads, algorithms=("greedy", "two-step"),
            backend=backend)
        if backend != "engine":
            print(f"(costs measured on the {backend} backend)", file=out)
        print(comparison.fig4(), file=out)
        print(comparison.fig5(), file=out)
        return 0
    if args.name == "e0":
        result = run_motivating_example(scale=args.scale)
        print(format_table(
            "E0 (Section 1.1) — SIGMOD query under both mappings",
            ["mapping", "untuned", "tuned"], result.rows(),
            note=f"tuned speed-up {result.tuned_speedup:.1f}x; untuned "
                 f"ordering reverses: {result.ordering_reverses_untuned}"),
            file=out)
    elif args.name == "table1":
        rows = [characterize(DatasetBundle.dblp(scale=args.scale)),
                characterize(DatasetBundle.movie(scale=args.scale))]
        print(format_table("Table 1 — data set characteristics",
                           TABLE1_HEADERS, [r.row() for r in rows]),
              file=out)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {args.name!r}")
    return 0


def _serve_bundle(args, out):
    """Schema, documents, statistics, and workload for serve/loadgen.

    Either a bundled dataset (``--dataset``) or explicit schema+XML
    files. One ``--seed`` drives the workload generator and (through
    the caller) the mix sampler — the reproducibility contract of the
    load harness.
    """
    if args.dataset:
        from .experiments import DatasetBundle
        make = (DatasetBundle.dblp if args.dataset == "dblp"
                else DatasetBundle.movie)
        bundle = make(scale=args.scale, seed=args.seed,
                      stream=getattr(args, "stream", False))
        tree, docs, stats = bundle.tree, bundle.docs, bundle.stats
        workload = bundle.workload_generator(seed=args.seed).generate(
            args.queries)
    else:
        tree = _load_schema(args)
        if not args.xml:
            raise SystemExit("provide --xml <file...> or --dataset")
        docs = [parse_file(path) for path in args.xml]
        for doc in docs:
            validate(doc, tree)
        stats = collect_statistics(tree, docs)
        if not args.workload:
            raise SystemExit("file mode requires --workload")
        workload = parse_workload_file(args.workload)
    return tree, docs, stats, workload


def _serve_design(args, tree, stats, workload, out):
    """The (schema, configuration) pair the service will load.

    ``--tune`` runs the physical-design advisor on the chosen mapping
    (translation + what-if calls, no data touched); without it the
    service runs the bare logical design.
    """
    from .physdesign import Configuration
    mapping = MAPPINGS[args.mapping](tree)
    if args.tune:
        from .search import MappingEvaluator
        evaluator = MappingEvaluator(workload, stats, storage_bound=None)
        evaluated = evaluator.evaluate(mapping)
        if evaluated is not None:
            return evaluated.schema, evaluated.tuning.configuration
        print("note: workload is infeasible under this mapping; "
              "serving untuned", file=out)
    return derive_schema(mapping), Configuration()


def _make_service(args, schema, configuration, docs):
    from .serve import QueryService
    max_queue = getattr(args, "max_queue", None)
    kwargs = {}
    if max_queue is not None:
        # -1 on the command line = unbounded; otherwise the bound.
        kwargs["max_queue"] = None if max_queue < 0 else max_queue
    return QueryService(schema, docs, configuration=configuration,
                        workers=args.workers,
                        plan_cache_size=args.plan_cache,
                        db_path=args.db,
                        load_batch_size=getattr(args, "load_batch", None),
                        deadline=getattr(args, "deadline", None),
                        backend=getattr(args, "backend", "sqlite"),
                        **kwargs)


def _install_cli_faults(args):
    """Install ``--faults`` and return a restore callable.

    The CLI runs in-process in tests, so the previously active plan is
    restored afterwards instead of leaking into the next command.
    """
    from .resilience import active_fault_plan, install_fault_plan
    previous = active_fault_plan()
    if getattr(args, "faults", None):
        install_fault_plan(args.faults)
    return lambda: install_fault_plan(previous)


def cmd_serve(args, out=None) -> int:
    out = out or sys.stdout
    restore_faults = _install_cli_faults(args)
    tree, docs, stats, workload = _serve_bundle(args, out)
    schema, configuration = _serve_design(args, tree, stats, workload, out)
    service = _make_service(args, schema, configuration, docs)
    try:
        print(f"serving {len(schema.table_names)} tables "
              f"({len(configuration.indexes)} indexes, "
              f"{len(configuration.views)} views) on {args.workers} "
              f"workers; plan cache {args.plan_cache}", file=out)
        if args.xpath:
            queries = args.xpath
        else:
            print("enter one XPath query per line (EOF to stop):",
                  file=out)
            queries = (line.strip() for line in sys.stdin)
        for text in queries:
            if not text:
                continue
            try:
                result = service.serve(text)
            except ReproError as exc:
                print(f"error: {exc}", file=out)
                continue
            print(f"{result.xpath}: {len(result.rows)} rows in "
                  f"{result.seconds * 1e3:.3f}ms "
                  f"({'cached' if result.cached_plan else 'translated'} "
                  f"plan {result.plan_key})", file=out)
            limit = args.limit if args.limit > 0 else len(result.rows)
            for row in result.rows[:limit]:
                print("  " + "\t".join("NULL" if v is None else str(v)
                                       for v in row), file=out)
            if len(result.rows) > limit:
                print(f"  ... {len(result.rows) - limit} more", file=out)
        print(service.stats().describe(), file=out)
    finally:
        service.close()
        restore_faults()
    return 0


def cmd_loadgen(args, out=None) -> int:
    import json

    out = out or sys.stdout
    from .serve import LoadGenerator, write_run_report
    from .workload import zipf_mix
    restore_faults = _install_cli_faults(args)
    tree, docs, stats, workload = _serve_bundle(args, out)
    schema, configuration = _serve_design(args, tree, stats, workload, out)
    mix = zipf_mix(workload, skew=args.zipf)
    service = _make_service(args, schema, configuration, docs)
    try:
        generator = LoadGenerator(service, mix, seed=args.seed,
                                  mode=args.mode, clients=args.clients,
                                  rate=args.rate)
        report = generator.run(requests=args.requests,
                               duration=args.duration)
        # Snapshot counters now: verify adds its own requests to the
        # live service, which must not leak into the run's numbers.
        service_stats = service.stats()
        print(report.describe(), file=out)
        print(service_stats.describe(), file=out)
        failures = []
        if args.verify:
            # The oracle check must see the service fault-free: a
            # deterministic plan would otherwise fail verify queries on
            # purpose and report phantom divergence.
            from .resilience import NULL_PLAN, install_fault_plan
            install_fault_plan(NULL_PLAN)
            try:
                mismatches = _verify_against_engine(service, schema, docs,
                                                    mix, out)
            finally:
                restore_faults()
            if mismatches:
                failures.append(f"{mismatches} queries diverge from the "
                                f"engine oracle")
        if args.report:
            path = write_run_report(args.report, report, service,
                                    meta={"dataset": args.dataset or "files",
                                          "mapping": args.mapping,
                                          "tuned": args.tune},
                                    stats=service_stats)
            print(f"wrote HTML report to {path}", file=out)
        if args.json:
            payload = report.to_dict()
            payload["plan_cache"] = service.plan_cache.stats()
            payload["resilience"] = {
                "shed": service_stats.shed,
                "retries": service_stats.retries,
                "timeouts": service_stats.timeouts,
                "breaker": service_stats.breaker,
            }
            Path(args.json).write_text(json.dumps(payload, indent=2),
                                       encoding="utf-8")
            print(f"wrote JSON summary to {args.json}", file=out)
        if args.smoke:
            cache_stats = service.plan_cache.stats()
            if report.qps <= 0:
                failures.append("QPS is zero")
            if report.errors:
                failures.append(f"{report.errors} errored requests")
            if cache_stats["hits"] <= 0:
                failures.append("plan cache never hit")
        total = max(len(report.records), 1)
        if args.max_shed_rate is not None and \
                report.shed / total > args.max_shed_rate:
            failures.append(
                f"shed rate {report.shed / total:.1%} exceeds "
                f"--max-shed-rate {args.max_shed_rate:.1%}")
        if args.max_error_rate is not None and \
                report.errors / total > args.max_error_rate:
            failures.append(
                f"error rate {report.errors / total:.1%} exceeds "
                f"--max-error-rate {args.max_error_rate:.1%}")
        if args.slo_p95 is not None and report.latency(95) > args.slo_p95:
            failures.append(
                f"p95 latency {report.latency(95):.3f}s exceeds "
                f"--slo-p95 {args.slo_p95:.3f}s")
        if failures:
            for failure in failures:
                print(f"SMOKE FAIL: {failure}", file=out)
            return 1
        if args.smoke:
            print("smoke OK: nonzero QPS, zero errors, plan cache hit",
                  file=out)
    finally:
        service.close()
        restore_faults()
    return 0


def _verify_against_engine(service, schema, docs, mix, out) -> int:
    """Differential check: served rows vs the engine oracle, per distinct
    mix query. Returns the number of diverging queries."""
    from .backends import EngineBackend, multiset_diff
    engine = EngineBackend()
    engine.load(schema, docs)
    mismatches = 0
    for query in mix.queries:
        served = service.serve(query)
        plan = service.plan_cache.get_or_translate(query)
        missing, extra = multiset_diff(engine.execute(plan.sql),
                                       served.rows)
        if missing or extra:
            mismatches += 1
            print(f"VERIFY MISMATCH {query}: {len(missing)} missing, "
                  f"{len(extra)} extra rows", file=out)
    if not mismatches:
        print(f"verify OK: {len(mix.queries)} distinct queries match "
              f"the engine oracle", file=out)
    return mismatches


def cmd_calibrate(args, out=None) -> int:
    out = out or sys.stdout
    from .backends import run_calibration
    from .experiments import DatasetBundle
    storage_bound = (args.storage_bound_mb * 1024 * 1024
                     if args.storage_bound_mb else None)
    make_bundle = (DatasetBundle.dblp if args.dataset == "dblp"
                   else DatasetBundle.movie)
    kwargs = {"scale": args.scale, "seed": args.seed}
    if storage_bound:
        kwargs["storage_bound"] = storage_bound
    bundle = make_bundle(**kwargs)
    workload = bundle.workload_generator(seed=args.seed).generate(
        args.queries)
    report = run_calibration(bundle, workload,
                             algorithms=tuple(args.algorithms),
                             repeat=args.repeat, warmup=args.warmup)
    print(report.describe(), file=out)
    if args.min_correlation is not None:
        if report.design_rank_correlation < args.min_correlation:
            print(f"FAIL: design rank correlation "
                  f"{report.design_rank_correlation:+.3f} below required "
                  f"{args.min_correlation:+.3f}", file=out)
            return 1
        print(f"OK: design rank correlation "
              f"{report.design_rank_correlation:+.3f} >= "
              f"{args.min_correlation:+.3f}", file=out)
    return 0


def cmd_compare(args, out=None) -> int:
    import json

    out = out or sys.stdout
    from .backends import compare_datasets, duckdb_available
    from .backends.compare import DESIGNS, MISMATCH, REVIEW
    needs_duckdb = "duckdb" in (args.backend_a, args.backend_b)
    if needs_duckdb and not duckdb_available():
        print("duckdb is not installed; skipping the backend comparison "
              "(pip install duckdb to enable it)", file=out)
        return 1 if args.strict else 0
    designs = args.design or list(DESIGNS)
    reports = []
    failed = False
    for design in designs:
        report = compare_datasets(
            args.dataset, design, args.backend_a, args.backend_b,
            scale=args.scale, seed=args.seed,
            workload_size=args.queries,
            workload_seed=args.workload_seed,
            include_timings=args.timings)
        print(report.describe(), file=out)
        reports.append(report.to_json())
        if report.status == MISMATCH:
            failed = True
        elif report.status == REVIEW and args.strict:
            failed = True
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(reports, handle, indent=2, sort_keys=True,
                      default=str)
        print(f"wrote {args.json}", file=out)
    return 1 if failed else 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def _jobs_argument(raw: str) -> int:
    """Validate ``--jobs``: an explicit value below 1 is a loud error."""
    try:
        jobs = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {raw!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be >= 1 (got {jobs}); use --jobs 1 for a serial "
            "run, or omit the flag to follow REPRO_PARALLEL")
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="XML-to-relational shredding advisor "
                    "(Chaudhuri et al., ICDE 2004)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser("validate",
                                help="validate XML against a schema")
    _schema_arguments(p_validate)
    p_validate.set_defaults(func=cmd_validate)

    p_shred = sub.add_parser("shred", help="shred XML into tables")
    _schema_arguments(p_shred, required=False)
    _mapping_argument(p_shred)
    dataset = p_shred.add_argument_group("bundled dataset")
    dataset.add_argument("--dataset", choices=["dblp", "movie"],
                         default=None,
                         help="shred a bundled synthetic dataset instead "
                              "of --schema/--xml files")
    dataset.add_argument("--scale", type=int, default=2000,
                         help="bundled dataset scale in records "
                              "(default: 2000; supports 10^6+ with "
                              "--stream)")
    dataset.add_argument("--seed", type=int, default=7,
                         help="dataset generator seed (default: 7)")
    dataset.add_argument("--stream", action="store_true",
                         help="generate and shred lazily: peak memory "
                              "bounded by --batch-size, not --scale")
    dataset.add_argument("--batch-size", type=int,
                         default=DEFAULT_BATCH_SIZE,
                         help="rows per streamed batch (default: "
                              f"{DEFAULT_BATCH_SIZE})")
    p_shred.add_argument("--out", help="directory for CSV dumps")
    p_shred.set_defaults(func=cmd_shred)

    p_query = sub.add_parser("query", help="run an XPath query")
    _schema_arguments(p_query)
    _mapping_argument(p_query)
    p_query.add_argument("--xpath", required=True)
    p_query.add_argument("--explain", action="store_true",
                         help="print the physical plan")
    p_query.add_argument("--limit", type=int, default=20,
                         help="max rows to print (0 = all)")
    p_query.set_defaults(func=cmd_query)

    p_advise = sub.add_parser("advise",
                              help="search for the best joint design")
    _schema_arguments(p_advise)
    p_advise.add_argument("--workload", required=True,
                          help="workload file (one XPath per line)")
    p_advise.add_argument("--algorithm", choices=sorted(ALGORITHMS),
                          default="greedy")
    p_advise.add_argument("--storage-bound-mb", type=int, default=None)
    p_advise.add_argument("--measure", action="store_true",
                          help="also load the data and measure the design")
    p_advise.add_argument("--trace", action="store_true",
                          help="print a per-phase span trace of the search")
    p_advise.add_argument("--trace-json", metavar="FILE", default=None,
                          help="write the span trace as JSON to FILE")
    p_advise.add_argument("--jobs", type=_jobs_argument, default=None,
                          help="parallel evaluation workers, >= 1. "
                               "Default: the REPRO_PARALLEL environment "
                               "variable (0/unset = serial, 1/auto = one "
                               "worker per CPU, N = exactly N); "
                               "REPRO_PARALLEL_BACKEND selects "
                               "process (default) or thread workers")
    p_advise.add_argument("--cache-dir", metavar="DIR", default=None,
                          help="persist evaluations under DIR and reuse "
                               "them across runs")
    p_advise.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                          help="snapshot search state under DIR at every "
                               "round boundary (atomic; survives kills)")
    p_advise.add_argument("--checkpoint-every", type=int, default=1,
                          metavar="N", help="checkpoint every N rounds "
                                            "(default: 1)")
    p_advise.add_argument("--resume", action="store_true",
                          help="resume from the checkpoint in "
                               "--checkpoint-dir instead of starting over")
    p_advise.add_argument("--faults", metavar="SPEC", default=None,
                          help="inject deterministic faults, e.g. "
                               "'seed=42;evaluate:0.2:transient' "
                               "(also via REPRO_FAULTS; see "
                               "docs/resilience.md)")
    p_advise.set_defaults(func=cmd_advise)

    p_cache = sub.add_parser(
        "cache", help="inspect or clear the persistent evaluation cache")
    p_cache.add_argument("action", choices=["report", "clear"],
                         nargs="?", default="report")
    p_cache.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="cache directory (default: $REPRO_CACHE_DIR "
                              "or ~/.cache/repro/evals)")
    p_cache.set_defaults(func=cmd_cache)

    p_check = sub.add_parser(
        "check", help="statically lint a schema+mapping+workload bundle")
    p_check.add_argument("--schema", help="XSD schema file")
    p_check.add_argument("--dtd", help="DTD file (requires --root)")
    p_check.add_argument("--root", help="root element name for --dtd")
    p_check.add_argument("--xml", nargs="+",
                         help="XML document file(s) for statistics")
    _mapping_argument(p_check)
    p_check.add_argument("--workload", default=None,
                         help="workload file (one XPath per line)")
    p_check.add_argument("--dataset", choices=["dblp", "movie"],
                         default=None,
                         help="lint a bundled synthetic dataset instead "
                              "of --schema/--xml files")
    p_check.add_argument("--scale", type=int, default=300,
                         help="dataset scale for --dataset (default: 300)")
    p_check.add_argument("--queries", type=int, default=6,
                         help="generated workload size for --dataset")
    p_check.add_argument("--seed", type=int, default=7,
                         help="workload/dataset seed for --dataset")
    p_check.add_argument("--json", action="store_true",
                         help="emit findings as JSON")
    p_check.add_argument("--strict", action="store_true",
                         help="exit non-zero on warnings too")
    p_check.add_argument("--code", action="store_true",
                         help="lint the repro source code itself "
                              "(DET/CONC/RES) instead of a bundle")
    p_check.add_argument("--path", default=None,
                         help="source root for --code (default: the "
                              "installed repro package)")
    p_check.add_argument("--baseline", default=None,
                         help="baseline JSON for --code; matching "
                              "findings are grandfathered, not fresh")
    p_check.add_argument("--write-baseline", action="store_true",
                         help="with --code: write all current findings "
                              "to the baseline file and exit 0")
    p_check.set_defaults(func=cmd_check)

    p_exp = sub.add_parser("experiment", help="run a paper experiment")
    p_exp.add_argument("name", choices=["e0", "table1", "split-count",
                                        "comparison", "all"])
    p_exp.add_argument("--scale", type=int, default=1500)
    p_exp.add_argument("--backend", choices=["engine", "sqlite"],
                       default="engine",
                       help="measure design costs on the deterministic "
                            "engine (default) or on real SQLite "
                            "wall-clock time (comparison experiment)")
    p_exp.set_defaults(func=cmd_experiment)

    p_cal = sub.add_parser(
        "calibrate",
        help="rank-correlate cost estimates with measured SQLite times")
    p_cal.add_argument("--dataset", choices=["dblp", "movie"],
                       default="dblp")
    p_cal.add_argument("--scale", type=int, default=300,
                       help="dataset scale (default: 300)")
    p_cal.add_argument("--queries", type=int, default=6,
                       help="generated workload size (default: 6)")
    p_cal.add_argument("--seed", type=int, default=7,
                       help="dataset/workload seed (default: 7)")
    p_cal.add_argument("--repeat", type=int, default=3,
                       help="timed runs per query (median; default: 3)")
    p_cal.add_argument("--warmup", type=int, default=1,
                       help="untimed warmup runs per query (default: 1)")
    p_cal.add_argument("--algorithms", nargs="+",
                       choices=["greedy", "two-step"],
                       default=["greedy", "two-step"],
                       help="design searches to calibrate (the "
                            "logical-only baseline always runs)")
    p_cal.add_argument("--storage-bound-mb", type=int, default=None)
    p_cal.add_argument("--min-correlation", type=float, default=None,
                       metavar="R",
                       help="exit non-zero unless the design rank "
                            "correlation reaches R (CI gate)")
    p_cal.set_defaults(func=cmd_calibrate)

    p_cmp = sub.add_parser(
        "compare",
        help="cross-check two execution backends on one dataset: "
             "schemas, row multisets, workload results, indexes")
    p_cmp.add_argument("--dataset", choices=["dblp", "movie"],
                       default="dblp",
                       help="bundled synthetic dataset (default: dblp)")
    p_cmp.add_argument("--design", action="append",
                       choices=["hybrid", "shared", "fully-split",
                                "greedy"],
                       default=None, metavar="DESIGN",
                       help="mapping preset or 'greedy' (repeatable; "
                            "default: all of them)")
    p_cmp.add_argument("--backend-a", default="sqlite",
                       choices=["engine", "sqlite", "duckdb"],
                       help="reference backend (default: sqlite)")
    p_cmp.add_argument("--backend-b", default="duckdb",
                       choices=["engine", "sqlite", "duckdb"],
                       help="candidate backend (default: duckdb)")
    p_cmp.add_argument("--scale", type=int, default=60,
                       help="dataset scale in records (default: 60)")
    p_cmp.add_argument("--seed", type=int, default=7,
                       help="dataset generator seed (default: 7)")
    p_cmp.add_argument("--queries", type=int, default=6,
                       help="generated workload size (default: 6)")
    p_cmp.add_argument("--workload-seed", type=int, default=3,
                       help="workload generator seed (default: 3)")
    p_cmp.add_argument("--timings", action="store_true",
                       help="also measure per-query wall-clock on both "
                            "backends (advisory REVIEW check; makes the "
                            "report nondeterministic)")
    p_cmp.add_argument("--strict", action="store_true",
                       help="fail on REVIEW too, and on a missing "
                            "optional backend")
    p_cmp.add_argument("--json", metavar="FILE", default=None,
                       help="write all reports to FILE as JSON")
    p_cmp.set_defaults(func=cmd_compare)

    def serve_shared(p: argparse.ArgumentParser) -> None:
        source = p.add_argument_group("data source")
        source.add_argument("--dataset", choices=["dblp", "movie"],
                            default=None,
                            help="serve a bundled synthetic dataset "
                                 "instead of --schema/--xml files")
        source.add_argument("--scale", type=int, default=300,
                            help="bundled dataset scale (default: 300)")
        source.add_argument("--stream", action="store_true",
                            help="generate the bundled dataset lazily and "
                                 "stream the bulk load (use with large "
                                 "--scale and --db)")
        source.add_argument("--queries", type=int, default=6,
                            help="generated workload size for --dataset "
                                 "(default: 6)")
        source.add_argument("--schema", help="XSD schema file")
        source.add_argument("--dtd", help="DTD file (requires --root)")
        source.add_argument("--root", help="root element name for --dtd")
        source.add_argument("--xml", nargs="+",
                            help="XML document file(s) (file mode)")
        source.add_argument("--workload", default=None,
                            help="workload file (required in file mode)")
        design = p.add_argument_group("design")
        _mapping_argument(design)
        design.add_argument("--tune", action="store_true",
                            help="run the physical-design advisor and "
                                 "serve its recommended configuration")
        svc = p.add_argument_group("service")
        svc.add_argument("--seed", type=int, default=7,
                         help="seed for dataset, workload, and query "
                              "mix (default: 7)")
        svc.add_argument("--workers", type=int, default=4,
                         help="service worker threads (default: 4)")
        svc.add_argument("--plan-cache", type=int, default=128,
                         help="plan cache capacity (default: 128)")
        svc.add_argument("--backend", choices=["sqlite", "duckdb"],
                         default="sqlite",
                         help="execution backend to serve from "
                              "(duckdb needs the optional package; "
                              "default: sqlite)")
        svc.add_argument("--db", default=None, metavar="FILE",
                         help="serve from this database file (workers "
                              "reopen it read-only; default: shared "
                              "in-memory database)")
        svc.add_argument("--load-batch", type=int, default=None,
                         metavar="ROWS",
                         help="rows per streamed bulk-load chunk "
                              "(default: backend default)")
        resil = p.add_argument_group("resilience")
        resil.add_argument("--faults", metavar="SPEC", default=None,
                           help="inject deterministic faults, e.g. "
                                "'seed=1;backend.execute:0.05:transient;"
                                "serve.request:0.01:hang:0.2' "
                                "(see docs/resilience.md)")
        resil.add_argument("--deadline", type=float, default=None,
                           metavar="SECONDS",
                           help="per-request deadline from submission, "
                                "queue wait included (default: none)")
        resil.add_argument("--max-queue", type=int, default=None,
                           metavar="N",
                           help="queued requests admitted past the "
                                "workers before shedding; -1 = unbounded "
                                "(default: 1024)")

    p_serve = sub.add_parser(
        "serve",
        help="serve XPath queries from a long-lived query service")
    serve_shared(p_serve)
    p_serve.add_argument("--xpath", action="append", metavar="QUERY",
                         help="serve this query and exit (repeatable); "
                              "without it, read queries from stdin")
    p_serve.add_argument("--limit", type=int, default=10,
                         help="rows printed per query, 0 = all "
                              "(default: 10)")
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="drive the query service with a seeded load harness")
    serve_shared(p_load)
    p_load.add_argument("--mode", choices=["closed", "open"],
                        default="closed",
                        help="closed loop (clients back-to-back) or "
                             "open loop (Poisson arrivals)")
    p_load.add_argument("--clients", type=int, default=4,
                        help="closed-loop client threads (default: 4)")
    p_load.add_argument("--rate", type=float, default=200.0,
                        help="open-loop arrival rate in req/s "
                             "(default: 200)")
    p_load.add_argument("--requests", type=int, default=None,
                        help="stop after this many requests")
    p_load.add_argument("--duration", type=float, default=None,
                        help="stop after this many seconds")
    p_load.add_argument("--zipf", type=float, default=1.0,
                        help="Zipf skew of the query mix (default: 1.0)")
    p_load.add_argument("--report", metavar="FILE", default=None,
                        help="write an HTML run report to FILE")
    p_load.add_argument("--json", metavar="FILE", default=None,
                        help="write a JSON run summary to FILE")
    p_load.add_argument("--verify", action="store_true",
                        help="differentially check served rows against "
                             "the deterministic engine oracle")
    p_load.add_argument("--smoke", action="store_true",
                        help="exit non-zero unless QPS > 0, zero "
                             "errors, and the plan cache hit")
    gates = p_load.add_argument_group("chaos gates (degraded SLO)")
    gates.add_argument("--max-shed-rate", type=float, default=None,
                       metavar="FRACTION",
                       help="fail if more than this fraction of requests "
                            "was shed (admission control + breaker)")
    gates.add_argument("--max-error-rate", type=float, default=None,
                       metavar="FRACTION",
                       help="fail if more than this fraction of requests "
                            "errored (shed included)")
    gates.add_argument("--slo-p95", type=float, default=None,
                       metavar="SECONDS",
                       help="fail if p95 latency of completed requests "
                            "exceeds this")
    p_load.set_defaults(func=cmd_loadgen)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
