"""Compile SQL expressions into Python callables for the executor.

A compiled expression takes an *environment* — a dict mapping table
alias to the current row tuple — and returns a value (scalars) or a
truth value (boolean expressions). SQL three-valued logic is collapsed
to two values the way filters need it: any comparison involving NULL is
false.

EXISTS subqueries are not compiled here; the optimizer turns them into
semi-join plan operators instead.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ExecutionError, PlanError
from ..sqlast import (And, BoolExpr, ColumnRef, Comparison, ComparisonOp,
                      Exists, IsNull, Literal, Or, Scalar)
from .btree import encode_key

Environment = dict[str, tuple]
ColumnResolver = Callable[[ColumnRef], tuple[str, int]]


def compile_scalar(expr: Scalar, resolve: ColumnResolver) -> Callable[[Environment], object]:
    """Compile a scalar expression to ``env -> value``."""
    if isinstance(expr, Literal):
        value = expr.value
        return lambda env: value
    if isinstance(expr, ColumnRef):
        alias, position = resolve(expr)

        def fetch(env: Environment):
            row = env.get(alias)
            if row is None:
                raise ExecutionError(
                    f"no row bound for alias {alias!r} while evaluating "
                    f"{expr}")
            return row[position]

        return fetch
    raise PlanError(f"cannot compile scalar expression {expr!r}")


def _comparator(op: ComparisonOp) -> Callable[[object, object], bool]:
    def compare(a, b) -> bool:
        if a is None or b is None:
            return False
        # Cross-type comparisons (e.g. INTEGER column vs numeric string
        # literal from XPath) coerce to float when possible. When they
        # cannot (a number against non-numeric text), fall back to the
        # engine's total order — numbers before text — which is also
        # SQLite's storage-class order and what the B+-tree uses for
        # index seeks; a textual fallback here used to make seq-scan
        # filters disagree with both.
        if type(a) is not type(b) and not (
                isinstance(a, (int, float)) and isinstance(b, (int, float))):
            try:
                a, b = float(a), float(b)
            except (TypeError, ValueError):
                a, b = encode_key((a,)), encode_key((b,))
        if op == ComparisonOp.EQ:
            return a == b
        if op == ComparisonOp.NE:
            return a != b
        if op == ComparisonOp.LT:
            return a < b
        if op == ComparisonOp.LE:
            return a <= b
        if op == ComparisonOp.GT:
            return a > b
        return a >= b

    return compare


def compile_predicate(expr: BoolExpr, resolve: ColumnResolver) -> Callable[[Environment], bool]:
    """Compile a boolean expression to ``env -> bool``."""
    if isinstance(expr, Comparison):
        left = compile_scalar(expr.left, resolve)
        right = compile_scalar(expr.right, resolve)
        compare = _comparator(expr.op)
        return lambda env: compare(left(env), right(env))
    if isinstance(expr, IsNull):
        operand = compile_scalar(expr.operand, resolve)
        if expr.negated:
            return lambda env: operand(env) is not None
        return lambda env: operand(env) is None
    if isinstance(expr, And):
        parts = [compile_predicate(item, resolve) for item in expr.items]
        return lambda env: all(p(env) for p in parts)
    if isinstance(expr, Or):
        parts = [compile_predicate(item, resolve) for item in expr.items]
        return lambda env: any(p(env) for p in parts)
    if isinstance(expr, Exists):
        raise PlanError(
            "EXISTS must be planned as a semi-join, not compiled inline")
    raise PlanError(f"cannot compile boolean expression {expr!r}")


def referenced_columns(expr) -> set[ColumnRef]:
    """All column references in a scalar/boolean expression tree."""
    refs: set[ColumnRef] = set()

    def walk(node) -> None:
        if isinstance(node, ColumnRef):
            refs.add(node)
        elif isinstance(node, Comparison):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, IsNull):
            refs.add(node.operand)
        elif isinstance(node, (And, Or)):
            for item in node.items:
                walk(item)
        elif isinstance(node, Exists):
            # Correlated references are handled by the planner.
            pass

    walk(expr)
    return refs
