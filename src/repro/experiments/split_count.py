"""Ablation: choice of the repetition-split count k (paper Section 4.6).

The paper: "a good k is the smallest k such that most instances of the
element have cardinality smaller than k ... For this specific data set,
we find that splitting the first five authors achieves the best balance
between performance and space."

This driver sweeps k over the DBLP author repetition for the motivating
query, measuring executed cost and storage, and reports where the
suggested k (from :meth:`CollectedStats.suggest_split_count`) lands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine import Database
from ..mapping import derive_schema, hybrid_inlining, load_documents
from ..search import MappingEvaluator
from ..workload import Workload
from .harness import DatasetBundle, measure_workload, realize

SWEEP_QUERY = ('/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]'
               '/(title | year | author)')


@dataclass
class SplitCountPoint:
    k: int
    measured_cost: float
    data_bytes: int


@dataclass
class SplitCountSweep:
    points: list[SplitCountPoint]
    suggested_k: int
    baseline_cost: float      # k = 0, i.e. no repetition split
    baseline_bytes: int

    def best_k(self) -> int:
        return min(self.points, key=lambda p: p.measured_cost).k

    def point(self, k: int) -> SplitCountPoint:
        for p in self.points:
            if p.k == k:
                return p
        raise KeyError(k)

    def rows(self) -> list[list]:
        out = [[0, self.baseline_cost, f"{self.baseline_bytes / 1024:.0f} KB",
                ""]]
        for p in self.points:
            mark = "<- suggested" if p.k == self.suggested_k else ""
            out.append([p.k, p.measured_cost,
                        f"{p.data_bytes / 1024:.0f} KB", mark])
        return out


def run_split_count_sweep(bundle: DatasetBundle | None = None,
                          ks: range = range(1, 11)) -> SplitCountSweep:
    bundle = bundle or DatasetBundle.dblp()
    tree = bundle.tree
    workload = Workload.from_strings("sweep", [SWEEP_QUERY])
    author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
    rep = tree.parent(author)
    suggested = bundle.stats.suggest_split_count(rep.node_id, cmax=max(ks),
                                                 coverage=0.99) or 5
    evaluator = MappingEvaluator(workload, bundle.stats,
                                 bundle.storage_bound)
    base_mapping = hybrid_inlining(tree)

    def measure(mapping) -> tuple[float, int]:
        evaluated = evaluator.evaluate(mapping)
        assert evaluated is not None
        db = realize(evaluated.schema, evaluated.tuning.configuration,
                     bundle.docs)
        cost = measure_workload(db, evaluated.sql_queries)
        return cost, db.catalog.total_data_bytes()

    baseline_cost, baseline_bytes = measure(base_mapping)
    points = []
    for k in ks:
        cost, size = measure(base_mapping.with_split(rep.node_id, k))
        points.append(SplitCountPoint(k=k, measured_cost=cost,
                                      data_bytes=size))
    return SplitCountSweep(points=points, suggested_k=suggested,
                           baseline_cost=baseline_cost,
                           baseline_bytes=baseline_bytes)
