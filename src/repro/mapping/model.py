"""The ``Mapping`` value object.

A mapping from an XSD schema tree to a relational schema is fully
described by three assignments over the *immutable* tree:

* ``annotations`` — which TAG nodes map to their own table (the paper's
  annotation set ``A``); shared annotations express type merge, fresh
  names express type split,
* ``split_counts`` — repetition-split counts on REPETITION nodes whose
  child is a leaf element (paper Section 2.1 restricts repetition split
  to leaf nodes),
* ``distributions`` — union distributions: either on an explicit CHOICE
  node, or an *implicit union* over a set of OPTION nodes (including the
  merged candidates of Section 4.7).

Mappings are immutable and hashable, so the search algorithms can prune
duplicate mappings in O(1) — the key enabler for the paper's "avoid
searching duplicated mappings" optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import MappingError
from ..xsd import NodeKind, SchemaTree


@dataclass(frozen=True)
class UnionDistribution:
    """One union-distribution transformation target.

    Exactly one of the two fields is set: ``choice_id`` for explicit
    choice distribution, ``optional_ids`` for an implicit union over
    optional elements (one or several — several encodes a *merged*
    candidate, paper Section 4.7).
    """

    choice_id: int | None = None
    optional_ids: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        if (self.choice_id is None) == (not self.optional_ids):
            raise MappingError(
                "a union distribution names either a choice node or a "
                "non-empty set of optional nodes")

    @property
    def is_implicit(self) -> bool:
        return self.choice_id is None

    def nodes(self) -> frozenset[int]:
        if self.choice_id is not None:
            return frozenset({self.choice_id})
        return self.optional_ids


@dataclass(frozen=True)
class Mapping:
    """An XML-to-relational mapping over a fixed schema tree."""

    tree: SchemaTree = field(compare=False, hash=False, repr=False)
    annotations: tuple[tuple[int, str], ...] = ()
    split_counts: tuple[tuple[int, int], ...] = ()
    distributions: frozenset[UnionDistribution] = frozenset()

    # ------------------------------------------------------------------
    # Views of the frozen fields
    # ------------------------------------------------------------------
    @property
    def annotation_map(self) -> dict[int, str]:
        return dict(self.annotations)

    @property
    def split_map(self) -> dict[int, int]:
        return dict(self.split_counts)

    def annotation_of(self, node_id: int) -> str | None:
        return self.annotation_map.get(node_id)

    def nodes_with_annotation(self, annotation: str) -> list[int]:
        return [nid for nid, a in self.annotations if a == annotation]

    def signature(self) -> tuple:
        """Hashable identity of the mapping (tree is fixed per search)."""
        return (self.annotations, self.split_counts,
                frozenset(self.distributions))

    # ------------------------------------------------------------------
    # Functional updates
    # ------------------------------------------------------------------
    def with_annotation(self, node_id: int, annotation: str) -> "Mapping":
        items = dict(self.annotations)
        items[node_id] = annotation
        return replace(self, annotations=tuple(sorted(items.items())))

    def without_annotation(self, node_id: int) -> "Mapping":
        items = dict(self.annotations)
        items.pop(node_id, None)
        return replace(self, annotations=tuple(sorted(items.items())))

    def with_split(self, rep_node_id: int, count: int) -> "Mapping":
        if count < 1:
            raise MappingError("repetition-split count must be >= 1")
        items = dict(self.split_counts)
        items[rep_node_id] = count
        return replace(self, split_counts=tuple(sorted(items.items())))

    def without_split(self, rep_node_id: int) -> "Mapping":
        items = dict(self.split_counts)
        items.pop(rep_node_id, None)
        return replace(self, split_counts=tuple(sorted(items.items())))

    def with_distribution(self, dist: UnionDistribution) -> "Mapping":
        return replace(self,
                       distributions=self.distributions | {dist})

    def without_distribution(self, dist: UnionDistribution) -> "Mapping":
        return replace(self,
                       distributions=self.distributions - {dist})

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def owner_of(self, node_id: int) -> int:
        """Nearest annotated ancestor-or-self TAG node id."""
        annotation_map = self.annotation_map
        tree = self.tree
        node = tree.node(node_id)
        while node is not None:
            if node.kind == NodeKind.TAG and node.node_id in annotation_map:
                return node.node_id
            node = tree.parent(node)
        raise MappingError(f"node {node_id} has no annotated ancestor "
                           f"(is the root annotated?)")

    def parent_owner_of(self, annotated_node_id: int) -> int | None:
        """Owner of the annotated node's parent region (for PID joins)."""
        parent = self.tree.parent(annotated_node_id)
        if parent is None:
            return None
        return self.owner_of(parent.node_id)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`MappingError` on a structurally invalid mapping."""
        tree = self.tree
        annotation_map = self.annotation_map
        for node_id in annotation_map:
            node = tree.node(node_id)
            if node.kind != NodeKind.TAG:
                raise MappingError(
                    f"annotation on non-TAG node #{node_id}")
        for node in tree.iter_nodes():
            if node.kind == NodeKind.TAG and tree.must_annotate(node) and \
                    node.node_id not in annotation_map:
                raise MappingError(
                    f"node #{node.node_id} <{node.name}> must be annotated "
                    f"(root or under repetition)")
        # Shared annotations must be structurally equivalent.
        by_annotation: dict[str, list[int]] = {}
        for node_id, annotation in self.annotations:
            by_annotation.setdefault(annotation, []).append(node_id)
        for annotation, node_ids in by_annotation.items():
            signatures = {tree.structural_signature(nid) for nid in node_ids}
            if len(signatures) > 1:
                raise MappingError(
                    f"annotation {annotation!r} shared by non-equivalent "
                    f"types {node_ids}")
        for rep_id, count in self.split_counts:
            node = tree.node(rep_id)
            if node.kind != NodeKind.REPETITION:
                raise MappingError(
                    f"repetition split on non-repetition node #{rep_id}")
            child = tree.children(node)[0]
            if not tree.is_leaf_element(child):
                raise MappingError(
                    "repetition split is limited to leaf elements "
                    f"(node #{rep_id})")
            if count < 1:
                raise MappingError("repetition-split count must be >= 1")
        for dist in self.distributions:
            self._validate_distribution(dist)

    def _validate_distribution(self, dist: UnionDistribution) -> None:
        tree = self.tree
        owners = set()
        if dist.choice_id is not None:
            node = tree.node(dist.choice_id)
            if node.kind != NodeKind.CHOICE:
                raise MappingError(
                    f"union distribution on non-choice node #{dist.choice_id}")
            owners.add(self.owner_of(dist.choice_id))
        for optional_id in dist.optional_ids:
            node = tree.node(optional_id)
            if node.kind != NodeKind.OPTION:
                raise MappingError(
                    f"implicit union on non-option node #{optional_id}")
            owners.add(self.owner_of(optional_id))
        if len(owners) != 1:
            raise MappingError(
                "all nodes of a union distribution must share one owner "
                f"table (owners: {sorted(owners)})")
        owner = next(iter(owners))
        annotation = self.annotation_of(owner)
        if len(self.nodes_with_annotation(annotation)) != 1:
            raise MappingError(
                "union distribution on a type-merged table is not supported; "
                "split the type first")

    def distribution_owner(self, dist: UnionDistribution) -> int:
        """The annotated node whose table the distribution partitions."""
        any_node = next(iter(dist.nodes()))
        return self.owner_of(any_node)
