"""The shared findings engine for the static-analysis passes.

Every analyzer (:mod:`repro.check.sql_analyzer`,
:mod:`repro.check.mapping_checker`, :mod:`repro.check.plan_checker`)
reports violations as :class:`Finding` values carried in a
:class:`Findings` collection. Each finding has a stable diagnostic code
(``SQL...`` / ``MAP...`` / ``PLAN...`` / ``XLT...``), a severity, a
message, and a source location string; collections render as text (one
line per finding, compiler style) or as JSON-ready dicts.

See docs/static-analysis.md for the full code registry.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator


class Severity(enum.Enum):
    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


#: Registry of diagnostic codes: code -> (default severity, summary).
CODES: dict[str, tuple[Severity, str]] = {
    # -- SQL semantic analysis -----------------------------------------
    "SQL001": (Severity.ERROR, "FROM references an unknown table"),
    "SQL002": (Severity.ERROR, "duplicate alias in one FROM list"),
    "SQL003": (Severity.ERROR, "column reference does not resolve"),
    "SQL004": (Severity.ERROR, "unqualified column is ambiguous"),
    "SQL005": (Severity.ERROR, "comparison operands are type-incompatible"),
    "SQL006": (Severity.ERROR, "UNION ALL branches disagree in arity or "
                               "column types"),
    "SQL007": (Severity.ERROR, "ORDER BY position out of range"),
    "SQL008": (Severity.ERROR, "EXISTS subquery correlation is inconsistent"),
    "SQL009": (Severity.WARNING, "comparison against a NULL literal is "
                                 "always false"),
    # -- mapping / relational-schema invariants ------------------------
    "MAP001": (Severity.ERROR, "mapping fails structural validation"),
    "MAP002": (Severity.ERROR, "XSD value node has no relational storage "
                               "(lossy mapping)"),
    "MAP003": (Severity.ERROR, "ID/PID key column missing or mistyped"),
    "MAP004": (Severity.ERROR, "parent link references a non-existent "
                               "table group"),
    "MAP005": (Severity.ERROR, "partition is inconsistent with its table "
                               "group"),
    "MAP006": (Severity.ERROR, "leaf storage references a non-existent "
                               "group or column"),
    "MAP007": (Severity.ERROR, "transformation changed value-node coverage"),
    # -- plan sanitation -----------------------------------------------
    "PLAN001": (Severity.ERROR, "cost or cardinality estimate is not "
                                "finite and non-negative"),
    "PLAN002": (Severity.ERROR, "index seek references an undeclared index"),
    "PLAN003": (Severity.ERROR, "scan references an unknown table"),
    "PLAN004": (Severity.ERROR, "view substitution does not cover the "
                                "replaced join"),
    "PLAN005": (Severity.ERROR, "branch plan does not produce the columns "
                                "its SELECT requires"),
    "PLAN006": (Severity.ERROR, "plan branch count disagrees with the "
                                "query's SELECT count"),
    # -- translation (bundle lint only) --------------------------------
    "XLT001": (Severity.ERROR, "workload query cannot be translated or "
                               "planned under this mapping"),
    # -- code lint: determinism (repro.check.code.det) ------------------
    "DET001": (Severity.WARNING, "unseeded random source (module-level "
                                 "random.*, Random() without a seed)"),
    "DET002": (Severity.WARNING, "wall-clock read (time.time / "
                                 "datetime.now) in library code"),
    "DET003": (Severity.WARNING, "iteration over an unordered set "
                                 "without sorted()"),
    "DET004": (Severity.WARNING, "directory listing consumed without "
                                 "sorted()"),
    # -- code lint: concurrency (repro.check.code.conc) -----------------
    "CONC001": (Severity.ERROR, "shared mutable state written without a "
                                "lock on a thread-pool-reachable path"),
    "CONC002": (Severity.ERROR, "sqlite3 connection escapes the thread "
                                "that created it"),
    "CONC003": (Severity.ERROR, "lock acquisition order cycle (ABBA "
                                "deadlock)"),
    # -- code lint: resources/exceptions (repro.check.code.res) ---------
    "RES001": (Severity.WARNING, "broad except neither re-raises nor "
                                 "routes through note_suppressed"),
    "RES002": (Severity.WARNING, "open()/connect() result without "
                                 "with/close on all paths"),
}


@dataclass(frozen=True)
class Finding:
    """One diagnostic: code, severity, message, source location."""

    code: str
    severity: Severity
    message: str
    location: str = ""

    def render(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.severity.value.upper()} {self.code}{where}: " \
               f"{self.message}"

    def to_dict(self) -> dict:
        return {"code": self.code, "severity": self.severity.value,
                "message": self.message, "location": self.location}


@dataclass
class Findings:
    """An ordered collection of findings with convenience accessors."""

    items: list[Finding] = field(default_factory=list)

    def add(self, code: str, message: str, location: str = "",
            severity: Severity | None = None) -> Finding:
        if code not in CODES:
            raise KeyError(f"unknown diagnostic code {code!r}")
        finding = Finding(code=code,
                          severity=severity or CODES[code][0],
                          message=message, location=location)
        self.items.append(finding)
        return finding

    def extend(self, other: "Findings") -> "Findings":
        self.items.extend(other.items)
        return self

    def dedupe(self) -> "Findings":
        """A copy with exact duplicates removed, first occurrence kept.

        Two passes (or one pass visiting a node twice) may report the
        identical (code, severity, message, location) tuple; collection
        consumers suppress the copies rather than double-counting.
        """
        seen: set[Finding] = set()
        out = Findings()
        for finding in self.items:
            if finding not in seen:
                seen.add(finding)
                out.items.append(finding)
        return out

    def __add__(self, other: "Findings") -> "Findings":
        return Findings(self.items + other.items)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)

    def __bool__(self) -> bool:
        return bool(self.items)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.items if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.items if f.severity is Severity.WARNING]

    def render(self) -> str:
        return "\n".join(f.render() for f in self.items)

    def to_dicts(self) -> list[dict]:
        return [f.to_dict() for f in self.items]
