"""Tests for repro.check.code — the source-code lint suite."""

import json
import textwrap
from pathlib import Path

from repro.check.code import (Baseline, build_lock_order, check_concurrency,
                              check_determinism, check_lock_order,
                              check_resources, finding_key, lint_source_tree,
                              load_baseline, load_module, write_baseline)
from repro.check.code.callgraph import ModuleCallGraph
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures" / "code_lint"
REPRO_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


def lint_module(tmp_path, source, name="mod_under_test.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return load_module(path, tmp_path)


def codes(findings):
    return [f.code for f in findings]


def run_cli(args):
    import contextlib
    import io
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(args)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# DET0xx — determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_global_rng_flagged(self, tmp_path):
        module = lint_module(tmp_path, """
            import random
            def draw():
                return random.random() + random.randint(0, 3)
        """)
        assert codes(check_determinism(module)) == ["DET001", "DET001"]

    def test_unseeded_random_flagged_seeded_clean(self, tmp_path):
        module = lint_module(tmp_path, """
            import random
            bad = random.Random()
            good = random.Random(7)
            system = random.SystemRandom()
        """)
        found = check_determinism(module)
        assert codes(found) == ["DET001", "DET001"]
        assert "without a seed" in found.items[0].message

    def test_wall_clock_flagged_monotonic_clean(self, tmp_path):
        module = lint_module(tmp_path, """
            import time
            def stamp():
                return time.time()
            def duration():
                return time.perf_counter() - time.monotonic()
        """)
        assert codes(check_determinism(module)) == ["DET002"]

    def test_set_iteration_flagged_sorted_clean(self, tmp_path):
        module = lint_module(tmp_path, """
            def bad(xs):
                for x in {x.key for x in xs}:
                    yield x
            def good(xs):
                for x in sorted({x.key for x in xs}):
                    yield x
            def consumers(s):
                return list({1, 2}), ",".join({"a", "b"})
        """)
        assert codes(check_determinism(module)) == \
            ["DET003", "DET003", "DET003"]

    def test_directory_listing_flagged_sorted_clean(self, tmp_path):
        module = lint_module(tmp_path, """
            import os
            def bad(p):
                return os.listdir(p)
            def good(p):
                return sorted(os.listdir(p)), len(os.listdir(p))
        """)
        assert codes(check_determinism(module)) == ["DET004"]


# ----------------------------------------------------------------------
# CONC0xx — concurrency
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_unlocked_shared_write_on_pool_path(self, tmp_path):
        module = lint_module(tmp_path, """
            from concurrent.futures import ThreadPoolExecutor
            class Service:
                def work(self):
                    self.counter += 1
                def run(self, pool):
                    pool.submit(self.work)
        """)
        found = check_concurrency(module)
        assert codes(found) == ["CONC001"]
        assert "self.counter" in found.items[0].message

    def test_subscript_write_through_self_attribute_flagged(self, tmp_path):
        # The MetricRegistry.incr bug shape: a dict read-modify-write
        # through a self attribute is shared-state mutation even though
        # the assignment target is a Subscript, not the attribute.
        module = lint_module(tmp_path, """
            class Registry:
                def incr(self, name):
                    self.counters[name] = self.counters.get(name, 0) + 1
                def run(self, pool):
                    pool.submit(self.incr, "requests")
        """)
        found = check_concurrency(module)
        assert codes(found) == ["CONC001"]
        assert "self.counters[...]" in found.items[0].message

    def test_locked_subscript_write_clean(self, tmp_path):
        module = lint_module(tmp_path, """
            class Registry:
                def incr(self, name):
                    with self._lock:
                        self.counters[name] = self.counters.get(name, 0) + 1
                def run(self, pool):
                    pool.submit(self.incr, "requests")
        """)
        assert codes(check_concurrency(module)) == []

    def test_locked_write_and_cold_path_clean(self, tmp_path):
        module = lint_module(tmp_path, """
            class Service:
                def work(self):
                    with self._lock:
                        self.counter += 1
                def cold(self):
                    self.counter += 1
                def run(self, pool):
                    pool.submit(self.work)
        """)
        assert codes(check_concurrency(module)) == []

    def test_thread_local_write_exempt(self, tmp_path):
        module = lint_module(tmp_path, """
            class Service:
                def work(self):
                    self._local.connection = self._open()
                def run(self, pool):
                    pool.submit(self.work)
        """)
        assert codes(check_concurrency(module)) == []

    def test_cross_thread_connection_flagged(self, tmp_path):
        module = lint_module(tmp_path, """
            import sqlite3
            class Service:
                def __init__(self):
                    self.conn = sqlite3.connect(":memory:")
                def work(self):
                    return self.conn.execute("SELECT 1")
                def run(self, pool):
                    pool.submit(self.work)
        """)
        found = check_concurrency(module)
        assert codes(found) == ["CONC002"]
        assert "self.conn" in found.items[0].message

    def test_reachability_is_transitive(self, tmp_path):
        module = lint_module(tmp_path, """
            import threading
            class Service:
                def outer(self):
                    self.inner()
                def inner(self):
                    self.count += 1
                def run(self):
                    threading.Thread(target=self.outer).start()
        """)
        graph = ModuleCallGraph(module)
        reached = graph.reachable_from_submit()
        assert set(reached) == {"Service.outer", "Service.inner"}
        assert codes(check_concurrency(module, graph)) == ["CONC001"]


# ----------------------------------------------------------------------
# CONC003 — lock ordering
# ----------------------------------------------------------------------
class TestLockOrder:
    def test_inverted_fixture_has_cycle(self):
        module = load_module(FIXTURES / "inverted_locks.py", FIXTURES)
        found = check_lock_order([module])
        assert codes(found) == ["CONC003"]
        assert "_order_lock_a" in found.items[0].message
        assert "_order_lock_b" in found.items[0].message

    def test_consistent_order_no_cycle(self, tmp_path):
        module = lint_module(tmp_path, """
            import threading
            _lock_a = threading.Lock()
            _lock_b = threading.Lock()
            def one():
                with _lock_a:
                    with _lock_b:
                        pass
            def two():
                with _lock_a:
                    with _lock_b:
                        pass
        """)
        assert codes(check_lock_order([module])) == []

    def test_sqlite_backend_ordering_known_safe(self):
        # time_query finishes its _thread_connection() call *before*
        # taking _timing_lock, so the graph must not order the timing
        # lock above the connection lock (and must stay acyclic).  The
        # locking now lives in the shared RelationalBackend base class
        # (backends/dbms.py) that SQLite and DuckDB both inherit.
        module = load_module(REPRO_ROOT / "backends" / "dbms.py",
                             REPRO_ROOT)
        call_graph = ModuleCallGraph(module)
        acquired = set().union(*call_graph.acquires.values())
        assert {"RelationalBackend._timing_lock",
                "RelationalBackend._conn_lock"} <= acquired
        order = build_lock_order([module])
        assert "RelationalBackend._conn_lock" not in \
            order.edges.get("RelationalBackend._timing_lock", set())
        assert order.cycles() == []

    def test_cross_module_inversion_detected(self, tmp_path):
        # A->B in one module, B->A in another: the merged graph cycles.
        first = lint_module(tmp_path, """
            class Service:
                def one(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
        """, name="first.py")
        second = lint_module(tmp_path, """
            class Service:
                def two(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
        """, name="second.py")
        assert codes(check_lock_order([first, second])) == ["CONC003"]


# ----------------------------------------------------------------------
# RES0xx — resources / exception hygiene
# ----------------------------------------------------------------------
class TestResources:
    def test_swallowed_broad_except_flagged(self, tmp_path):
        module = lint_module(tmp_path, """
            def swallow():
                try:
                    risky()
                except Exception:
                    return None
        """)
        assert codes(check_resources(module)) == ["RES001"]

    def test_reraise_note_suppressed_and_use_are_clean(self, tmp_path):
        module = lint_module(tmp_path, """
            def reraises():
                try:
                    risky()
                except Exception:
                    raise
            def routes(tracer):
                try:
                    risky()
                except Exception as exc:
                    note_suppressed(exc, "site", tracer)
            def uses(log):
                try:
                    risky()
                except Exception as exc:
                    log.warning("failed: %s", exc)
        """)
        assert codes(check_resources(module)) == []

    def test_unclosed_open_flagged(self, tmp_path):
        module = lint_module(tmp_path, """
            def leak(path):
                handle = open(path)
                return handle.read()
        """)
        found = check_resources(module)
        assert codes(found) == ["RES002"]
        assert "handle" in found.items[0].message

    def test_with_close_and_handoff_are_clean(self, tmp_path):
        module = lint_module(tmp_path, """
            import contextlib
            def managed(path):
                with open(path) as handle:
                    return handle.read()
            def closing(conn_factory):
                with contextlib.closing(conn_factory.connect()) as conn:
                    return conn
            def closes(path):
                handle = open(path)
                try:
                    return handle.read()
                finally:
                    handle.close()
            def transfers(path):
                return open(path)
            def escapes(self, path):
                self.handle = open(path)
        """)
        assert codes(check_resources(module)) == []


# ----------------------------------------------------------------------
# Baseline + driver
# ----------------------------------------------------------------------
class TestBaselineAndDriver:
    def test_planted_fixture_reports_every_family(self):
        report = lint_source_tree(FIXTURES)
        found = set(codes(report.findings))
        assert found == {"DET001", "CONC001", "CONC002", "CONC003",
                         "RES001", "RES002"}

    def test_baseline_grandfathers_known_findings(self, tmp_path):
        report = lint_source_tree(FIXTURES)
        baseline = Baseline.from_findings(report.findings, "planted")
        path = write_baseline(tmp_path / "baseline.json", baseline)
        rebaselined = lint_source_tree(FIXTURES,
                                       baseline=load_baseline(path))
        assert not len(rebaselined.findings)
        assert len(rebaselined.grandfathered) == len(report.findings)
        assert rebaselined.ok

    def test_baseline_round_trip_is_byte_identical(self, tmp_path):
        report = lint_source_tree(FIXTURES)
        baseline = Baseline.from_findings(report.findings, "planted")
        path = write_baseline(tmp_path / "baseline.json", baseline)
        first = path.read_text()
        write_baseline(path, load_baseline(path))
        assert path.read_text() == first

    def test_finding_key_ignores_line_numbers(self):
        from repro.check import Finding, Severity
        a = Finding("DET001", Severity.WARNING, "msg", "mod.py:10")
        b = Finding("DET001", Severity.WARNING, "msg", "mod.py:99")
        c = Finding("DET001", Severity.WARNING, "other", "mod.py:10")
        assert finding_key(a) == finding_key(b)
        assert finding_key(a) != finding_key(c)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json").entries == []

    def test_inline_pragma_suppresses_and_counts(self, tmp_path):
        lint_module(tmp_path, """
            import random
            def draw():
                return random.random()  # lint: allow(DET001)
        """)
        report = lint_source_tree(tmp_path)
        assert not len(report.findings)
        assert report.inline_suppressed == 1

    def test_repro_tree_is_clean(self):
        # The acceptance bar: the shipped tree lints clean against the
        # committed (empty) baseline.
        report = lint_source_tree(REPRO_ROOT)
        assert not len(report.findings), report.findings.render()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCodeLintCLI:
    def test_clean_tree_exits_zero(self):
        code, out = run_cli(["check", "--code", "--strict",
                             "--path", str(REPRO_ROOT)])
        assert code == 0
        assert "OK" in out

    def test_planted_fixtures_fail(self):
        code, out = run_cli(["check", "--code", "--path", str(FIXTURES)])
        assert code == 1
        assert "CONC003" in out

    def test_strict_fails_on_warnings_only(self, tmp_path):
        (tmp_path / "warn_only.py").write_text(
            "import random\nVALUE = random.random()\n")
        lax, _ = run_cli(["check", "--code", "--path", str(tmp_path)])
        strict, _ = run_cli(["check", "--code", "--strict",
                             "--path", str(tmp_path)])
        assert (lax, strict) == (0, 1)

    def test_json_output(self):
        code, out = run_cli(["check", "--code", "--json",
                             "--path", str(FIXTURES)])
        payload = json.loads(out)
        assert code == 1
        assert payload["ok"] is False
        assert payload["modules_checked"] == 2
        assert {f["code"] for f in payload["findings"]} >= {"DET001"}

    def test_write_baseline_then_pass(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        code, out = run_cli(["check", "--code", "--path", str(FIXTURES),
                             "--baseline", str(baseline),
                             "--write-baseline"])
        assert code == 0 and baseline.exists()
        code, out = run_cli(["check", "--code", "--strict",
                             "--path", str(FIXTURES),
                             "--baseline", str(baseline)])
        assert code == 0
        assert "baselined" in out
