"""Parallel candidate costing and the persistent evaluation cache.

Covers the engine's two hard guarantees:

* **determinism** — a search with ``jobs=4`` produces a DesignResult
  identical to the serial run (mapping digest, applied log, estimated
  cost, configuration) on both bundled datasets;
* **durability** — evaluations persisted by one run are served as warm
  hits to the next, down to a warm full search performing zero exact
  evaluations.

Plus the greedy-loop regression (a round winner rejected by the exact
re-check must stay eligible for later rounds) and the feasible/
infeasible split of the in-memory memo's hit counters.
"""

import dataclasses

import pytest

from repro.experiments import DatasetBundle
from repro.mapping import hybrid_inlining
from repro.obs import Tracer, find_spans
from repro.search import (CacheKey, EvaluationCache, GreedySearch,
                          MappingEvaluator, NaiveGreedySearch,
                          mapping_digest, problem_digest, resolve_jobs)
from repro.search.candidate_selection import CandidateSet
from repro.workload import Workload


@pytest.fixture(scope="module")
def problems():
    out = {}
    for name in ("dblp", "movie"):
        maker = getattr(DatasetBundle, name)
        bundle = maker(scale=150, seed=11)
        workload = bundle.workload_generator(seed=5).generate(4)
        out[name] = (bundle, workload)
    return out


def _result_fingerprint(result):
    return (mapping_digest(result.mapping), tuple(result.applied),
            result.estimated_cost, result.configuration.describe())


# ----------------------------------------------------------------------
# Determinism: parallel == serial
# ----------------------------------------------------------------------


class TestParallelDeterminism:
    @pytest.mark.parametrize("dataset", ["dblp", "movie"])
    def test_greedy_jobs4_identical_to_serial(self, problems, dataset):
        bundle, workload = problems[dataset]
        serial = GreedySearch(bundle.tree, workload, bundle.stats,
                              bundle.storage_bound).run()
        parallel = GreedySearch(bundle.tree, workload, bundle.stats,
                                bundle.storage_bound, jobs=4).run()
        assert _result_fingerprint(parallel) == _result_fingerprint(serial)

    @pytest.mark.parametrize("dataset", ["dblp", "movie"])
    def test_naive_jobs4_identical_to_serial(self, problems, dataset):
        bundle, workload = problems[dataset]
        serial = NaiveGreedySearch(bundle.tree, workload, bundle.stats,
                                   bundle.storage_bound, max_rounds=2).run()
        parallel = NaiveGreedySearch(bundle.tree, workload, bundle.stats,
                                     bundle.storage_bound, max_rounds=2,
                                     jobs=4).run()
        assert _result_fingerprint(parallel) == _result_fingerprint(serial)

    def test_parallel_preserves_observability_invariants(self, problems):
        """Worker spans/counters are grafted back, so the trace
        invariants tier-1 asserts for serial runs hold at jobs=2 too."""
        bundle, workload = problems["dblp"]
        tracer = Tracer()
        result = GreedySearch(bundle.tree, workload, bundle.stats,
                              bundle.storage_bound, jobs=2,
                              tracer=tracer).run()
        counters = result.counters
        evaluate_spans = (find_spans(tracer, "evaluate.exact")
                          + find_spans(tracer, "evaluate.partial"))
        assert counters.mappings_evaluated == len(evaluate_spans)
        hits = sum(1 for span in self._iter_events(tracer)
                   if span.name == "cache_hit")
        assert counters.cache_hits == hits

    @staticmethod
    def _iter_events(tracer):
        from repro.obs import iter_spans
        for span in iter_spans(tracer):
            yield from span.events
        yield from tracer.events


# ----------------------------------------------------------------------
# REPRO_PARALLEL resolution
# ----------------------------------------------------------------------


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "8")
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("jobs", [0, -1])
    def test_explicit_non_positive_rejected(self, monkeypatch, jobs):
        # ``--jobs 0`` used to be silently clamped to a serial run,
        # masking the typo; now it is a loud error.
        monkeypatch.setenv("REPRO_PARALLEL", "8")
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            resolve_jobs(jobs)

    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert resolve_jobs() == 1

    @pytest.mark.parametrize("raw", ["0", "off", "false", ""])
    def test_disabled_values(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PARALLEL", raw)
        assert resolve_jobs() == 1

    @pytest.mark.parametrize("raw", ["1", "auto", "on"])
    def test_auto_uses_all_cpus(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_PARALLEL", raw)
        import os
        assert resolve_jobs() == max(2, os.cpu_count() or 1)

    def test_explicit_count_via_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "6")
        assert resolve_jobs() == 6

    def test_garbage_env_means_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "many")
        assert resolve_jobs() == 1


# ----------------------------------------------------------------------
# Persistent cache round trips
# ----------------------------------------------------------------------


@pytest.fixture()
def small_problem(problems):
    bundle, _ = problems["dblp"]
    workload = Workload.from_strings("w", ["/dblp/inproceedings/title"])
    return bundle, workload


class TestEvaluationCache:
    def test_cold_miss_then_warm_hit_then_clear(self, small_problem,
                                                tmp_path):
        bundle, workload = small_problem
        mapping = hybrid_inlining(bundle.tree)

        cold = EvaluationCache(tmp_path)
        ev1 = MappingEvaluator(workload, bundle.stats,
                               bundle.storage_bound, cache=cold)
        first = ev1.evaluate(mapping)
        assert first is not None
        assert ev1.counters.mappings_evaluated == 1
        assert ev1.counters.persistent_cache_hits == 0
        assert len(cold.entries()) == 1

        warm = EvaluationCache(tmp_path)
        ev2 = MappingEvaluator(workload, bundle.stats,
                               bundle.storage_bound, cache=warm)
        second = ev2.evaluate(mapping)
        assert second is not None
        assert second.total_cost == first.total_cost
        assert second.tuning.configuration.describe() == \
            first.tuning.configuration.describe()
        assert ev2.counters.mappings_evaluated == 0
        assert ev2.counters.persistent_cache_hits == 1

        assert warm.clear() == 1
        assert warm.entries() == []
        ev3 = MappingEvaluator(workload, bundle.stats,
                               bundle.storage_bound,
                               cache=EvaluationCache(tmp_path))
        assert ev3.evaluate(mapping) is not None
        assert ev3.counters.mappings_evaluated == 1  # re-costed

    def test_invalidate_single_entry(self, small_problem, tmp_path):
        bundle, workload = small_problem
        mapping = hybrid_inlining(bundle.tree)
        cache = EvaluationCache(tmp_path)
        MappingEvaluator(workload, bundle.stats, bundle.storage_bound,
                         cache=cache).evaluate(mapping)
        key = CacheKey(problem=problem_digest(workload, bundle.stats,
                                              bundle.storage_bound),
                       mapping=mapping_digest(mapping))
        assert cache.invalidate(key) is True
        assert cache.invalidate(key) is False
        assert cache.entries() == []

    def test_different_problem_never_collides(self, small_problem,
                                              tmp_path):
        bundle, workload = small_problem
        other = Workload.from_strings("w2", ["/dblp/book/publisher"])
        mapping = hybrid_inlining(bundle.tree)
        cache = EvaluationCache(tmp_path)
        MappingEvaluator(workload, bundle.stats, bundle.storage_bound,
                         cache=cache).evaluate(mapping)
        ev = MappingEvaluator(other, bundle.stats, bundle.storage_bound,
                              cache=EvaluationCache(tmp_path))
        ev.evaluate(mapping)
        assert ev.counters.persistent_cache_hits == 0
        assert ev.counters.mappings_evaluated == 1
        assert len(cache.entries()) == 2

    def test_problem_digest_stable_across_processes(self, small_problem):
        """The joint-presence stats are keyed by frozensets; their repr
        order follows string hash randomization, so the digest must
        canonicalize dict keys or warm cache hits (and checkpoint
        resume) break across interpreter runs."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        bundle, workload = small_problem
        local = problem_digest(workload, bundle.stats, bundle.storage_bound)
        src = str(Path(__file__).resolve().parents[1] / "src")
        script = (
            "from repro.experiments import DatasetBundle\n"
            "from repro.search import problem_digest\n"
            "from repro.workload import Workload\n"
            "bundle = DatasetBundle.dblp(scale=150, seed=11)\n"
            "workload = Workload.from_strings('w', "
            "['/dblp/inproceedings/title'])\n"
            "print(problem_digest(workload, bundle.stats, "
            "bundle.storage_bound))\n")
        for hashseed in ("1", "2"):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={**os.environ, "PYTHONPATH": src,
                     "PYTHONHASHSEED": hashseed})
            assert proc.stdout.strip() == local

    def test_corrupt_entry_is_a_miss(self, small_problem, tmp_path):
        bundle, workload = small_problem
        mapping = hybrid_inlining(bundle.tree)
        cache = EvaluationCache(tmp_path)
        MappingEvaluator(workload, bundle.stats, bundle.storage_bound,
                         cache=cache).evaluate(mapping)
        [entry] = cache.entries()
        entry.write_bytes(b"not a pickle")
        ev = MappingEvaluator(workload, bundle.stats, bundle.storage_bound,
                              cache=EvaluationCache(tmp_path))
        assert ev.evaluate(mapping) is not None
        assert ev.counters.persistent_cache_hits == 0
        assert ev.counters.mappings_evaluated == 1

    def test_warm_full_search_performs_zero_evaluations(self, problems,
                                                        tmp_path):
        bundle, workload = problems["dblp"]
        first = GreedySearch(bundle.tree, workload, bundle.stats,
                             bundle.storage_bound,
                             cache=EvaluationCache(tmp_path)).run()
        second = GreedySearch(bundle.tree, workload, bundle.stats,
                              bundle.storage_bound,
                              cache=EvaluationCache(tmp_path)).run()
        assert second.counters.mappings_evaluated == 0
        assert second.counters.persistent_cache_hits > 0
        assert _result_fingerprint(second) == _result_fingerprint(first)


# ----------------------------------------------------------------------
# Feasible vs. infeasible memo hits (bugfix)
# ----------------------------------------------------------------------


class TestInfeasibleHitSplit:
    def test_cached_none_counts_as_infeasible_hit(self, problems):
        bundle, _ = problems["dblp"]
        # No mapping can translate a path that does not exist in the
        # schema, so every evaluation of this workload is infeasible.
        workload = Workload.from_strings("w", ["/dblp/nonexistent/title"])
        evaluator = MappingEvaluator(workload, bundle.stats)
        mapping = hybrid_inlining(bundle.tree)
        assert evaluator.evaluate(mapping) is None
        assert evaluator.evaluate(mapping) is None
        assert evaluator.counters.cache_hits == 0
        assert evaluator.counters.cache_hits_infeasible == 1
        assert evaluator.counters.mappings_evaluated == 1

    def test_feasible_hit_still_counts_as_cache_hit(self, problems):
        bundle, _ = problems["dblp"]
        workload = Workload.from_strings("w", ["/dblp/inproceedings/title"])
        evaluator = MappingEvaluator(workload, bundle.stats)
        mapping = hybrid_inlining(bundle.tree)
        assert evaluator.evaluate(mapping) is not None
        assert evaluator.evaluate(mapping) is not None
        assert evaluator.counters.cache_hits == 1
        assert evaluator.counters.cache_hits_infeasible == 0


# ----------------------------------------------------------------------
# Greedy loop: rejected round winners stay eligible (bugfix)
# ----------------------------------------------------------------------


class _Named:
    """A stand-in transformation: identity plus a printable name."""

    def __init__(self, name):
        self.name = name

    def __str__(self):
        return self.name


class _ScriptedGreedy(GreedySearch):
    """Greedy with fabricated candidate costs.

    Candidate ``X`` derives far below the current cost in round 1 but
    its exact re-check comes back *above* it (stale derivation), so the
    round is lost. ``Y`` wins round 2, which changes the current
    mapping — after which ``X``'s costs are genuinely good and it must
    win round 3. The old loop dropped ``X`` from the pool at the
    round-1 rejection and could never apply it.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.x = _Named("X")
        self.y = _Named("Y")
        self._round = 0

    def _select_candidates(self):
        candidates = CandidateSet()
        candidates.merges = [self.x, self.y]
        return candidates

    def _fake(self, base, factor, exact_factor):
        evaluated = dataclasses.replace(
            base, tuning=dataclasses.replace(
                base.tuning, total_cost=base.total_cost * factor))
        evaluated._script_exact = base.total_cost * exact_factor
        return evaluated

    def _cost_candidates(self, candidates, current, evaluator,
                         exact=False):
        if not candidates:
            return []
        self._round += 1
        base = self._base_eval
        costs = {
            # round: {candidate name: (derived factor, exact factor)}
            1: {"X": (0.5, 1.2), "Y": (0.9, 0.9)},
            2: {"Y": (0.8, 0.8)},
            3: {"X": (0.4, 0.4)},
        }.get(self._round, {})
        return [self._fake(base, *costs[str(c)]) if str(c) in costs
                else None for c in candidates]

    def _recheck_winner(self, evaluator, evaluated):
        exact = dataclasses.replace(
            evaluated, tuning=dataclasses.replace(
                evaluated.tuning, total_cost=evaluated._script_exact))
        return exact


class TestRejectedWinnerStaysEligible:
    def test_rejected_candidate_wins_a_later_round(self, small_problem):
        bundle, workload = small_problem
        search = _ScriptedGreedy(bundle.tree, workload, bundle.stats)
        # Capture the base evaluation the script scales its costs from.
        original = _ScriptedGreedy._run_with

        def patched(self, evaluator):
            self._base_eval = evaluator.evaluate(self.base_mapping)
            return original(self, evaluator)

        search._run_with = patched.__get__(search)
        result = search.run()
        assert result.applied == ["Y", "X"]
        assert result.estimated_cost == pytest.approx(
            search._base_eval.total_cost * 0.4)

    def test_rejection_without_state_change_still_terminates(
            self, small_problem):
        bundle, workload = small_problem

        class _AlwaysRejected(_ScriptedGreedy):
            def _cost_candidates(self, candidates, current, evaluator,
                                 exact=False):
                if not candidates:
                    return []
                base = self._base_eval
                return [self._fake(base, 0.5, 1.5) for _ in candidates]

        search = _AlwaysRejected(bundle.tree, workload, bundle.stats)
        original = _AlwaysRejected._run_with

        def patched(self, evaluator):
            self._base_eval = evaluator.evaluate(self.base_mapping)
            return original(self, evaluator)

        search._run_with = patched.__get__(search)
        result = search.run()
        # Every winner is rejected against an unchanged mapping, so the
        # pool drains through the held-back list and the search stops.
        assert result.applied == []
