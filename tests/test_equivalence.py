"""End-to-end equivalence: for any mapping, shredding + translated SQL
must return the same values as the XPath reference evaluator on the
original document.

This exercises the whole pipeline — schema derivation, shredding,
translation, optimization, and execution — across structurally different
mappings (hybrid, shared, fully split, repetition split, union
distributions) and across physical designs (which must never change
results).
"""

import pytest

from repro.datasets import (dblp_schema, generate_dblp, generate_movies,
                            movie_schema)
from repro.engine import Database
from repro.mapping import (UnionDistribution, derive_schema, fully_split,
                           hybrid_inlining, load_documents, shared_inlining)
from repro.translate import translate_xpath
from repro.xpath import evaluate_values, parse_xpath
from repro.xsd import NodeKind

DBLP_QUERIES = [
    '/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]/(title | year | author)',
    '/dblp/inproceedings[year = "2000"]/title',
    '/dblp/inproceedings[year >= "2000"]/(title | booktitle)',
    '/dblp/inproceedings[author = "Author 3"]/title',
    "/dblp/inproceedings[ee]/title",
    "/dblp/inproceedings/author",
    "/dblp/book/(title | publisher | author)",
    "//author",
    '//book[year >= "1990"]/title',
    "/dblp/inproceedings/(title | ee | cdrom)",
    '/dblp/inproceedings[booktitle = "VLDB"]/(title | author | cite)',
]

MOVIE_QUERIES = [
    '//movie[title = "Lost Empire 3"]/(aka_title | avg_rating)',
    "//movie/box_office",
    "//movie/seasons",
    '//movie[year >= "1990"]/title',
    "//movie[avg_rating]/title",
    "//movie/(title | year)",
    '//movie[seasons = "3"]/title',
    "//movie/aka_title",
    '//movie[aka_title = "AKA Dark River 7 #1"]/title',
    "//movie/(title | year | aka_title | avg_rating | box_office | seasons)",
]


def dblp_mappings():
    tree = dblp_schema()
    hybrid = hybrid_inlining(tree)
    author = tree.find_tag_by_path(("dblp", "inproceedings", "author"))
    rep = tree.parent(author)
    yield "hybrid", hybrid
    yield "shared", shared_inlining(tree)
    yield "fully-split", fully_split(tree)
    yield "rep-split-5", hybrid.with_split(rep.node_id, 5)
    yield "rep-split-1", hybrid.with_split(rep.node_id, 1)
    ee_opt = tree.parent(tree.find_tag_by_path(("dblp", "inproceedings", "ee")))
    yield "implicit-ee", hybrid.with_distribution(
        UnionDistribution(optional_ids=frozenset({ee_opt.node_id})))


def movie_mappings():
    tree = movie_schema()
    hybrid = hybrid_inlining(tree)
    choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
    aka = tree.find_tag_by_path(("movies", "movie", "aka_title"))
    rep = tree.parent(aka)
    year_opt = tree.parent(tree.find_tag_by_path(("movies", "movie", "year")))
    rating_opt = tree.parent(
        tree.find_tag_by_path(("movies", "movie", "avg_rating")))
    yield "hybrid", hybrid
    yield "fully-split", fully_split(tree)
    yield "choice-dist", hybrid.with_distribution(
        UnionDistribution(choice_id=choice.node_id))
    yield "merged-implicit", hybrid.with_distribution(
        UnionDistribution(optional_ids=frozenset(
            {year_opt.node_id, rating_opt.node_id})))
    yield "kitchen-sink", (
        hybrid.with_split(rep.node_id, 2)
        .with_distribution(UnionDistribution(choice_id=choice.node_id))
        .with_distribution(UnionDistribution(
            optional_ids=frozenset({year_opt.node_id}))))


def result_values(result):
    """Non-null projection values of a sorted-outer-union result, as
    strings (matching the evaluator's string values)."""
    values = []
    for row in result.rows:
        for value in row[1:]:
            if value is not None:
                values.append(str(value))
    return values


def run_equivalence(tree, doc, mapping, queries):
    schema = derive_schema(mapping)
    db = Database()
    load_documents(db, schema, doc)
    mismatches = []
    for xpath in queries:
        expected = sorted(evaluate_values(parse_xpath(xpath), doc))
        sql = translate_xpath(schema, xpath)
        got = sorted(result_values(db.execute(sql)))
        if got != expected:
            mismatches.append((xpath, len(expected), len(got)))
    assert not mismatches, mismatches


@pytest.fixture(scope="module")
def dblp_doc():
    return generate_dblp(350, seed=9)


@pytest.fixture(scope="module")
def movie_doc():
    return generate_movies(350, seed=9)


@pytest.mark.parametrize("name,mapping", list(dblp_mappings()),
                         ids=[n for n, _ in dblp_mappings()])
def test_dblp_equivalence(name, mapping, dblp_doc):
    run_equivalence(dblp_schema(), dblp_doc, mapping, DBLP_QUERIES)


@pytest.mark.parametrize("name,mapping", list(movie_mappings()),
                         ids=[n for n, _ in movie_mappings()])
def test_movie_equivalence(name, mapping, movie_doc):
    run_equivalence(movie_schema(), movie_doc, mapping, MOVIE_QUERIES)


def test_results_invariant_under_physical_design(dblp_doc):
    """Indexes and views never change query results, only cost."""
    tree = dblp_schema()
    schema = derive_schema(hybrid_inlining(tree))
    db = Database()
    load_documents(db, schema, dblp_doc)
    xpath = '/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]' \
            '/(title | year | author)'
    sql = translate_xpath(schema, xpath)
    before = sorted(result_values(db.execute(sql)))
    db.create_index("ix_bt", "inproc", ["booktitle"],
                    included_columns=["title", "year"])
    db.create_index("ix_apid", "author", ["PID"],
                    included_columns=["author"])
    after = sorted(result_values(db.execute(sql)))
    assert before == after
