"""Parse (a practical subset of) XML Schema documents into schema trees.

Supported constructs:

* ``xs:element`` with inline ``xs:complexType``, a named complex type
  reference (``type="SomeType"`` — this is how *shared types* enter the
  tree), or a base simple type (``type="xs:string"`` etc.),
* ``xs:sequence`` and ``xs:choice`` compositors,
* ``minOccurs`` / ``maxOccurs`` (including ``unbounded``),
* a vendor annotation attribute ``sdb:table="name"`` assigning the
  initial table annotation ``A`` of the paper's ``T(V, E, A)``.

Namespace prefixes are stripped; only local names matter here.
"""

from __future__ import annotations

from ..errors import XSDError
from ..xmlkit import Document, Element, parse as parse_xml
from .nodes import UNBOUNDED, BaseType, NodeKind, SchemaNode
from .tree import SchemaTree, TreeBuilder

_BASE_TYPES = {
    "string": BaseType.STRING,
    "integer": BaseType.INTEGER,
    "int": BaseType.INTEGER,
    "long": BaseType.INTEGER,
    "decimal": BaseType.DECIMAL,
    "double": BaseType.DECIMAL,
    "float": BaseType.DECIMAL,
    "date": BaseType.DATE,
    "gYear": BaseType.INTEGER,
    "boolean": BaseType.BOOLEAN,
}


def _local(name: str) -> str:
    """Strip any namespace prefix."""
    return name.rsplit(":", 1)[-1]


def _occurs(el: Element) -> tuple[int, int]:
    min_occurs = int(el.attributes.get("minOccurs", "1"))
    raw_max = el.attributes.get("maxOccurs", "1")
    max_occurs = UNBOUNDED if raw_max == "unbounded" else int(raw_max)
    if max_occurs != UNBOUNDED and max_occurs < min_occurs:
        raise XSDError(f"maxOccurs < minOccurs on <{el.tag}>")
    return min_occurs, max_occurs


def _table_annotation(el: Element) -> str | None:
    for name, value in el.attributes.items():
        if _local(name) == "table":
            return value
    return None


class _XSDReader:
    """Single-use reader turning one ``xs:schema`` document into a tree."""

    def __init__(self, schema_el: Element, name: str):
        self.schema_el = schema_el
        self.builder = TreeBuilder(name)
        self.named_types: dict[str, Element] = {}
        self._expanding: list[str] = []
        self._collect_named_types()

    def _collect_named_types(self) -> None:
        for child in self.schema_el.children:
            if _local(child.tag) == "complexType":
                type_name = child.attributes.get("name")
                if not type_name:
                    raise XSDError("top-level complexType requires a name")
                if type_name in self.named_types:
                    raise XSDError(f"duplicate complexType {type_name!r}")
                self.named_types[type_name] = child

    def read(self) -> SchemaTree:
        roots = [c for c in self.schema_el.children if _local(c.tag) == "element"]
        if len(roots) != 1:
            raise XSDError("schema must declare exactly one top-level element")
        root_node = self._read_element(roots[0], parent=None)
        return self.builder.build(root_node)

    # ------------------------------------------------------------------
    def _read_element(self, el: Element, parent: SchemaNode | None) -> SchemaNode:
        name = el.attributes.get("name")
        if not name:
            raise XSDError("xs:element requires a name")
        min_occurs, max_occurs = _occurs(el)
        attach = parent
        if attach is not None and (max_occurs == UNBOUNDED or max_occurs > 1):
            attach = self.builder.rep(attach, min_occurs, max_occurs)
        elif attach is not None and min_occurs == 0:
            attach = self.builder.opt(attach)
        tag = self.builder.tag(name, attach, annotation=_table_annotation(el))
        self._read_element_content(el, tag)
        return tag

    def _read_element_content(self, el: Element, tag: SchemaNode) -> None:
        type_ref = el.attributes.get("type")
        inline = [c for c in el.children if _local(c.tag) == "complexType"]
        if type_ref and inline:
            raise XSDError(f"element {tag.name!r} has both type= and inline complexType")
        if type_ref:
            local = _local(type_ref)
            if local in _BASE_TYPES:
                self.builder.simple(tag, _BASE_TYPES[local])
            elif local in self.named_types:
                if local in self._expanding:
                    cycle = " -> ".join(self._expanding + [local])
                    raise XSDError(
                        f"recursive complexType {cycle}; recursive schemas "
                        f"are out of scope (paper Section 2)")
                self._expanding.append(local)
                self._read_complex_type(self.named_types[local], tag)
                self._expanding.pop()
            else:
                raise XSDError(f"unknown type {type_ref!r} on element {tag.name!r}")
        elif inline:
            self._read_complex_type(inline[0], tag)
        else:
            # No content model: treat as a string leaf.
            self.builder.simple(tag, BaseType.STRING)

    def _read_complex_type(self, ct: Element, tag: SchemaNode) -> None:
        compositors = [c for c in ct.children
                       if _local(c.tag) in ("sequence", "choice")]
        attributes = [c for c in ct.children
                      if _local(c.tag) == "attribute"]
        if not compositors and not attributes:
            raise XSDError(
                f"complexType for element {tag.name!r} needs a sequence, "
                f"choice, or attributes")
        for compositor in compositors:
            self._read_compositor(compositor, tag)
        for attribute in attributes:
            self._read_attribute(attribute, tag)
        if not compositors:
            # Attribute-only content: the element value is a string leaf.
            self.builder.simple(tag, BaseType.STRING)

    def _read_attribute(self, el: Element, tag: SchemaNode) -> None:
        name = el.attributes.get("name")
        if not name:
            raise XSDError(f"xs:attribute on {tag.name!r} requires a name")
        type_ref = _local(el.attributes.get("type", "xs:string"))
        base = _BASE_TYPES.get(type_ref)
        if base is None:
            raise XSDError(
                f"unsupported attribute type {type_ref!r} on {tag.name!r}")
        required = el.attributes.get("use") == "required"
        self.builder.attribute(name, tag, base, required=required)

    def _read_compositor(self, el: Element, parent: SchemaNode) -> None:
        local = _local(el.tag)
        min_occurs, max_occurs = _occurs(el)
        attach = parent
        if max_occurs == UNBOUNDED or max_occurs > 1:
            attach = self.builder.rep(attach, min_occurs, max_occurs)
        elif min_occurs == 0:
            attach = self.builder.opt(attach)
        if local == "sequence":
            # Sequences are flattened: children attach to the parent
            # directly unless the sequence itself repeats or is optional.
            target = attach
            if attach is not parent:
                target = self.builder.seq(attach)
            for child in el.children:
                self._read_particle(child, target)
        elif local == "choice":
            choice = self.builder.choice(attach)
            for child in el.children:
                self._read_particle(child, choice)
            if len(choice.child_ids) < 2:
                raise XSDError("xs:choice needs at least two alternatives")
        else:  # pragma: no cover - guarded by caller
            raise XSDError(f"unsupported compositor <{el.tag}>")

    def _read_particle(self, el: Element, parent: SchemaNode) -> None:
        local = _local(el.tag)
        if local == "element":
            self._read_element(el, parent)
        elif local in ("sequence", "choice"):
            self._read_compositor(el, parent)
        elif local == "annotation":
            return
        else:
            raise XSDError(f"unsupported schema construct <{el.tag}>")


def parse_xsd(source: str | Document, name: str = "schema") -> SchemaTree:
    """Parse XSD text (or a pre-parsed document) into a schema tree."""
    doc = parse_xml(source) if isinstance(source, str) else source
    if _local(doc.root.tag) != "schema":
        raise XSDError(f"expected <schema> root, found <{doc.root.tag}>")
    return _XSDReader(doc.root, name).read()


def parse_xsd_file(path: str, name: str | None = None) -> SchemaTree:
    """Parse an XSD file into a schema tree."""
    with open(path, encoding="utf-8") as handle:
        return parse_xsd(handle.read(), name=name or path)
