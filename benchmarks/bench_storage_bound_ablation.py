"""Ablation — the storage bound S of Definition 1.

The paper fixes S so "there is enough space for all indexes recommended
by the physical design tool" (Table 1). This bench sweeps S from
data-size-only up to unconstrained and checks the advisor degrades
gracefully: measured workload cost is non-increasing as the bound
relaxes, and the configuration always fits its bound.
"""

from repro.experiments import (format_table, measure_workload, realize,
                               tuned_hybrid_baseline)
from repro.search import MappingEvaluator
from repro.mapping import hybrid_inlining


def test_storage_bound_sweep(benchmark, dblp_bundle, emit):
    workload = dblp_bundle.workload_generator(seed=47).generate(8)
    mapping = hybrid_inlining(dblp_bundle.tree)

    def sweep():
        # Data size under the hybrid mapping (from a throwaway run).
        probe = MappingEvaluator(workload, dblp_bundle.stats).evaluate(mapping)
        data_bytes = sum(t.size_bytes
                         for t in probe.database.catalog.base_tables())
        factors = [1.05, 1.25, 1.5, 2.0, 4.0]
        points = []
        for factor in factors:
            bound = int(data_bytes * factor)
            evaluator = MappingEvaluator(workload, dblp_bundle.stats,
                                         storage_bound=bound)
            evaluated = evaluator.evaluate(mapping)
            db = realize(evaluated.schema, evaluated.tuning.configuration,
                         dblp_bundle.docs)
            measured = measure_workload(db, evaluated.sql_queries)
            design_bytes = evaluated.tuning.configuration.size_bytes(
                evaluated.database)
            points.append((factor, bound, design_bytes, measured,
                           len(evaluated.tuning.configuration)))
        return data_bytes, points

    data_bytes, points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(format_table(
        "Ablation — storage bound sweep (DBLP, hybrid mapping)",
        ["bound (x data)", "design KB", "structures", "measured cost"],
        [[f"{factor:.2f}", f"{design / 1024:.0f}", count, cost]
         for factor, bound, design, cost, count in points],
        note=f"data size {data_bytes / 1024:.0f} KB"))
    # Configurations always fit their bound.
    for factor, bound, design, _, _ in points:
        assert data_bytes + design <= bound * 1.001
    # More space never hurts (by more than measurement granularity).
    costs = [cost for _, _, _, cost, _ in points]
    for tighter, looser in zip(costs, costs[1:]):
        assert looser <= tighter * 1.10
    # The relaxed end uses the space to go meaningfully faster.
    assert costs[-1] <= costs[0]
