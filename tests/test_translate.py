"""Unit tests for XPath-to-SQL translation."""

import pytest

from repro.datasets import dblp_schema, movie_schema
from repro.errors import TranslationError
from repro.mapping import (UnionDistribution, derive_schema, fully_split,
                           hybrid_inlining, shared_inlining)
from repro.sqlast import Exists, Or, parse_sql
from repro.translate import Translator, resolve_steps, translate_xpath
from repro.xpath import parse_xpath
from repro.xsd import NodeKind


@pytest.fixture(scope="module")
def dblp():
    return dblp_schema()


@pytest.fixture(scope="module")
def movie():
    return movie_schema()


class TestResolveSteps:
    def test_absolute_child_path(self, dblp):
        q = parse_xpath("/dblp/inproceedings/title")
        nodes = resolve_steps(dblp, q.steps)
        assert len(nodes) == 1
        assert dblp.tag_path(nodes[0]) == ("dblp", "inproceedings", "title")

    def test_descendant_matches_both_titles(self, dblp):
        q = parse_xpath("//title")
        nodes = resolve_steps(dblp, q.steps)
        assert len(nodes) == 2

    def test_descendant_under_context(self, dblp):
        q = parse_xpath("//book/author")
        nodes = resolve_steps(dblp, q.steps)
        assert len(nodes) == 1
        assert dblp.tag_path(nodes[0]) == ("dblp", "book", "author")

    def test_no_match(self, dblp):
        q = parse_xpath("/dblp/nonexistent")
        assert resolve_steps(dblp, q.steps) == []


class TestHybridTranslation:
    def test_paper_mapping1_shape(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        q = translate_xpath(
            schema,
            '/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]'
            '/(title | year | author)')
        assert len(q.selects) == 2
        assert q.order_by == (1,)
        # Branch widths: ID + title + year + author.
        assert q.width == 4
        assert q.referenced_tables == frozenset({"inproc", "author"})
        # Round-trips through the SQL parser.
        assert parse_sql(str(q)) == q

    def test_mapping2_repetition_split_shape(self, dblp):
        author = dblp.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = dblp.parent(author)
        schema = derive_schema(hybrid_inlining(dblp).with_split(rep.node_id, 5))
        q = translate_xpath(
            schema,
            '/dblp/inproceedings[booktitle = "SIGMOD CONFERENCE"]'
            '/(title | year | author)')
        # ID + title + year + author_1..5 + overflow.
        assert q.width == 9
        first = str(q.selects[0])
        assert "author_1" in first and "author_5" in first

    def test_selection_on_child_table_becomes_exists(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        q = translate_xpath(schema,
                            '/dblp/inproceedings[author = "X"]/title')
        where = q.selects[0].where
        assert isinstance(where, Exists)

    def test_selection_on_split_mixes_columns_and_exists(self, dblp):
        author = dblp.find_tag_by_path(("dblp", "inproceedings", "author"))
        rep = dblp.parent(author)
        schema = derive_schema(hybrid_inlining(dblp).with_split(rep.node_id, 2))
        q = translate_xpath(schema,
                            '/dblp/inproceedings[author = "X"]/title')
        where = q.selects[0].where
        assert isinstance(where, Or)
        kinds = [type(item).__name__ for item in where.items]
        assert kinds.count("Comparison") == 2
        assert kinds.count("Exists") == 1

    def test_existence_predicate(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        q = translate_xpath(schema, "/dblp/inproceedings[ee]/title")
        assert "ee IS NOT NULL" in str(q)

    def test_shared_type_context_unions_both(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        q = translate_xpath(schema, "//author")
        # author table shared: one branch suffices (self projection).
        assert q.referenced_tables == {"author"}

    def test_outlined_title_follows_join(self, dblp):
        schema = derive_schema(shared_inlining(dblp))
        q = translate_xpath(schema, "/dblp/book/(title | year)")
        assert "title1" in q.referenced_tables

    def test_leaf_context_returns_value(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        q = translate_xpath(schema, "/dblp/inproceedings/year")
        assert q.width == 2  # ID + year

    def test_predicate_on_middle_step_rejected(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        with pytest.raises(TranslationError):
            translate_xpath(schema, '/dblp[inproceedings = "x"]/book/title')

    def test_unknown_path_rejected(self, dblp):
        schema = derive_schema(hybrid_inlining(dblp))
        with pytest.raises(TranslationError):
            translate_xpath(schema, "/dblp/nonexistent/title")


class TestPartitionedTranslation:
    def choice_schema(self, movie):
        choice = movie.nodes_of_kind(NodeKind.CHOICE)[0]
        return derive_schema(hybrid_inlining(movie).with_distribution(
            UnionDistribution(choice_id=choice.node_id)))

    def test_branch_column_prunes_partitions(self, movie):
        schema = self.choice_schema(movie)
        q = translate_xpath(schema, "//movie/box_office")
        assert q.referenced_tables == {"movie_box_office"}

    def test_common_column_unions_partitions(self, movie):
        schema = self.choice_schema(movie)
        q = translate_xpath(schema, "//movie/title")
        assert q.referenced_tables == {"movie_box_office", "movie_seasons"}

    def test_predicate_on_branch_column_prunes(self, movie):
        schema = self.choice_schema(movie)
        q = translate_xpath(schema, '//movie[seasons = "3"]/title')
        assert q.referenced_tables == {"movie_seasons"}

    def test_implicit_union_prunes_absent_partition(self, movie):
        year_opt = movie.parent(
            movie.find_tag_by_path(("movies", "movie", "year")))
        schema = derive_schema(hybrid_inlining(movie).with_distribution(
            UnionDistribution(optional_ids=frozenset({year_opt.node_id}))))
        q = translate_xpath(schema, '//movie[year = "1997"]/title')
        assert q.referenced_tables == {"movie_has_year"}

    def test_merged_union_keeps_both_queries_single_partition(self, movie):
        year_opt = movie.parent(
            movie.find_tag_by_path(("movies", "movie", "year")))
        rating_opt = movie.parent(
            movie.find_tag_by_path(("movies", "movie", "avg_rating")))
        schema = derive_schema(hybrid_inlining(movie).with_distribution(
            UnionDistribution(optional_ids=frozenset(
                {year_opt.node_id, rating_opt.node_id}))))
        q1 = translate_xpath(schema, "//movie/year")
        q2 = translate_xpath(schema, "//movie/avg_rating")
        # Section 4.7's c3: both queries access only the has-partition.
        for q in (q1, q2):
            assert len(q.referenced_tables) == 1
            assert "has" in next(iter(q.referenced_tables))

    def test_fully_split_movie_query(self, movie):
        schema = derive_schema(fully_split(movie))
        q = translate_xpath(schema,
                            '//movie[title = "X"]/(aka_title | avg_rating)')
        # title, aka_title, avg_rating all live in their own tables.
        assert {"movie", "title", "aka_title", "avg_rating"} <= \
            q.referenced_tables
