"""Serving-layer tests: per-thread SQLite connections, the timed-run
contract, the plan cache, the query service, the seeded load harness,
differential validation under load, and the serve/loadgen CLI."""

import contextlib
import io
import json
import threading
import time

import pytest

from repro.backends import EngineBackend, SQLiteBackend, multiset_diff
from repro.backends.sqlite import BackendError
from repro.cli import main as cli_main
from repro.errors import WorkloadError
from repro.experiments import DatasetBundle
from repro.mapping import derive_schema, fully_split, hybrid_inlining
from repro.obs import LatencyHistogram
from repro.serve import (LoadGenerator, PlanCache, QueryService,
                         ServiceError, render_run_report)
from repro.translate import Translator
from repro.workload import MixSampler, Workload, zipf_mix
from repro.workload.model import WeightedQuery
from repro.xpath import parse_xpath

SCALE = 60
SEED = 7


@pytest.fixture(scope="module")
def dblp_bundle():
    return DatasetBundle.dblp(scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def dblp_serving(dblp_bundle):
    """Schema + loaded SQLite backend + a generated workload."""
    schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
    backend = SQLiteBackend()
    backend.load(schema, dblp_bundle.docs)
    workload = dblp_bundle.workload_generator(seed=SEED).generate(6)
    yield schema, backend, workload
    backend.close()


def _bundle(dataset: str):
    make = DatasetBundle.dblp if dataset == "dblp" else DatasetBundle.movie
    return make(scale=SCALE, seed=SEED)


def run_cli(args) -> tuple[int, str]:
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = cli_main(args)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# Satellite 1: the backend survives concurrent execution
# ----------------------------------------------------------------------


class TestSQLiteConcurrency:
    def test_same_query_from_four_threads(self, dblp_serving):
        """Regression: one shared connection used to either throw
        check_same_thread errors or race cursors; per-thread
        connections must return identical, error-free results."""
        schema, backend, _ = dblp_serving
        query = Translator(schema).translate(
            parse_xpath("//inproceedings/title"))
        expected = backend.execute(query)
        assert expected
        errors, results = [], {}
        barrier = threading.Barrier(4)

        def worker(i: int) -> None:
            try:
                barrier.wait()
                for _ in range(5):
                    results[i] = backend.execute(query)
            except Exception as exc:  # noqa: BLE001 - collected, asserted
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for rows in results.values():
            missing, extra = multiset_diff(expected, rows)
            assert not missing and not extra

    def test_worker_connections_are_per_thread(self, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        with SQLiteBackend() as backend:
            backend.load(schema, dblp_bundle.docs)
            query = Translator(schema).translate(
                parse_xpath("//inproceedings/title"))
            before = backend.open_connections
            threads = [threading.Thread(target=backend.execute,
                                        args=(query,)) for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # Each fresh thread opened exactly one connection.
            assert backend.open_connections == before + 3

    def test_close_closes_every_connection(self, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        backend = SQLiteBackend()
        backend.load(schema, dblp_bundle.docs)
        query = Translator(schema).translate(
            parse_xpath("//inproceedings/title"))
        threads = [threading.Thread(target=backend.execute, args=(query,))
                   for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert backend.open_connections >= 3
        backend.close()
        assert backend.open_connections == 0
        with pytest.raises(BackendError):
            backend.execute(query)

    def test_read_only_backend_rejects_writes(self, dblp_bundle, tmp_path):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        path = str(tmp_path / "serve.db")
        loader = SQLiteBackend(path)
        loader.load(schema, dblp_bundle.docs)
        loader.close()
        with SQLiteBackend(path, read_only=True) as backend:
            table = schema.table_names[0]
            with pytest.raises(BackendError):
                backend.execute_sql(f"DELETE FROM {table}")
            # ... from worker threads too.
            failures = []

            def try_write() -> None:
                try:
                    backend.execute_sql(f"DELETE FROM {table}")
                except BackendError:
                    failures.append("rejected")

            thread = threading.Thread(target=try_write)
            thread.start()
            thread.join()
            assert failures == ["rejected"]


# ----------------------------------------------------------------------
# Satellite 2: the time_query warmup/exclusivity contract
# ----------------------------------------------------------------------


class TestTimeQueryContract:
    def test_warmup_plus_timed_runs_on_calling_threads_connection(
            self, dblp_serving):
        schema, backend, _ = dblp_serving
        query = Translator(schema).translate(
            parse_xpath("//inproceedings/title"))
        connection = backend._thread_connection()
        statements = []
        connection.set_trace_callback(statements.append)
        try:
            timing = backend.time_query(query, repeat=3, warmup=2)
        finally:
            connection.set_trace_callback(None)
        # Every run (2 warmup + 3 timed) hit THIS thread's connection.
        selects = [s for s in statements if s.lstrip().upper()
                   .startswith("SELECT")]
        assert len(selects) == 5
        assert timing.rows > 0 and timing.seconds >= 0

    def test_concurrent_time_query_calls_never_overlap(self, dblp_serving,
                                                       monkeypatch):
        schema, backend, _ = dblp_serving
        query = Translator(schema).translate(
            parse_xpath("//inproceedings/title"))
        intervals = []
        lock = threading.Lock()
        import repro.backends.sqlite as sqlite_module
        real_timed_runs = sqlite_module.timed_runs

        def slow_timed_runs(fn, repeat, warmup):
            start = time.perf_counter()
            time.sleep(0.01)
            timing = real_timed_runs(fn, repeat=repeat, warmup=warmup)
            with lock:
                intervals.append((start, time.perf_counter()))
            return timing

        monkeypatch.setattr(sqlite_module, "timed_runs", slow_timed_runs)
        threads = [threading.Thread(
            target=backend.time_query, args=(query,)) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(intervals) == 4
        intervals.sort()
        for (_, end), (next_start, _) in zip(intervals, intervals[1:]):
            assert next_start >= end  # strictly one benchmark at a time

    def test_execute_is_not_excluded_by_the_timing_lock(self, dblp_serving):
        """The serve path must keep answering while a benchmark holds
        the timing lock — they are different paths by contract."""
        schema, backend, _ = dblp_serving
        query = Translator(schema).translate(
            parse_xpath("//inproceedings/title"))
        assert backend._timing_lock.acquire(timeout=1)
        try:
            done = threading.Event()

            def serve() -> None:
                backend.execute(query)
                done.set()

            thread = threading.Thread(target=serve)
            thread.start()
            thread.join(timeout=5)
            assert done.is_set()
        finally:
            backend._timing_lock.release()


# ----------------------------------------------------------------------
# The plan cache
# ----------------------------------------------------------------------


class TestPlanCache:
    def test_hit_after_miss_and_key_stability(self, dblp_serving):
        schema, _, _ = dblp_serving
        cache = PlanCache(schema, capacity=8)
        text = "//inproceedings/title"
        first = cache.get_or_translate(text)
        second = cache.get_or_translate(parse_xpath(text))
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)
        assert first.key == cache.key_for(parse_xpath(text))

    def test_lru_eviction_and_retranslation(self, dblp_serving):
        schema, backend, workload = dblp_serving
        queries = [str(w.query) for w in workload.queries[:3]]
        cache = PlanCache(schema, capacity=2)
        plans = [cache.get_or_translate(q) for q in queries]
        assert len(cache) == 2 and cache.evictions == 1
        assert queries[0] not in cache  # the least recently used one
        again = cache.get_or_translate(queries[0])
        assert cache.misses == 4  # re-translated after eviction
        assert again.sql == plans[0].sql  # translation is pure

    def test_key_covers_the_mapping_digest(self, dblp_bundle):
        hybrid = derive_schema(hybrid_inlining(dblp_bundle.tree))
        split = derive_schema(fully_split(dblp_bundle.tree))
        query = parse_xpath("//inproceedings/title")
        assert (PlanCache(hybrid).key_for(query)
                != PlanCache(split).key_for(query))

    def test_concurrent_misses_settle_on_one_entry(self, dblp_serving):
        schema, _, _ = dblp_serving
        cache = PlanCache(schema, capacity=8)
        barrier = threading.Barrier(4)
        plans = []
        lock = threading.Lock()

        def translate() -> None:
            barrier.wait()
            plan = cache.get_or_translate("//inproceedings/title")
            with lock:
                plans.append(plan)

        threads = [threading.Thread(target=translate) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 1
        assert len({id(p) for p in plans}) == 1  # first finisher won


# ----------------------------------------------------------------------
# The query service
# ----------------------------------------------------------------------


class TestQueryService:
    def test_serves_translated_results_and_counts(self, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        with QueryService(schema, dblp_bundle.docs, workers=2) as service:
            text = "//inproceedings/title"
            first = service.serve(text)
            second = service.serve(text)
            assert first.rows and first.rows == second.rows
            assert not first.cached_plan and second.cached_plan
            assert first.plan_key == second.plan_key
            stats = service.stats()
            assert stats.requests == 2 and stats.errors == 0
            assert stats.latency["count"] == 2
        with pytest.raises(ServiceError):
            service.serve(text)

    def test_errors_are_counted_and_raised(self, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        with QueryService(schema, dblp_bundle.docs, workers=2) as service:
            with pytest.raises(Exception):
                service.serve("//no_such_element/anywhere")
            assert service.stats().errors == 1

    def test_file_backed_service_serves_read_only(self, dblp_bundle,
                                                  tmp_path):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        path = str(tmp_path / "design.db")
        with QueryService(schema, dblp_bundle.docs, workers=2,
                          db_path=path) as service:
            result = service.serve("//inproceedings/title")
            assert result.rows
            assert service.backend.read_only
            with pytest.raises(BackendError):
                service.backend.execute_sql(
                    f"DELETE FROM {schema.table_names[0]}")


# ----------------------------------------------------------------------
# Satellite 3: seed plumbing and load determinism
# ----------------------------------------------------------------------


class TestSeedDeterminism:
    def test_mix_sampler_requires_an_explicit_seed(self, dblp_serving):
        _, _, workload = dblp_serving
        mix = zipf_mix(workload)
        with pytest.raises(WorkloadError):
            MixSampler(mix, None)
        assert MixSampler(mix, 3).sequence(20) == \
            MixSampler(mix, 3).sequence(20)
        assert MixSampler(mix, 3).sequence(50) != \
            MixSampler(mix, 4).sequence(50)

    def test_zipf_mix_ranks_by_weight_deterministically(self):
        workload = Workload("w", queries=[
            WeightedQuery(parse_xpath("//a/b"), weight=1.0),
            WeightedQuery(parse_xpath("//a/c"), weight=5.0),
            WeightedQuery(parse_xpath("//a/d"), weight=5.0),
        ])
        mix = zipf_mix(workload, skew=1.0)
        # Heaviest first; equal weights keep workload order.
        assert [str(q) for q in mix.queries] == ["//a/c", "//a/d", "//a/b"]
        assert mix.probabilities[0] > mix.probabilities[1] \
            > mix.probabilities[2]
        assert abs(sum(mix.probabilities) - 1.0) < 1e-12

    def test_bisect_sampling_matches_the_linear_scan(self, dblp_serving):
        """``sample_index`` switched from an O(queries) linear scan to
        ``bisect_left`` over the cumulative bounds. The semantics —
        first bound >= the drawn point wins — are identical, so the
        sampled sequence for a fixed (mix, seed) must be byte-identical
        to the old scan's. The reference scan below IS the old
        implementation."""
        import random as random_module
        _, _, workload = dblp_serving
        for skew, seed in ((0.0, 3), (1.0, 7), (2.5, 11)):
            mix = zipf_mix(workload, skew=skew)
            sampler = MixSampler(mix, seed)
            reference_rng = random_module.Random(seed)
            cumulative = list(sampler._cumulative)

            def reference_draw() -> int:
                point = reference_rng.random()
                for index, bound in enumerate(cumulative):
                    if point <= bound:
                        return index
                return len(cumulative) - 1

            expected = [reference_draw() for _ in range(5000)]
            assert sampler.sequence(5000) == expected
            # The head-heavy mix must actually use several indices, or
            # the identity check proves nothing.
            assert len(set(expected)) > 1

    def test_same_seed_same_sequence_across_concurrency(self, dblp_bundle):
        """The reproducibility contract: the served query sequence is a
        pure function of (mix, seed) — client/worker counts may only
        change interleaving, never the schedule."""
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        workload = dblp_bundle.workload_generator(seed=SEED).generate(5)
        mix = zipf_mix(workload)
        digests = []
        sequences = []
        for clients, workers in ((2, 2), (5, 3)):
            with QueryService(schema, dblp_bundle.docs,
                              workers=workers) as service:
                generator = LoadGenerator(service, mix, seed=41,
                                          clients=clients)
                report = generator.run(requests=60)
                assert report.errors == 0
                assert report.sequence == generator.schedule(60)
                sequences.append(report.sequence)
                digests.append(report.sequence_digest)
        assert sequences[0] == sequences[1]
        assert digests[0] == digests[1]

    def test_open_loop_arrivals_have_their_own_stream(self, dblp_bundle):
        """Arrival draws must never shift the query schedule: open and
        closed loop runs with one seed serve the same sequence."""
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        workload = dblp_bundle.workload_generator(seed=SEED).generate(4)
        mix = zipf_mix(workload)
        with QueryService(schema, dblp_bundle.docs, workers=2) as service:
            closed = LoadGenerator(service, mix, seed=9, mode="closed")
            open_loop = LoadGenerator(service, mix, seed=9, mode="open",
                                      rate=5000.0)
            assert closed.schedule(30) == open_loop.schedule(30)
            assert open_loop.arrival_gaps(30) == open_loop.arrival_gaps(30)
            report = open_loop.run(requests=30)
            assert report.sequence == closed.schedule(30)
            assert report.errors == 0

    def test_standard_suite_seed_offset_reseeds(self, dblp_bundle):
        """Regression: seed_offset used to be dead — two generators must
        produce identical suites for one offset, distinct for another."""
        def suite(offset):
            generator = dblp_bundle.workload_generator(seed=5)
            return [[str(w.query) for w in workload.queries]
                    for workload in generator.standard_suite(
                        3, seed_offset=offset)]

        assert suite(1) == suite(1)
        assert suite(1) != suite(2)

    def test_workload_generator_is_seed_deterministic(self, dblp_bundle):
        first = dblp_bundle.workload_generator(seed=13).generate(6)
        second = dblp_bundle.workload_generator(seed=13).generate(6)
        assert [str(w.query) for w in first.queries] == \
            [str(w.query) for w in second.queries]


# ----------------------------------------------------------------------
# Differential validation under load (both datasets, tiny cache)
# ----------------------------------------------------------------------


class TestDifferentialUnderLoad:
    @pytest.mark.parametrize("dataset", ["dblp", "movie"])
    def test_plan_cached_answers_match_the_engine(self, dataset):
        """Every response — cached plan, translated plan, and
        re-translated-after-eviction plan — must equal the engine
        oracle's answer as a row multiset."""
        bundle = _bundle(dataset)
        schema = derive_schema(hybrid_inlining(bundle.tree))
        workload = bundle.workload_generator(seed=SEED).generate(6)
        mix = zipf_mix(workload)
        engine = EngineBackend()
        engine.load(schema, bundle.docs)
        # Capacity 2 against 6 distinct queries forces evictions, so
        # the run exercises translate → cache → evict → re-translate.
        with QueryService(schema, bundle.docs, workers=3,
                          plan_cache_size=2) as service:
            report = LoadGenerator(service, mix, seed=17,
                                   clients=3).run(requests=90)
            assert report.errors == 0
            assert service.plan_cache.evictions > 0
            for query in mix.queries:
                served = service.serve(query)
                plan = service.plan_cache.get_or_translate(query)
                missing, extra = multiset_diff(engine.execute(plan.sql),
                                               served.rows)
                assert not missing and not extra, \
                    f"{dataset}: {query} diverges from the engine"


# ----------------------------------------------------------------------
# The load report and latency accounting
# ----------------------------------------------------------------------


class TestLoadReport:
    def test_report_shape_and_serialization(self, dblp_bundle):
        schema = derive_schema(hybrid_inlining(dblp_bundle.tree))
        workload = dblp_bundle.workload_generator(seed=SEED).generate(4)
        mix = zipf_mix(workload)
        with QueryService(schema, dblp_bundle.docs, workers=2) as service:
            report = LoadGenerator(service, mix, seed=3,
                                   clients=2).run(requests=40)
            assert len(report.records) == 40
            assert report.qps > 0
            assert 0 < report.cached_plan_rate <= 1.0
            assert report.latency(50) <= report.latency(95) \
                <= report.latency(99) <= report.latency(100)
            payload = report.to_dict()
            assert payload["requests"] == 40
            assert payload["latency_seconds"]["p50"] >= 0
            assert payload["sequence_digest"] == report.sequence_digest
            text = report.describe()
            assert "40 requests" in text and "QPS" in text
            html = render_run_report(report, service,
                                     meta={"dataset": "dblp"})
            assert html.startswith("<!DOCTYPE html>")
            assert report.sequence_digest in html
            assert "Plan cache" in html and "Traffic by query" in html


class TestLatencyHistogram:
    def test_observe_and_percentiles(self):
        histogram = LatencyHistogram("t")
        for ms in (1, 1, 2, 5, 10, 50, 100, 500):
            histogram.observe(ms / 1e3)
        assert histogram.count == 8
        assert histogram.max == pytest.approx(0.5)
        assert 0 < histogram.percentile(50) <= histogram.percentile(95)
        assert histogram.percentile(100) <= histogram.max + 1e-9
        snapshot = histogram.snapshot()
        assert set(snapshot) == {"count", "mean", "max",
                                 "p50", "p95", "p99"}
        assert sum(c for _, c in histogram.nonzero_buckets()) == 8

    def test_out_of_range_values_clamp(self):
        histogram = LatencyHistogram("t", lo=1e-3, hi=1.0)
        histogram.observe(1e-9)   # below the first bucket
        histogram.observe(100.0)  # beyond the last bound
        assert histogram.count == 2
        assert histogram.max == pytest.approx(100.0)
        assert histogram.percentile(100) <= 100.0

    def test_empty_histogram(self):
        histogram = LatencyHistogram("t")
        assert histogram.count == 0
        assert histogram.percentile(99) == 0.0
        assert histogram.snapshot()["mean"] == 0.0

    def test_thread_safe_observe(self):
        histogram = LatencyHistogram("t")

        def observe() -> None:
            for _ in range(500):
                histogram.observe(0.001)

        threads = [threading.Thread(target=observe) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == 2000


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestServeCLI:
    def test_serve_one_shot_query(self):
        code, out = run_cli([
            "serve", "--dataset", "dblp", "--scale", "60",
            "--queries", "4", "--seed", "7",
            "--xpath", "//inproceedings/title", "--limit", "2"])
        assert code == 0
        assert "rows in" in out and "translated plan" in out

    def test_loadgen_smoke_verify_and_artifacts(self, tmp_path):
        report_path = tmp_path / "run.html"
        json_path = tmp_path / "run.json"
        code, out = run_cli([
            "loadgen", "--dataset", "dblp", "--scale", "60",
            "--queries", "5", "--seed", "7", "--requests", "60",
            "--clients", "2", "--workers", "2",
            "--smoke", "--verify",
            "--report", str(report_path), "--json", str(json_path)])
        assert code == 0
        assert "smoke OK" in out and "verify OK" in out
        html = report_path.read_text(encoding="utf-8")
        assert "Plan cache" in html
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        assert payload["requests"] == 60 and payload["errors"] == 0
        assert payload["qps"] > 0
        assert payload["plan_cache"]["hits"] > 0

    def test_loadgen_cli_is_seed_deterministic(self):
        def digest() -> str:
            code, out = run_cli([
                "loadgen", "--dataset", "dblp", "--scale", "60",
                "--queries", "5", "--seed", "21", "--requests", "40",
                "--clients", "3"])
            assert code == 0
            line = [l for l in out.splitlines()
                    if "sequence digest" in l][0]
            return line.rsplit(":", 1)[1].strip()

        assert digest() == digest()
