"""SQL value types and their storage widths.

Widths drive the page model: a row's byte width is the sum of its column
widths (plus a per-row overhead), and a table's page count is derived
from that. For VARCHAR the declared width is an *average*, normally
refined from statistics.
"""

from __future__ import annotations

import enum

from ..xsd import BaseType


class SQLType(enum.Enum):
    INTEGER = "INTEGER"
    DECIMAL = "DECIMAL"
    VARCHAR = "VARCHAR"
    DATE = "DATE"
    BOOLEAN = "BOOLEAN"

    @property
    def default_width(self) -> int:
        """Average stored byte width of one value."""
        return {
            SQLType.INTEGER: 4,
            SQLType.DECIMAL: 8,
            SQLType.VARCHAR: 24,
            SQLType.DATE: 4,
            SQLType.BOOLEAN: 1,
        }[self]

    @classmethod
    def from_base_type(cls, base: BaseType) -> "SQLType":
        return {
            BaseType.STRING: cls.VARCHAR,
            BaseType.INTEGER: cls.INTEGER,
            BaseType.DECIMAL: cls.DECIMAL,
            BaseType.DATE: cls.DATE,
            BaseType.BOOLEAN: cls.BOOLEAN,
        }[base]

    def coerce(self, value):
        """Convert a string (shredded XML text) to the Python value."""
        if value is None:
            return None
        if self == SQLType.INTEGER:
            return int(str(value).strip())
        if self == SQLType.DECIMAL:
            return float(str(value).strip())
        if self == SQLType.BOOLEAN:
            return str(value).strip() in ("true", "1")
        return str(value)


# Storage model constants (textbook defaults).
PAGE_SIZE = 8192
ROW_OVERHEAD = 12       # header + null bitmap per stored row
INDEX_ENTRY_OVERHEAD = 8  # pointer + entry header per index entry
PAGE_FILL_FACTOR = 0.7  # usable fraction of a page
