"""Fig. 8 — candidate merging strategies.

Quality: run the full Greedy search under the three merging modes on
Movie workloads (whose optional elements the Section 4.7 example uses).

Time: the paper's 2-10x greedy-vs-exhaustive gap comes from the
O(2^|C0|) merged-candidate enumeration; with the Movie schema's two
optional elements that enumeration is trivially small, so the timing
claim is asserted on the merging step directly, over a synthetic schema
with many optional elements.

Paper shapes asserted: greedy merging matches exhaustive merging's
quality; no-merging is never better; the greedy merging *step* is far
faster than the exhaustive one once |C0| grows.
"""

import random
import time

from conftest import QUERIES

from repro.experiments import fig8_tables, run_fig8
from repro.mapping import (UnionDistribution, collect_statistics,
                           hybrid_inlining)
from repro.search import CandidateMerger
from repro.workload import Workload
from repro.xmlkit import Document, Element
from repro.xsd import TreeBuilder


def optional_heavy_workload() -> Workload:
    """Queries over the Movie schema's optional elements (Section 4.7)."""
    return Workload.from_strings("OPT-20", [
        "//movie/year",
        "//movie/avg_rating",
        '//movie[year >= "1990"]/title',
        "//movie[avg_rating]/title",
        "//movie/year",
        "//movie/avg_rating",
    ] + ["//movie/year", "//movie/avg_rating"] * 7)


def test_fig8_merging(benchmark, movie_bundle, emit):
    workloads = [optional_heavy_workload()]
    generator = movie_bundle.workload_generator(seed=44)
    workloads.append(generator.generate(QUERIES * 2))
    rows = benchmark.pedantic(
        lambda: run_fig8(movie_bundle, workloads), rounds=1, iterations=1)
    emit(fig8_tables(rows, movie_bundle.name))
    for row in rows:
        # Greedy merging never loses to no-merging...
        assert row.quality["greedy"] <= row.quality["none"] * 1.05
        # ...and matches exhaustive merging's quality.
        assert row.quality["greedy"] <= row.quality["exhaustive"] * 1.2
    # On the optional-heavy workload, merging must show a real win.
    assert rows[0].quality["greedy"] < rows[0].quality["none"]


def _wide_optional_case(n_optionals: int = 11, n_records: int = 150):
    """A schema with many optional leaves + per-leaf workload queries."""
    builder = TreeBuilder("wide")
    root = builder.tag("records", annotation="records")
    rep = builder.rep(root)
    record = builder.tag("record", rep, annotation="record")
    builder.leaf("key", record)
    names = [f"f{i}" for i in range(n_optionals)]
    for name in names:
        builder.optional_leaf(name, record)
    tree = builder.build(root)

    rng = random.Random(13)
    doc_root = Element("records")
    for i in range(n_records):
        record_el = doc_root.make_child("record")
        record_el.make_child("key", f"k{i}")
        for name in names:
            if rng.random() < 0.4:
                record_el.make_child(name, f"v{rng.randrange(5)}")
    stats = collect_statistics(tree, Document(doc_root))

    workload = Workload("wide")
    for name in names:
        workload.add(f"//record/{name}")
    mapping = hybrid_inlining(tree)
    candidates = []
    for name in names:
        leaf = tree.find_tag_by_path(("records", "record", name))
        option = tree.parent(leaf)
        candidates.append(UnionDistribution(
            optional_ids=frozenset({option.node_id})))
    return CandidateMerger(mapping, stats, workload), candidates


def test_fig8_merging_step_scaling(benchmark, emit):
    """The paper's timing claim: greedy merging is polynomial, the
    exhaustive subset enumeration exponential in |C0|."""
    merger, candidates = _wide_optional_case()

    def run_both():
        start = time.perf_counter()
        greedy = merger.merge_greedy(list(candidates))
        greedy_time = time.perf_counter() - start
        start = time.perf_counter()
        exhaustive = merger.merge_exhaustive(list(candidates))
        exhaustive_time = time.perf_counter() - start
        return greedy, greedy_time, exhaustive, exhaustive_time

    greedy, greedy_time, exhaustive, exhaustive_time = benchmark.pedantic(
        run_both, rounds=1, iterations=1)
    emit(f"merging step over |C0|={len(candidates)} candidates: "
         f"greedy {greedy_time * 1000:.1f} ms, "
         f"exhaustive {exhaustive_time * 1000:.1f} ms "
         f"({exhaustive_time / max(greedy_time, 1e-9):.1f}x)")
    assert exhaustive_time > 2 * greedy_time,         "exhaustive merging must be far slower at this candidate count"
