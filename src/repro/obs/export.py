"""Trace exporters: human-readable tree, JSON, and aggregate summaries.

All output is deterministically ordered — children and events by
sequence number, attributes and metric counters by name — so traces of
two identical runs differ only in wall times (suppress those with
``include_times=False`` to get byte-identical output for tests).
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Iterator

from .trace import Event, NullTracer, Span, Tracer

__all__ = ["render_tree", "to_json", "trace_to_dicts", "summarize",
           "iter_spans", "find_spans", "sum_attribute"]


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return format(value, ".6g")
    return str(value)


def _format_attributes(attributes: dict[str, Any]) -> str:
    return " ".join(f"{key}={_format_value(attributes[key])}"
                    for key in sorted(attributes))


# ----------------------------------------------------------------------
# Traversal helpers
# ----------------------------------------------------------------------


def iter_spans(root: Tracer | NullTracer | Span | Iterable[Span]
               ) -> Iterator[Span]:
    """All spans under ``root``, depth-first in creation order."""
    if isinstance(root, Span):
        spans: Iterable[Span] = [root]
    elif isinstance(root, (Tracer, NullTracer)):
        spans = root.spans
    else:
        spans = root
    for span in spans:
        yield span
        yield from iter_spans(span.children)


def find_spans(root, name: str) -> list[Span]:
    """All spans named ``name``, depth-first in creation order."""
    return [span for span in iter_spans(root) if span.name == name]


def sum_attribute(spans: Iterable[Span], key: str,
                  default: float = 0) -> float:
    """Sum one numeric attribute over spans that carry it."""
    return sum(span.attributes.get(key, default) for span in spans)


# ----------------------------------------------------------------------
# Human-readable tree
# ----------------------------------------------------------------------


def _render_span(span: Span, indent: int, include_times: bool,
                 lines: list[str]) -> None:
    parts = ["  " * indent + "- " + span.name]
    if include_times:
        parts.append(f"[{span.wall_time * 1000:.1f}ms]")
    if span.attributes:
        parts.append(_format_attributes(span.attributes))
    lines.append(" ".join(parts))
    items: list[tuple[int, Span | Event]] = \
        [(child.seq, child) for child in span.children] + \
        [(event.seq, event) for event in span.events]
    for _, item in sorted(items, key=lambda pair: pair[0]):
        if isinstance(item, Span):
            _render_span(item, indent + 1, include_times, lines)
        else:
            line = "  " * (indent + 1) + "* " + item.name
            if item.attributes:
                line += " " + _format_attributes(item.attributes)
            lines.append(line)


def render_tree(tracer: Tracer | NullTracer,
                include_times: bool = True) -> str:
    """The whole trace as an indented tree, one span/event per line."""
    if not getattr(tracer, "spans", None) and \
            not getattr(tracer, "events", None):
        return "(no spans recorded)"
    lines: list[str] = []
    for span in tracer.spans:
        _render_span(span, 0, include_times, lines)
    for event in tracer.events:
        line = "* " + event.name
        if event.attributes:
            line += " " + _format_attributes(event.attributes)
        lines.append(line)
    metrics = tracer.metric_snapshot()
    for component, counters in metrics.items():
        if counters:
            lines.append(f"metrics[{component}]: "
                         + _format_attributes(counters))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------


def _span_to_dict(span: Span, include_times: bool) -> dict:
    out: dict[str, Any] = {"name": span.name, "seq": span.seq}
    if include_times:
        out["wall_time"] = span.wall_time
    out["attributes"] = {key: span.attributes[key]
                         for key in sorted(span.attributes)}
    out["events"] = [{"name": event.name, "seq": event.seq,
                      "attributes": {key: event.attributes[key]
                                     for key in sorted(event.attributes)}}
                     for event in span.events]
    out["children"] = [_span_to_dict(child, include_times)
                       for child in span.children]
    return out


def trace_to_dicts(tracer: Tracer | NullTracer,
                   include_times: bool = True) -> dict:
    """The trace as plain dicts/lists (the JSON document's shape)."""
    return {
        "spans": [_span_to_dict(span, include_times)
                  for span in tracer.spans],
        "events": [{"name": event.name, "seq": event.seq,
                    "attributes": {key: event.attributes[key]
                                   for key in sorted(event.attributes)}}
                   for event in getattr(tracer, "events", ())],
        "metrics": tracer.metric_snapshot(),
    }


def to_json(tracer: Tracer | NullTracer, include_times: bool = True,
            indent: int | None = 2) -> str:
    """The trace as a machine-readable JSON document."""
    def _default(value):
        if isinstance(value, frozenset):
            return sorted(value)
        return str(value)
    return json.dumps(trace_to_dicts(tracer, include_times),
                      indent=indent, default=_default)


# ----------------------------------------------------------------------
# Aggregate summary (the benchmark attachment)
# ----------------------------------------------------------------------


def summarize(tracer: Tracer | NullTracer) -> str:
    """Per-span-name aggregation: count, total time, summed counters.

    This is the "per-phase breakdown" the benchmarks attach to their
    output: it turns one wall-time number into how often each phase ran
    and where the time and optimizer calls went.
    """
    by_name: dict[str, dict[str, Any]] = {}
    order: list[str] = []
    for span in iter_spans(tracer):
        bucket = by_name.get(span.name)
        if bucket is None:
            bucket = by_name[span.name] = {"count": 0, "time": 0.0,
                                           "totals": {}}
            order.append(span.name)
        bucket["count"] += 1
        bucket["time"] += span.wall_time
        for key, value in span.attributes.items():
            if isinstance(value, (int, float)) and \
                    not isinstance(value, bool):
                totals = bucket["totals"]
                totals[key] = totals.get(key, 0) + value
    if not by_name:
        return "(no spans recorded)"
    name_width = max(len(name) for name in order)
    lines = [f"{'span'.ljust(name_width)}  count    time  totals"]
    for name in order:
        bucket = by_name[name]
        totals = " ".join(f"{key}={_format_value(bucket['totals'][key])}"
                          for key in sorted(bucket["totals"]))
        lines.append(f"{name.ljust(name_width)}  {bucket['count']:5d}  "
                     f"{bucket['time']:5.2f}s  {totals}")
    for component, counters in tracer.metric_snapshot().items():
        if counters:
            lines.append(f"metrics[{component}]: "
                         + _format_attributes(counters))
    return "\n".join(lines)
