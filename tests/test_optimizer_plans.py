"""Unit tests pinning the optimizer's plan-selection behaviour."""

import random

import pytest

from repro.engine import Column, Database, Index, SQLType
from repro.engine.optimizer import Optimizer
from repro.engine.plans import (HashJoin, IndexNestedLoopJoin, IndexSeek,
                                SeqScan)
from repro.sqlast import parse_sql


def _top_scan(plan_node):
    """Descend to the access-path node of a single-table plan."""
    node = plan_node
    while node.children():
        node = node.children()[0]
    return node


@pytest.fixture(scope="module")
def db():
    rng = random.Random(11)
    database = Database()
    database.create_table("big", [
        Column("ID", SQLType.INTEGER, False),
        Column("PID", SQLType.INTEGER),
        Column("k", SQLType.VARCHAR),
        Column("v", SQLType.INTEGER),
        Column("wide", SQLType.VARCHAR),
    ])
    database.create_table("small", [
        Column("ID", SQLType.INTEGER, False),
        Column("PID", SQLType.INTEGER),
        Column("tag", SQLType.VARCHAR),
    ])
    database.insert_rows("big", [
        (i, 0, f"key{rng.randrange(1000)}", rng.randrange(100),
         "x" * 50) for i in range(20000)])
    database.insert_rows("small", [
        (100_000 + j, rng.randrange(20000), f"t{j % 20}")
        for j in range(500)])
    database.analyze()
    database.build_primary_key_indexes()
    return database


class TestAccessPaths:
    def test_selective_predicate_uses_index(self, db):
        db.create_index("ix_k", "big", ["k"])
        try:
            plan = db.explain("SELECT b.ID FROM big b WHERE b.k = 'key5'")
            scan = _top_scan(plan.root)
            assert isinstance(scan, IndexSeek)
        finally:
            db.catalog.drop_index("ix_k")

    def test_unselective_predicate_prefers_scan(self, db):
        # b.wide is not covered by the index, so an unselective range
        # would pay a random fetch per row: the scan must win.
        db.create_index("ix_v", "big", ["v"])
        try:
            plan = db.explain("SELECT b.wide FROM big b WHERE b.v >= 1")
            scan = _top_scan(plan.root)
            assert isinstance(scan, SeqScan)
        finally:
            db.catalog.drop_index("ix_v")

    def test_index_only_scan_beats_table_scan_for_narrow_output(self, db):
        # Selecting only the PK rides in the index leaves: index-only
        # access to the narrow index wins even at selectivity ~1.
        db.create_index("ix_v2", "big", ["v"])
        try:
            plan = db.explain("SELECT b.ID FROM big b WHERE b.v >= 1")
            scan = _top_scan(plan.root)
            assert isinstance(scan, IndexSeek)
            assert scan.covering
        finally:
            db.catalog.drop_index("ix_v2")

    def test_covering_index_detected(self, db):
        db.create_index("ix_cov", "big", ["k"], included_columns=["v"])
        try:
            plan = db.explain("SELECT b.v FROM big b WHERE b.k = 'key5'")
            scan = _top_scan(plan.root)
            assert isinstance(scan, IndexSeek)
            assert scan.covering
        finally:
            db.catalog.drop_index("ix_cov")

    def test_non_covering_costlier_than_covering(self, db):
        covering = Index("h1", "big", ("k",), included_columns=("wide",),
                         hypothetical=True)
        plain = Index("h2", "big", ("k",), hypothetical=True)
        sql = "SELECT b.wide FROM big b WHERE b.k = 'key5'"
        with_covering = db.estimate(sql, extra_indexes=[covering]).est_cost
        with_plain = db.estimate(sql, extra_indexes=[plain]).est_cost
        assert with_covering < with_plain

    def test_composite_index_eq_plus_range(self, db):
        db.create_index("ix_kv", "big", ["k", "v"])
        try:
            plan = db.explain(
                "SELECT b.ID FROM big b WHERE b.k = 'key5' AND b.v >= 50")
            scan = _top_scan(plan.root)
            assert isinstance(scan, IndexSeek)
            assert scan.range_bounds is not None
        finally:
            db.catalog.drop_index("ix_kv")


class TestJoinSelection:
    SQL = ("SELECT b.ID, s.tag FROM big b, small s "
           "WHERE b.k = 'key5' AND s.PID = b.ID")

    def test_hash_join_without_indexes(self, db):
        plan = db.explain(self.SQL)
        labels = plan.root.explain()
        assert "HashJoin" in labels

    def test_fk_index_reduces_join_cost(self, db):
        before = db.estimate(self.SQL).est_cost
        db.create_index("ix_spid", "small", ["PID"],
                        included_columns=["tag"])
        db.create_index("ix_bk", "big", ["k"])
        try:
            after = db.estimate(self.SQL).est_cost
            assert after < before
        finally:
            db.catalog.drop_index("ix_spid")
            db.catalog.drop_index("ix_bk")

    def test_inlj_chosen_when_inner_scan_is_expensive(self, db):
        # A large inner table with an FK index and a tiny outer: probing
        # beats scanning+hashing the whole inner side.
        import random as _random
        rng = _random.Random(5)
        db.create_table("many", [
            Column("ID", SQLType.INTEGER, False),
            Column("PID", SQLType.INTEGER),
            Column("payload", SQLType.VARCHAR),
        ])
        db.insert_rows("many", [
            (500_000 + j, rng.randrange(20000), "y" * 40)
            for j in range(30000)])
        db.analyze("many")
        db.create_index("ix_many_pid", "many", ["PID"],
                        included_columns=["payload"])
        db.create_index("ix_bk2", "big", ["k"])
        try:
            sql = ("SELECT b.ID, m.payload FROM big b, many m "
                   "WHERE b.k = 'key5' AND m.PID = b.ID")
            plan = db.explain(sql)
            assert "IndexNestedLoopJoin" in plan.root.explain()
        finally:
            db.catalog.drop_index("ix_many_pid")
            db.catalog.drop_index("ix_bk2")
            db.catalog.drop_table("many")

    def test_join_orders_give_same_rows(self, db):
        no_index = db.execute(self.SQL)
        db.create_index("ix_spid2", "small", ["PID"],
                        included_columns=["tag"])
        with_index = db.execute(self.SQL)
        db.catalog.drop_index("ix_spid2")
        assert sorted(no_index.rows) == sorted(with_index.rows)


class TestEstimateAccuracy:
    """The optimizer's estimates must track measured costs, since the
    whole search quality rests on them."""

    @pytest.mark.parametrize("sql", [
        "SELECT b.ID FROM big b WHERE b.k = 'key1'",
        "SELECT b.ID FROM big b WHERE b.v >= 90",
        "SELECT b.ID, s.tag FROM big b, small s WHERE s.PID = b.ID",
    ])
    def test_within_factor_three(self, db, sql):
        estimated = db.estimate(sql).est_cost
        measured = db.execute(sql).cost
        assert estimated == pytest.approx(measured, rel=2.0), \
            f"estimate {estimated:.1f} vs measured {measured:.1f}"

    def test_row_estimates_reasonable(self, db):
        plan = db.explain("SELECT b.ID FROM big b WHERE b.k = 'key1'")
        # ~20 duplicates of each key out of 20000 rows.
        assert 2 <= plan.root.est_rows <= 200
