"""Checkpoint/resume for long-running design searches.

A greedy search over a large problem runs for hours (the paper's own
pitch for Greedy is that joint search is *long-running*); a crash at
round 19 of 25 must not restart from zero. The searches snapshot their
full loop state through a :class:`CheckpointStore`:

* **atomic writes** — pickle to a temp file, then ``os.replace``; a
  crash mid-write leaves the previous checkpoint intact;
* **self-describing** — each snapshot carries the algorithm name and a
  problem key (problem digest + base-mapping digest + search settings);
  resuming against a different problem raises
  :class:`~repro.errors.CheckpointError` instead of silently producing
  a wrong design;
* **corruption-safe** — a torn or unreadable checkpoint loads as
  "no checkpoint" (counted on the ``checkpoint`` metrics) and the
  search starts fresh rather than crashing or resuming wrong state;
* **complete** — the greedy snapshot includes the evaluator's in-memory
  memo, so every cache-hit/derivation decision after resume matches the
  uninterrupted run and the final :class:`DesignResult` is identical.

Fault site ``checkpoint.write`` lets tests prove that a failed or torn
checkpoint write (disk full, crash) degrades to "skip this checkpoint"
and never corrupts the search itself.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

from ..obs import NullTracer, Tracer, get_tracer
from .faults import active_fault_plan
from .policy import note_suppressed

__all__ = ["CheckpointStore"]

#: Bump when the snapshot layout changes; old checkpoints then fail the
#: format check and are treated as absent instead of mis-unpickled.
CHECKPOINT_VERSION = 1

_FILENAME = "search.ckpt"


class CheckpointStore:
    """Atomic, validated persistence of one search's loop state."""

    def __init__(self, root: str | Path,
                 tracer: Tracer | NullTracer | None = None):
        self.root = Path(root)
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("checkpoint")

    @property
    def path(self) -> Path:
        return self.root / _FILENAME

    # ------------------------------------------------------------------
    def save(self, state: dict) -> bool:
        """Persist a snapshot; ``False`` when the write was skipped.

        A failed write (OS error, injected fault) is a degradation, not
        an error: the search keeps its previous checkpoint and moves
        on. A ``torn`` fault deliberately persists a truncated payload
        to prove half-written checkpoints are survivable.
        """
        fault = active_fault_plan().fire("checkpoint.write")
        if fault is not None and fault.kind != "torn":
            self._metrics.incr("write_faults")
            self.tracer.event("checkpoint_write_fault", kind=fault.kind)
            return False
        payload = pickle.dumps({"version": CHECKPOINT_VERSION, **state})
        if fault is not None:  # torn write
            payload = payload[:max(len(payload) // 2, 1)]
            self._metrics.incr("torn_writes")
        tmp = self.path.with_name(f"{_FILENAME}.{os.getpid()}.tmp")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, self.path)
        except OSError:
            tmp.unlink(missing_ok=True)
            self._metrics.incr("write_failures")
            return False
        self._metrics.incr("writes")
        return True

    def load(self) -> dict | None:
        """The last snapshot, or ``None`` (absent/corrupt/old-format)."""
        try:
            payload = self.path.read_bytes()
        except OSError:
            return None
        try:
            state = pickle.loads(payload)
        except Exception as exc:
            # Torn/corrupt checkpoint: recoverable — start fresh.
            note_suppressed(exc, "checkpoint.load", self.tracer)
            self._metrics.incr("corrupt")
            self.tracer.event("checkpoint_corrupt", path=str(self.path))
            return None
        if not isinstance(state, dict) or \
                state.get("version") != CHECKPOINT_VERSION:
            self._metrics.incr("version_mismatches")
            return None
        return state

    def clear(self) -> bool:
        """Drop the snapshot; ``True`` when one existed."""
        existed = self.path.exists()
        self.path.unlink(missing_ok=True)
        return existed
