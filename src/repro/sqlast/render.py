"""Pretty-printing of SQL ASTs.

``str(query)`` already yields valid single-line SQL; :func:`render`
produces a multi-line layout like the listings in the paper, which the
examples print for the user.

Both functions take an optional ``dialect`` — any object with the
structural shape of :class:`repro.backends.dialect.Dialect` (the
protocol is duck-typed here so ``sqlast`` stays below ``backends`` in
the layering). With a dialect, identifiers are quoted and constants
spelled the way that engine expects; without one, the plain ``str()``
forms are used, exactly as before.
"""

from __future__ import annotations

from typing import Protocol

from .ast import BoolExpr, Query, Select, SelectItem, TableRef


class SQLDialect(Protocol):
    """The slice of ``repro.backends.dialect.Dialect`` render() needs."""

    def render_item(self, item: SelectItem) -> str: ...

    def render_table_ref(self, ref: TableRef) -> str: ...

    def render_condition(self, expr: BoolExpr) -> str: ...


def render_select(select: Select, indent: str = "",
                  dialect: SQLDialect | None = None) -> str:
    if dialect is None:
        items = ", ".join(str(i) for i in select.items)
        tables = ", ".join(str(t) for t in select.from_tables)
        where = str(select.where) if select.where is not None else None
    else:
        items = ", ".join(dialect.render_item(i) for i in select.items)
        tables = ", ".join(dialect.render_table_ref(t)
                           for t in select.from_tables)
        where = (dialect.render_condition(select.where)
                 if select.where is not None else None)
    lines = [indent + "SELECT " + items, indent + "FROM " + tables]
    if where is not None:
        lines.append(indent + "WHERE " + where)
    return "\n".join(lines)


def render(query: Query, indent: str = "",
           dialect: SQLDialect | None = None) -> str:
    """Multi-line SQL text for a query."""
    blocks = [render_select(s, indent, dialect) for s in query.selects]
    body = ("\n" + indent + "UNION ALL\n").join(blocks)
    if query.order_by:
        body += "\n" + indent + "ORDER BY " + ", ".join(
            str(i) for i in query.order_by)
    return body
