"""The streaming data plane: lazy datasets, streaming shred, bulk load.

Pins the scaling contracts of docs/scaling.md:

* lazy (``stream=True``) documents contain exactly the eager content;
* ``Shredder.shred_iter`` / ``shred_typed_batches`` produce rows
  byte-identical to the eager path, in bounded batches, and genuinely
  stream (rows are emitted before the document is fully generated);
* shredder error paths behave identically mid-stream;
* ``SQLiteBackend.load`` chunked/append semantics, per-table row
  counters, and WAL journaling on file-backed databases.
"""

import pytest

from repro.backends import SQLiteBackend
from repro.backends.sqlite import BackendError
from repro.datasets import (dblp_schema, generate_dblp, generate_movies,
                            iter_dblp_publications, movie_schema)
from repro.engine import Database
from repro.errors import ShreddingError
from repro.mapping import (Shredder, UnionDistribution, derive_schema,
                           hybrid_inlining, load_documents,
                           shred_typed_batches, shred_typed_rows)
from repro.xmlkit import Document, LazyElement
from repro.xsd import NodeKind

SCALE = 250


@pytest.fixture(scope="module")
def dblp_mapped():
    return derive_schema(hybrid_inlining(dblp_schema()))


@pytest.fixture(scope="module")
def movie_mapped():
    """A movie mapping exercising splits and union partitions."""
    tree = movie_schema()
    choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
    aka = tree.find_tag_by_path(("movies", "movie", "aka_title"))
    mapping = (hybrid_inlining(tree)
               .with_split(tree.parent(aka).node_id, 2)
               .with_distribution(UnionDistribution(choice_id=choice.node_id)))
    return derive_schema(mapping)


def drain(batches):
    out: dict[str, list] = {}
    for name, batch in batches:
        out.setdefault(name, []).extend(batch)
    return out


class TestLazyDatasets:
    def test_lazy_dblp_matches_eager(self, dblp_mapped):
        eager = generate_dblp(SCALE, seed=3)
        lazy = generate_dblp(SCALE, seed=3, stream=True)
        assert Shredder(dblp_mapped).shred(eager) == \
            Shredder(dblp_mapped).shred(lazy)

    def test_lazy_movie_matches_eager(self, movie_mapped):
        eager = generate_movies(SCALE, seed=5)
        lazy = generate_movies(SCALE, seed=5, stream=True)
        assert Shredder(movie_mapped).shred(eager) == \
            Shredder(movie_mapped).shred(lazy)

    def test_lazy_root_is_reiterable(self):
        doc = generate_dblp(40, seed=3, stream=True)
        first = [el.tag for el in doc.root]
        second = [el.tag for el in doc.root]
        assert first == second and len(first) == 40

    def test_lazy_root_rejects_mutation(self):
        doc = generate_dblp(5, seed=3, stream=True)
        with pytest.raises(TypeError):
            doc.root.make_child("inproceedings")

    def test_lazy_iter_streams_whole_tree(self):
        eager = generate_dblp(30, seed=3)
        lazy = generate_dblp(30, seed=3, stream=True)
        assert [el.tag for el in lazy.iter()] == \
            [el.tag for el in eager.iter()]


class TestStreamingShred:
    def test_batches_match_eager_dblp(self, dblp_mapped):
        doc = generate_dblp(SCALE, seed=3)
        eager = Shredder(dblp_mapped).shred(doc)
        batched = drain(Shredder(dblp_mapped).shred_iter(doc, batch_size=37))
        assert batched == {k: v for k, v in eager.items() if v}

    def test_batches_match_eager_movie(self, movie_mapped):
        # Split overflow rows and partition routing through the
        # streaming path, on the lazy document form.
        eager_doc = generate_movies(SCALE, seed=5)
        lazy_doc = generate_movies(SCALE, seed=5, stream=True)
        eager = Shredder(movie_mapped).shred(eager_doc)
        batched = drain(
            Shredder(movie_mapped).shred_iter(lazy_doc, batch_size=41))
        assert batched == {k: v for k, v in eager.items() if v}

    def test_batch_size_is_respected(self, dblp_mapped):
        doc = generate_dblp(SCALE, seed=3)
        for name, batch in Shredder(dblp_mapped).shred_iter(doc,
                                                            batch_size=50):
            assert 1 <= len(batch) <= 50, name

    def test_invalid_batch_size(self, dblp_mapped):
        with pytest.raises(ValueError):
            list(Shredder(dblp_mapped).shred_iter(
                generate_dblp(5, seed=3), batch_size=0))

    def test_rows_emitted_before_generation_finishes(self, dblp_mapped):
        """The streaming proof: the first batch arrives while most of
        the document has not been generated yet."""
        generated = 0

        def counting_factory():
            nonlocal generated
            for pub in iter_dblp_publications(2000, seed=3):
                generated += 1
                yield pub

        doc = Document(LazyElement("dblp", counting_factory))
        batches = Shredder(dblp_mapped).shred_iter(doc, batch_size=100)
        next(batches)
        assert 0 < generated < 500
        batches.close()

    def test_typed_batches_match_typed_rows(self, dblp_mapped):
        doc = generate_dblp(SCALE, seed=3)
        eager = shred_typed_rows(dblp_mapped, doc)
        streamed = drain(shred_typed_batches(dblp_mapped, doc, 61))
        assert streamed == {k: v for k, v in eager.items() if v}

    def test_unexpected_element_raises_mid_stream(self, dblp_mapped):
        from repro.xmlkit import parse
        doc = parse("<dblp><bogus/></dblp>")
        with pytest.raises(ShreddingError, match="unexpected element"):
            list(Shredder(dblp_mapped).shred_iter(doc))

    def test_partition_routing_failure_mid_stream(self, movie_mapped):
        # A movie with neither choice branch matches no partition.
        from repro.xmlkit import parse
        doc = parse("<movies><movie><title>T</title></movie></movies>")
        with pytest.raises(ShreddingError, match="no partition"):
            list(Shredder(movie_mapped).shred_iter(doc))

    def test_split_leaf_overflow_rows_stream(self, movie_mapped):
        from repro.xmlkit import parse
        doc = parse(
            "<movies><movie><title>T</title>"
            "<aka_title>a</aka_title><aka_title>b</aka_title>"
            "<aka_title>c</aka_title><aka_title>d</aka_title>"
            "<box_office>5</box_office></movie></movies>")
        rows = drain(Shredder(movie_mapped).shred_iter(doc, batch_size=1))
        assert [r[-1] for r in rows["aka_title"]] == ["c", "d"]

    def test_load_documents_streams_and_materializes_empty_tables(
            self, dblp_mapped):
        db = Database()
        doc = generate_dblp(60, seed=3)
        load_documents(db, dblp_mapped, doc, batch_size=16)
        reference = Database()
        load_documents(reference, dblp_mapped, doc)
        for name in dblp_mapped.table_names:
            assert db.catalog.table(name).rows == \
                reference.catalog.table(name).rows
            # Even zero-row tables must be executable, not stats-only.
            assert db.catalog.table(name).rows is not None


class TestChunkedBackendLoad:
    def test_chunked_load_matches_eager_rows(self, dblp_mapped):
        doc = generate_dblp(SCALE, seed=3)
        typed = shred_typed_rows(dblp_mapped, doc)
        with SQLiteBackend() as backend:
            backend.load(dblp_mapped, generate_dblp(SCALE, seed=3,
                                                    stream=True),
                         batch_size=64, txn_rows=128)
            for name, rows in typed.items():
                stored = backend.execute_sql(
                    f'SELECT * FROM "{name}" ORDER BY "ID"')
                assert stored == sorted(rows, key=lambda r: r[0]), name

    def test_row_counts_track_every_table(self, dblp_mapped):
        doc = generate_dblp(SCALE, seed=3)
        typed = shred_typed_rows(dblp_mapped, doc)
        with SQLiteBackend() as backend:
            backend.load(dblp_mapped, doc, batch_size=32)
            assert backend.row_counts == {name: len(rows)
                                          for name, rows in typed.items()}

    def test_second_load_raises_backend_error(self, dblp_mapped):
        # Regression: used to die with sqlite's raw "table already
        # exists" after corrupting the bookkeeping.
        doc = generate_dblp(30, seed=3)
        with SQLiteBackend() as backend:
            backend.load(dblp_mapped, doc)
            with pytest.raises(BackendError, match="already exists"):
                backend.load(dblp_mapped, doc)

    def test_append_load_keeps_ids_globally_unique(self, dblp_mapped):
        with SQLiteBackend() as backend:
            backend.load(dblp_mapped, generate_dblp(50, seed=3))
            backend.load(dblp_mapped, generate_dblp(20, seed=9),
                         append=True)
            ids = [row[0]
                   for name in dblp_mapped.table_names
                   for row in backend.execute_sql(
                       f'SELECT "ID" FROM "{name}"')]
            assert len(ids) == len(set(ids))

    def test_append_load_across_backend_instances(self, tmp_path,
                                                  dblp_mapped):
        path = str(tmp_path / "scale.db")
        first = SQLiteBackend(path)
        first.load(dblp_mapped, generate_dblp(50, seed=3))
        first.close()
        second = SQLiteBackend(path)
        # Without append: a clear error, not a raw sqlite one.
        with pytest.raises(BackendError, match="already exists"):
            second.load(dblp_mapped, generate_dblp(20, seed=9))
        second.load(dblp_mapped, generate_dblp(20, seed=9), append=True)
        ids = [row[0]
               for name in dblp_mapped.table_names
               for row in second.execute_sql(f'SELECT "ID" FROM "{name}"')]
        assert len(ids) == len(set(ids))
        second.close()

    def test_file_backed_load_uses_wal(self, tmp_path, dblp_mapped):
        backend = SQLiteBackend(str(tmp_path / "wal.db"))
        mode = backend.connection.execute(
            "PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"
        backend.close()

    def test_in_memory_load_keeps_memory_journal(self, dblp_mapped):
        with SQLiteBackend() as backend:
            mode = backend.connection.execute(
                "PRAGMA journal_mode").fetchone()[0]
            assert mode == "memory"


class TestServeOverStreamedLoad:
    def test_file_backed_service_over_lazy_load(self, tmp_path):
        from repro.serve import QueryService
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        lazy = generate_dblp(200, seed=7, stream=True)
        eager = generate_dblp(200, seed=7)
        with QueryService(schema, lazy, workers=2,
                          db_path=str(tmp_path / "serve.db"),
                          load_batch_size=64) as service:
            streamed = service.serve("//inproceedings/title")
        with QueryService(schema, eager, workers=2) as reference:
            expected = reference.serve("//inproceedings/title")
        assert sorted(streamed.rows) == sorted(expected.rows)


class TestScaleCLI:
    def test_shred_dataset_streaming_counts(self, capsys):
        from repro.cli import main
        assert main(["shred", "--dataset", "dblp", "--scale", "80",
                     "--stream", "--batch-size", "16"]) == 0
        output = capsys.readouterr().out
        schema = derive_schema(hybrid_inlining(dblp_schema()))
        rows = Shredder(schema).shred(generate_dblp(80, seed=7))
        for name, table_rows in rows.items():
            assert f"{name}: {len(table_rows)} rows" in output

    def test_shred_dataset_csv_dump(self, tmp_path, capsys):
        from repro.cli import main
        out_dir = tmp_path / "csv"
        assert main(["shred", "--dataset", "movie", "--scale", "40",
                     "--out", str(out_dir)]) == 0
        capsys.readouterr()
        schema = derive_schema(hybrid_inlining(movie_schema()))
        for name in schema.table_names:
            assert (out_dir / f"{name}.csv").exists()

    def test_shred_requires_source(self, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["shred"])
