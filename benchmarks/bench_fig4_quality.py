"""Fig. 4 — workload execution cost of the designs returned by Greedy,
Naive-Greedy, and Two-Step, normalized to tuned hybrid inlining.

Paper shapes asserted: Greedy and Naive-Greedy have comparable quality;
Two-Step is clearly worse than Greedy on average (paper: +77% DBLP,
+47% Movie); Greedy (almost always) beats the hybrid baseline.
"""

import statistics

from conftest import build_comparison


def _check_shapes(comparison):
    greedy = comparison.by_algorithm("greedy")
    naive = comparison.by_algorithm("naive-greedy")
    twostep = comparison.by_algorithm("two-step")
    # Greedy improves on (or at worst matches) hybrid inlining on the
    # large majority of workloads.
    improved = sum(1 for run in greedy.values()
                   if run.normalized_cost <= 1.02)
    assert improved >= 0.75 * len(greedy)
    # Two-Step is worse than Greedy on average.
    paired = [(twostep[name].normalized_cost, run.normalized_cost)
              for name, run in greedy.items() if name in twostep]
    mean_twostep = statistics.mean(p[0] for p in paired)
    mean_greedy = statistics.mean(p[1] for p in paired)
    assert mean_twostep > mean_greedy * 1.1, \
        f"Two-Step ({mean_twostep:.2f}) should trail Greedy ({mean_greedy:.2f})"
    # Naive-Greedy quality is comparable to Greedy (within ~1.5x either way).
    for name, run in naive.items():
        assert run.normalized_cost <= greedy[name].normalized_cost * 1.6 + 0.1


def test_fig4_dblp(benchmark, dblp_bundle, comparison_cache, emit):
    comparison = benchmark.pedantic(
        lambda: build_comparison(dblp_bundle, comparison_cache),
        rounds=1, iterations=1)
    emit(comparison.fig4())
    _check_shapes(comparison)


def test_fig4_movie(benchmark, movie_bundle, comparison_cache, emit):
    comparison = benchmark.pedantic(
        lambda: build_comparison(movie_bundle, comparison_cache),
        rounds=1, iterations=1)
    emit(comparison.fig4())
    _check_shapes(comparison)
