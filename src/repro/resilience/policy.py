"""Retry, deadline, and degradation policy for evaluations.

One :class:`RetryPolicy` governs every evaluation a search performs:

* **retry** — an evaluation that dies with a retryable fault (an
  injected transient, a broken worker, an OS hiccup) is re-attempted up
  to ``max_attempts`` times with exponential backoff; a retry that
  succeeds is *counter-invisible* (the evaluation is counted once, the
  retry separately), so a chaos run with recoverable faults produces
  the same counters and the same :class:`DesignResult` as a fault-free
  run.
* **deadline** — with ``timeout`` set, a pooled evaluation that does
  not finish in time is abandoned: the worker pool degrades (the hung
  worker is left behind) and the candidate is classified
  *infeasible-by-fault*; the search continues without it.
* **degradation** — after retries are exhausted the candidate likewise
  becomes infeasible-by-fault instead of aborting the search; the
  drop is recorded on the search counters and ``repro.obs`` metrics,
  never silently.

Fault-caused ``None`` results are **never cached** (memory or
persistent): a candidate dropped by a fault in one run must stay
evaluable in the next.

Environment knobs: ``REPRO_RETRY_ATTEMPTS``, ``REPRO_RETRY_BACKOFF``
(seconds, exponential base), ``REPRO_EVAL_TIMEOUT`` (seconds, pooled
evaluations only).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..obs import NullTracer, Tracer
from .faults import classify

__all__ = ["RetryPolicy", "note_suppressed"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and an optional deadline."""

    max_attempts: int = 3
    backoff: float = 0.01        # seconds; attempt n sleeps backoff * 2^(n-1)
    timeout: float | None = None  # per-evaluation deadline (pool only)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff_for(self, attempt: int) -> float:
        """Sleep before re-attempt number ``attempt`` (1-based)."""
        return self.backoff * (2 ** max(attempt - 1, 0))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        def _float(name: str) -> float | None:
            raw = os.environ.get(name, "").strip()
            if not raw:
                return None
            try:
                return float(raw)
            except ValueError:
                return None

        attempts = _float("REPRO_RETRY_ATTEMPTS")
        backoff = _float("REPRO_RETRY_BACKOFF")
        timeout = _float("REPRO_EVAL_TIMEOUT")
        return cls(
            max_attempts=int(attempts) if attempts and attempts >= 1 else 3,
            backoff=backoff if backoff is not None else 0.01,
            timeout=timeout,
        )


def note_suppressed(exc: BaseException, site: str,
                    tracer: Tracer | NullTracer) -> str:
    """Record a deliberately swallowed failure; returns its category.

    Every ``except`` block in the search path that skips a candidate
    instead of propagating routes through here, so no failure is ever
    silently invisible: the fault classifier buckets it, a
    ``resilience`` metric counts it, and (when tracing) an event marks
    where it happened.
    """
    category = classify(exc)
    tracer.metrics("resilience").incr(f"suppressed.{category}.{site}")
    if tracer.enabled:
        tracer.event("suppressed_failure", site=site, category=category,
                     error=type(exc).__name__)
    return category
