"""Section 5.1.4's baseline-choice claim.

"[Hybrid inlining] is not only one of the mappings with the best
performance in [20], we also find in our experiments that it performs
better than the fully split mapping when combined with physical design"
— because (1) it avoids joins and (2) the physical design tool can
recommend covering indexes on its wide tables anyway.

Asserted: tuned hybrid inlining beats tuned fully-split on every
standard workload band.
"""

from repro.experiments import format_table, measure_workload, realize
from repro.mapping import fully_split, hybrid_inlining
from repro.search import MappingEvaluator


def test_hybrid_beats_fully_split_when_tuned(benchmark, dblp_bundle, emit):
    workloads = dblp_bundle.workload_generator(seed=49).standard_suite(8)

    def run():
        rows = []
        for workload in workloads:
            costs = {}
            for name, mapping in (("hybrid", hybrid_inlining(dblp_bundle.tree)),
                                  ("fully-split", fully_split(dblp_bundle.tree))):
                evaluator = MappingEvaluator(workload, dblp_bundle.stats,
                                             dblp_bundle.storage_bound)
                evaluated = evaluator.evaluate(mapping)
                db = realize(evaluated.schema,
                             evaluated.tuning.configuration,
                             dblp_bundle.docs)
                costs[name] = measure_workload(db, evaluated.sql_queries)
            rows.append([workload.name, costs["hybrid"],
                         costs["fully-split"],
                         costs["fully-split"] / costs["hybrid"]])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(format_table(
        "Section 5.1.4 — tuned hybrid vs. tuned fully-split (DBLP)",
        ["workload", "hybrid cost", "fully-split cost", "ratio"], rows,
        note="the paper's reason for normalizing to hybrid inlining"))
    for _, hybrid_cost, split_cost, _ in rows:
        assert hybrid_cost <= split_cost * 1.02, \
            "tuned hybrid must not lose to tuned fully-split"
    # And it should clearly win somewhere (joins are expensive).
    assert any(split / hybrid > 1.3 for _, hybrid, split, _ in rows)
