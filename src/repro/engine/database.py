"""The public database facade.

Ties together catalog, statistics, optimizer, and executor:

* DDL: :meth:`Database.create_table`, :meth:`create_index`,
  :meth:`create_materialized_view`
* DML: :meth:`insert_rows`
* Query: :meth:`execute` (runs and *measures* cost),
  :meth:`estimate` (optimizer cost only — works on stats-only tables),
  :meth:`explain`
* What-if: pass ``extra_indexes`` / ``extra_tables`` to :meth:`estimate`
  to cost hypothetical physical designs, as the tuning advisor does.

"Execution time" everywhere in this library means the deterministic cost
accumulated by the executor's :class:`~repro.engine.cost.CostCounter` —
see DESIGN.md for why this substitution preserves the paper's results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError, ExecutionError
from ..obs import NullTracer, Tracer, get_tracer
from ..sqlast import Query, parse_sql
from .cost import CostCounter
from .index import Index, primary_key_index
from .matview import derive_view_stats, make_view_table, populate_view
from .optimizer import Optimizer, PlannedQuery
from .plans import Runtime
from .schema import Catalog, Column, ForeignKey, JoinViewDefinition, Table
from .statistics import StatisticsCatalog, TableStats


@dataclass
class ExecutionResult:
    """Rows plus the measured cost of producing them."""

    rows: list[tuple]
    cost: float
    counter: CostCounter
    plan: PlannedQuery

    def __iter__(self):
        return iter(self.rows)

    def __len__(self):
        return len(self.rows)


class Database:
    """An in-memory relational database with a cost-based optimizer."""

    def __init__(self, name: str = "db",
                 tracer: "Tracer | NullTracer | None" = None):
        self.name = name
        self.catalog = Catalog()
        self.stats = StatisticsCatalog()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics("database")
        # id(query) -> (query, findings); the strong query ref keeps the
        # id stable for the lifetime of the cache entry.
        self._analysis_cache: dict[int, tuple[Query, object]] = {}

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: list[Column],
                     primary_key: str | None = "ID",
                     foreign_keys: list[ForeignKey] | None = None) -> Table:
        table = Table(name, columns, primary_key, foreign_keys)
        return self.catalog.add_table(table)

    def register_table(self, table: Table) -> Table:
        """Add a pre-built (possibly stats-only) table."""
        return self.catalog.add_table(table)

    def create_index(self, name: str, table_name: str,
                     key_columns: list[str],
                     included_columns: list[str] | None = None,
                     build: bool = True) -> Index:
        index = Index(name=name, table_name=table_name,
                      key_columns=tuple(key_columns),
                      included_columns=tuple(included_columns or ()))
        self.catalog.add_index(index)
        table = self.catalog.table(table_name)
        if build and table.is_materialized:
            index.build(table)
        return index

    def create_materialized_view(self, name: str,
                                 definition: JoinViewDefinition,
                                 populate: bool = True) -> Table:
        parent = self.catalog.table(definition.parent_table)
        child = self.catalog.table(definition.child_table)
        view = make_view_table(name, definition, parent, child)
        self.catalog.add_table(view)
        if populate and parent.is_materialized and child.is_materialized:
            populate_view(view, parent, child)
            self.stats.analyze_table(view)
        else:
            self.stats.set_table(name, derive_view_stats(view, definition,
                                                         self.stats))
        return view

    # ------------------------------------------------------------------
    # Data
    # ------------------------------------------------------------------
    def insert_rows(self, table_name: str, rows: list[tuple]) -> None:
        table = self.catalog.table(table_name)
        if table.rows is None:
            table.rows = []
        for row in rows:
            table.insert(row)

    def analyze(self, table_name: str | None = None) -> None:
        """(Re)collect statistics and refresh VARCHAR width estimates."""
        tables = ([self.catalog.table(table_name)] if table_name
                  else list(self.catalog.tables.values()))
        for table in tables:
            if not table.is_materialized:
                continue
            stats = self.stats.analyze_table(table)
            for column in table.columns:
                column_stats = stats.column(column.name)
                if column_stats is not None and column_stats.avg_width:
                    column.avg_width = column_stats.avg_width

    def set_table_stats(self, table_name: str, stats: TableStats) -> None:
        """Install externally derived statistics (stats-only tables)."""
        table = self.catalog.table(table_name)
        table.row_count_estimate = stats.row_count
        for column in table.columns:
            column_stats = stats.column(column.name)
            if column_stats is not None and column_stats.avg_width:
                column.avg_width = column_stats.avg_width
        self.stats.set_table(table_name, stats)

    def build_primary_key_indexes(self) -> None:
        """Create (and build) the implicit clustered PK index per table."""
        for table in self.catalog.base_tables():
            if table.primary_key is None:
                continue
            name = f"pk_{table.name}"
            if name in self.catalog.indexes:
                continue
            index = primary_key_index(table)
            self.catalog.add_index(index)
            if table.is_materialized:
                index.build(table)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _as_query(self, query: Query | str) -> Query:
        if isinstance(query, str):
            return parse_sql(query)
        return query

    def _run_checks(self, query: Query, planned: PlannedQuery,
                    extra_indexes: list[Index] | None,
                    extra_tables: list[Table] | None,
                    what_if: bool) -> None:
        """Debug-mode assertions: SQL analysis + plan sanitation.

        SQL analysis is memoized per query object — the tuning advisor
        re-estimates the same ``Query`` values thousands of times per
        search, and their semantics never change; the plan sanitizer
        always runs because each call plans afresh.
        """
        from ..check import analyze_query, check_plan, enforce

        extra = {t.name: t for t in extra_tables or ()}
        cached = self._analysis_cache.get(id(query))
        if cached is None or cached[0] is not query:
            findings = analyze_query(query, self.catalog, extra)
            self._analysis_cache[id(query)] = (query, findings)
        else:
            findings = cached[1]
        findings = findings + check_plan(
            query, planned, self.catalog,
            extra_indexes=extra_indexes or (),
            extra_tables=extra_tables or (), what_if=what_if)
        enforce(findings, self.tracer, context=f"db:{self.name}")

    def explain(self, query: Query | str) -> PlannedQuery:
        from ..check.runtime import checks_enabled

        query = self._as_query(query)
        planned = Optimizer(self.catalog, self.stats,
                            what_if=False).plan(query)
        if checks_enabled():
            self._run_checks(query, planned, None, None, what_if=False)
        return planned

    def estimate(self, query: Query | str,
                 extra_indexes: list[Index] | None = None,
                 extra_tables: list[Table] | None = None) -> PlannedQuery:
        """Optimizer-estimated cost; supports hypothetical objects."""
        from ..check.runtime import checks_enabled
        from ..resilience import active_fault_plan

        active_fault_plan().maybe_raise("whatif")
        self._metrics.incr("estimate_calls")
        query = self._as_query(query)
        optimizer = Optimizer(self.catalog, self.stats, what_if=True,
                              extra_indexes=extra_indexes,
                              extra_tables=extra_tables)
        planned = optimizer.plan(query)
        if checks_enabled():
            self._run_checks(query, planned, extra_indexes, extra_tables,
                             what_if=True)
        return planned

    def execute(self, query: Query | str) -> ExecutionResult:
        """Plan with built objects only, run, and measure cost."""
        planned = self.explain(query)
        counter = CostCounter()
        runtime = Runtime(self.catalog, counter)
        planned.prepare(runtime)
        rows = list(planned.root.execute_tuples(runtime))
        return ExecutionResult(rows=rows, cost=counter.total,
                               counter=counter, plan=planned)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_size_bytes(self, include_design: bool = True) -> int:
        """Bytes of data (+ indexes and views when ``include_design``)."""
        total = self.catalog.total_data_bytes()
        if include_design:
            for view in self.catalog.views():
                total += view.size_bytes
            for index in self.catalog.indexes.values():
                table = self.catalog.table(index.table_name)
                total += index.size_bytes(table)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Database {self.name!r} tables={len(self.catalog.tables)} "
                f"indexes={len(self.catalog.indexes)}>")
