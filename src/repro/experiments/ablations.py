"""Figs. 7, 8, 9 — breakdown of the Greedy optimizations.

* Fig. 7: speed-up from (a) not searching subsumed transformations and
  (b) all candidate-selection rules together.
* Fig. 8: candidate merging strategies — greedy vs. none vs. exhaustive
  — on both quality (measured execution cost, normalized to hybrid
  inlining) and search time (normalized to no merging).
* Fig. 9: cost derivation on vs. off — quality and search time
  (normalized to derivation on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..search import GreedySearch, NaiveGreedySearch
from ..workload import Workload
from .harness import DatasetBundle, measure_design, tuned_hybrid_baseline
from .reporting import format_series


def _run_variant(bundle: DatasetBundle, workload: Workload,
                 **kwargs) -> tuple[float, float, int]:
    """(wall time, measured cost, transformations searched)."""
    search = GreedySearch(bundle.tree, workload, bundle.stats,
                          bundle.storage_bound, **kwargs)
    result = search.run()
    measured = measure_design(result, bundle)
    return (result.counters.wall_time, measured,
            result.counters.transformations_searched)


# ----------------------------------------------------------------------
# Fig. 7 — candidate selection speed-up
# ----------------------------------------------------------------------


@dataclass
class Fig7Row:
    workload_name: str
    subsumed_speedup: float   # t(all incl. subsumed) / t(all non-subsumed)
    overall_speedup: float    # t(all incl. subsumed) / t(full Greedy)
    quality_full: float       # normalized cost of full Greedy
    quality_unpruned: float   # normalized cost with nothing pruned


def _run_naive_variant(bundle: DatasetBundle, workload: Workload,
                       include_subsumed: bool) -> tuple[float, float]:
    """(wall time, measured cost) of the per-round-enumeration search.

    The Fig. 7 baseline is the search *without* candidate selection:
    every applicable transformation is enumerated and costed each round,
    exactly the straightforward extension of [5], [18]. The
    ``include_subsumed=False`` variant applies only the
    subsumed-transformation pruning (the first Section 4.5 rule).
    """
    search = NaiveGreedySearch(bundle.tree, workload, bundle.stats,
                               bundle.storage_bound,
                               include_subsumed=include_subsumed,
                               max_rounds=6)
    result = search.run()
    return result.counters.wall_time, measure_design(result, bundle)


def run_fig7(bundle: DatasetBundle,
             workloads: list[Workload]) -> list[Fig7Row]:
    rows: list[Fig7Row] = []
    for workload in workloads:
        baseline = tuned_hybrid_baseline(bundle, workload)
        t_all, cost_all = _run_naive_variant(bundle, workload,
                                             include_subsumed=True)
        t_nonsub, _ = _run_naive_variant(bundle, workload,
                                         include_subsumed=False)
        t_full, cost_full, _ = _run_variant(bundle, workload)
        rows.append(Fig7Row(
            workload_name=workload.name,
            subsumed_speedup=t_all / max(t_nonsub, 1e-9),
            overall_speedup=t_all / max(t_full, 1e-9),
            quality_full=cost_full / max(baseline.measured_cost, 1e-9),
            quality_unpruned=cost_all / max(baseline.measured_cost, 1e-9),
        ))
    return rows


def fig7_table(rows: list[Fig7Row], bundle_name: str) -> str:
    series = {
        "skip-subsumed speed-up": {
            r.workload_name: r.subsumed_speedup for r in rows},
        "all-rules speed-up": {
            r.workload_name: r.overall_speedup for r in rows},
    }
    return format_series(
        f"Fig. 7 ({bundle_name}) — candidate-selection speed-up",
        "workload", series)


# ----------------------------------------------------------------------
# Fig. 8 — merging strategies
# ----------------------------------------------------------------------


@dataclass
class Fig8Row:
    workload_name: str
    quality: dict[str, float] = field(default_factory=dict)  # normalized cost
    time: dict[str, float] = field(default_factory=dict)     # vs. no merging


MERGING_MODES = ("greedy", "none", "exhaustive")


def run_fig8(bundle: DatasetBundle,
             workloads: list[Workload]) -> list[Fig8Row]:
    rows: list[Fig8Row] = []
    for workload in workloads:
        baseline = tuned_hybrid_baseline(bundle, workload)
        row = Fig8Row(workload_name=workload.name)
        times: dict[str, float] = {}
        for mode in MERGING_MODES:
            wall, measured, _ = _run_variant(bundle, workload, merging=mode)
            row.quality[mode] = measured / max(baseline.measured_cost, 1e-9)
            times[mode] = wall
        reference = max(times["none"], 1e-9)
        row.time = {mode: times[mode] / reference for mode in MERGING_MODES}
        rows.append(row)
    return rows


def fig8_tables(rows: list[Fig8Row], bundle_name: str) -> str:
    quality = {mode: {r.workload_name: r.quality[mode] for r in rows}
               for mode in MERGING_MODES}
    time = {mode: {r.workload_name: r.time[mode] for r in rows}
            for mode in MERGING_MODES}
    return (format_series(
        f"Fig. 8a ({bundle_name}) — quality by merging strategy "
        f"(normalized to hybrid)", "workload", quality)
        + "\n" + format_series(
            f"Fig. 8b ({bundle_name}) — search time by merging strategy "
            f"(normalized to no merging)", "workload", time))


# ----------------------------------------------------------------------
# Fig. 9 — cost derivation
# ----------------------------------------------------------------------


@dataclass
class Fig9Row:
    workload_name: str
    quality_with: float
    quality_without: float
    speedup: float  # t(without) / t(with)


def run_fig9(bundle: DatasetBundle,
             workloads: list[Workload]) -> list[Fig9Row]:
    rows: list[Fig9Row] = []
    for workload in workloads:
        baseline = tuned_hybrid_baseline(bundle, workload)
        t_with, cost_with, _ = _run_variant(
            bundle, workload, use_cost_derivation=True)
        t_without, cost_without, _ = _run_variant(
            bundle, workload, use_cost_derivation=False)
        rows.append(Fig9Row(
            workload_name=workload.name,
            quality_with=cost_with / max(baseline.measured_cost, 1e-9),
            quality_without=cost_without / max(baseline.measured_cost, 1e-9),
            speedup=t_without / max(t_with, 1e-9),
        ))
    return rows


def fig9_tables(rows: list[Fig9Row], bundle_name: str) -> str:
    quality = {
        "with derivation": {r.workload_name: r.quality_with for r in rows},
        "without derivation": {
            r.workload_name: r.quality_without for r in rows},
    }
    speed = {"speed-up of derivation": {
        r.workload_name: r.speedup for r in rows}}
    return (format_series(
        f"Fig. 9a ({bundle_name}) — quality with/without cost derivation "
        f"(normalized to hybrid)", "workload", quality)
        + "\n" + format_series(
            f"Fig. 9b ({bundle_name}) — cost-derivation speed-up",
            "workload", speed))
