"""Cost-model calibration — estimates vs measured SQLite wall-clock.

The figures elsewhere in this suite compare designs by the engine's
deterministic cost units. This benchmark closes the loop against a real
DBMS: every design (greedy, two-step, and the logical-only baseline) is
realized in SQLite — bulk-load, real ``CREATE INDEX``, populated view
tables — and its workload is timed with warmup and repetition. The
paper's ranking claims only transfer if estimated cost and measured
time *rank designs the same way*, so the assertion is a positive
Spearman rank correlation on DBLP.

Run standalone with ``--smoke`` for the quick CI variant::

    PYTHONPATH=src python benchmarks/bench_calibration.py --smoke
"""

import sys

from repro.backends import run_calibration
from repro.experiments import DatasetBundle


def _calibrate(scale: int, queries: int, repeat: int, seed: int = 7):
    bundle = DatasetBundle.dblp(scale=scale, seed=seed)
    workload = bundle.workload_generator(seed=seed).generate(queries)
    return run_calibration(bundle, workload,
                           algorithms=("greedy", "two-step"),
                           repeat=repeat, warmup=1)


def _assert_calibrated(report) -> None:
    assert report.design_rank_correlation > 0.0, \
        "estimated cost must rank designs like measured SQLite time"
    # The tuned designs must beat doing nothing about physical design,
    # in estimates and on the real DBMS alike.
    baseline = report.design("logical-only")
    for label in ("greedy", "two-step"):
        tuned = report.design(label)
        assert tuned.estimated_cost <= baseline.estimated_cost
        assert tuned.measured_seconds <= baseline.measured_seconds * 1.5, \
            f"{label} must not measurably regress on SQLite"


def test_calibration_rank_correlation(benchmark, emit):
    report = benchmark.pedantic(
        lambda: _calibrate(scale=600, queries=8, repeat=3),
        rounds=1, iterations=1)
    emit(report.describe())
    _assert_calibrated(report)


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    report = _calibrate(scale=150 if smoke else 600,
                        queries=5 if smoke else 8,
                        repeat=2 if smoke else 3)
    print(report.describe())
    _assert_calibrated(report)
    print("calibration OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
