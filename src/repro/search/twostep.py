"""The Two-Step baseline (paper Section 5.1.1).

Step 1 greedily selects the minimal-cost *logical* mapping without
considering physical design: every mapping is costed by the query
optimizer alone, under the "best guess" default physical design — a
clustered index on each table's ID column and a nonclustered index on
its PID column — never calling the tuning advisor.

Step 2 runs the physical design tool once, on the mapping chosen in
step 1.

The paper shows this decoupling loses ~77% (DBLP) / ~47% (Movie)
workload performance against the joint Greedy search (Fig. 4), because
step 1 systematically prefers mappings whose *unindexed* cost is low —
e.g. it avoids repetition split (wider scans) even when a covering index
would make the split a large win.
"""

from __future__ import annotations

from ..engine import Index
from ..errors import MappingError, SearchError, SQLError, TranslationError
from ..mapping import (CollectedStats, Mapping, enumerate_transformations,
                       hybrid_inlining)
from ..obs import NullTracer, Tracer, get_tracer
from ..resilience import note_suppressed
from ..workload import Workload
from ..xsd import SchemaTree
from .evaluator import MappingEvaluator, build_stats_only_database
from .result import DesignResult, SearchCounters, Stopwatch


class TwoStepSearch:
    """Logical design first, physical design after."""

    def __init__(self, tree: SchemaTree, workload: Workload,
                 collected: CollectedStats,
                 storage_bound: int | None = None,
                 base_mapping: Mapping | None = None,
                 default_split_count: int = 5,
                 max_rounds: int = 25,
                 tracer: Tracer | NullTracer | None = None,
                 jobs: int | None = None,
                 cache=None):
        self.tree = tree
        self.workload = workload
        self.collected = collected
        self.storage_bound = storage_bound
        self.base_mapping = base_mapping or hybrid_inlining(tree)
        self.default_split_count = default_split_count
        self.max_rounds = max_rounds
        self.tracer = tracer if tracer is not None else get_tracer()
        self.jobs = jobs
        self.cache = cache
        self.counters = SearchCounters()

    # ------------------------------------------------------------------
    def run(self) -> DesignResult:
        with Stopwatch(self.counters):
            with self.tracer.span("two-step",
                                  workload=self.workload.name,
                                  queries=len(self.workload)) as span:
                result = self._run()
        if self.tracer.enabled:
            span.set("rounds", result.rounds)
            span.set("estimated_cost", result.estimated_cost)
            result.trace = span
        return result

    def _run(self) -> DesignResult:
        current_mapping = self.base_mapping
        with self.tracer.span("logical_step") as logical_span:
            current_cost = self._logical_cost(current_mapping)
            if current_cost is None:
                raise SearchError(
                    "base mapping is infeasible for the workload")
            applied: list[str] = []
            rounds = 0
            while rounds < self.max_rounds:
                rounds += 1
                best: tuple[float, str, Mapping] | None = None
                for transformation in enumerate_transformations(
                        current_mapping, include_subsumed=True,
                        default_split_count=self.default_split_count):
                    self.counters.transformations_searched += 1
                    try:
                        mapping = transformation.apply(current_mapping)
                    except MappingError as exc:
                        note_suppressed(exc, "twostep.apply", self.tracer)
                        continue
                    cost = self._logical_cost(mapping)
                    if cost is None:
                        continue
                    if cost < current_cost and \
                            (best is None or cost < best[0]):
                        best = (cost, str(transformation), mapping)
                if best is None:
                    break
                self._check_transform(best[1], current_mapping, best[2])
                current_cost, name, current_mapping = best
                applied.append(name)
            logical_span.set("rounds", rounds)
            logical_span.set("applied", len(applied))

        # Step 2: physical design once, on the chosen logical mapping —
        # a one-element batch, so it shares the batch API's cache layers
        # (a warm persistent cache makes this step free).
        evaluator = MappingEvaluator(self.workload, self.collected,
                                     self.storage_bound,
                                     counters=self.counters,
                                     tracer=self.tracer,
                                     jobs=self.jobs, cache=self.cache)
        try:
            with self.tracer.span("physical_step"):
                final = evaluator.evaluate_many([current_mapping])[0]
        finally:
            evaluator.close()
        if final is None:
            raise SearchError("chosen logical mapping became infeasible")
        return DesignResult(
            algorithm="two-step",
            workload=self.workload,
            mapping=final.mapping,
            schema=final.schema,
            configuration=final.tuning.configuration,
            sql_queries=final.sql_queries,
            estimated_cost=final.total_cost,
            counters=self.counters,
            rounds=rounds,
            applied=applied,
        )

    # ------------------------------------------------------------------
    def _check_transform(self, name: str, before: Mapping,
                         after: Mapping) -> None:
        """Debug-mode assertion: the applied rewrite stayed lossless.

        Runs once per *applied* round (rounds are few), so re-deriving
        both schemas is cheap relative to the logical costing above.
        """
        from ..check import check_transform, checks_enabled, enforce
        from ..mapping import derive_schema

        if not checks_enabled():
            return
        enforce(check_transform(derive_schema(before), derive_schema(after),
                                name),
                self.tracer, context=f"transform:{name}")

    def _logical_cost(self, mapping: Mapping) -> float | None:
        """Optimizer cost under the default physical design only."""
        from ..mapping import derive_schema

        self.counters.mappings_evaluated += 1
        try:
            schema = derive_schema(mapping)
        except MappingError as exc:
            note_suppressed(exc, "twostep.derive_schema", self.tracer)
            return None
        db = build_stats_only_database(schema, self.collected,
                                       tracer=self.tracer)
        default_indexes = []
        for table in db.catalog.base_tables():
            if table.has_column("PID"):
                default_indexes.append(Index(
                    name=f"defix_pid_{table.name}", table_name=table.name,
                    key_columns=("PID",), hypothetical=True))
        try:
            translator_queries = MappingEvaluator(
                self.workload, self.collected).translate_workload(schema)
        except TranslationError:
            return None
        total = 0.0
        for sql, weight in translator_queries:
            try:
                planned = db.estimate(sql, extra_indexes=default_indexes)
            except SQLError as exc:
                # An unplannable query makes the mapping infeasible for
                # step 1; anything else (CheckError, injected faults)
                # still propagates — those signal bugs, not infeasibility.
                note_suppressed(exc, "twostep.estimate", self.tracer)
                return None
            self.counters.optimizer_calls += 1
            total += weight * planned.est_cost
        return total
