"""Search algorithms over the combined logical+physical design space."""

from .cache import (CacheKey, EvaluationCache, default_cache_dir,
                    problem_digest, stats_digest, workload_digest)
from .candidate_merging import CandidateMerger
from .candidate_selection import (CandidateSelector, CandidateSet,
                                  apply_splits)
from .cost_derivation import CostDerivation, affected_annotations
from .evaluator import (EvaluatedMapping, MappingEvaluator,
                        build_stats_only_database, mapping_digest)
from .greedy import GreedySearch
from .naive import NaiveGreedySearch
from .parallel import EvaluationPool, parallel_backend, resolve_jobs
from .result import DesignResult, SearchCounters, Stopwatch
from .twostep import TwoStepSearch
from .updates import update_load_for

__all__ = [
    "CacheKey",
    "EvaluationCache",
    "EvaluationPool",
    "default_cache_dir",
    "problem_digest",
    "stats_digest",
    "workload_digest",
    "parallel_backend",
    "resolve_jobs",
    "GreedySearch",
    "NaiveGreedySearch",
    "TwoStepSearch",
    "DesignResult",
    "SearchCounters",
    "Stopwatch",
    "MappingEvaluator",
    "EvaluatedMapping",
    "build_stats_only_database",
    "mapping_digest",
    "CandidateSelector",
    "CandidateSet",
    "apply_splits",
    "CandidateMerger",
    "CostDerivation",
    "affected_annotations",
    "update_load_for",
]
