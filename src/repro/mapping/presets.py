"""Canonical starting mappings.

* :func:`hybrid_inlining` — the mapping of Shanmugasundaram et al. [20]
  used as the paper's normalization baseline: inline every element whose
  in-degree is one; only the root and set-valued elements get their own
  tables. This is also the fully-inlined schema ``T0`` of Theorem 1.
* :func:`shared_inlining` — keep all annotations authored in the schema
  document (shared types stay separate tables).
* :func:`fully_split` — every TAG node outlined into its own table with
  a unique annotation (maximal type split); the finest-granularity
  mapping, over which statistics are conceptually collected.
"""

from __future__ import annotations

from ..xsd import NodeKind, SchemaTree
from .model import Mapping


def _ensure_required(tree: SchemaTree,
                     annotations: dict[int, str]) -> dict[int, str]:
    """Make sure root and under-repetition elements are annotated."""
    used = set(annotations.values())
    for node in tree.iter_nodes():
        if node.kind != NodeKind.TAG or not tree.must_annotate(node):
            continue
        if node.node_id in annotations:
            continue
        name = node.annotation or node.name
        while name in used:
            name += "_t"
        annotations[node.node_id] = name
        used.add(name)
    return annotations


def hybrid_inlining(tree: SchemaTree) -> Mapping:
    """Annotate only what must be annotated; inline everything else.

    Schema-authored annotations are honoured for the required nodes (so
    shared types such as DBLP's ``author`` keep one shared table, as in
    hybrid inlining), and dropped everywhere else.
    """
    annotations: dict[int, str] = {}
    for node in tree.iter_nodes():
        if node.kind == NodeKind.TAG and tree.must_annotate(node) \
                and node.annotation:
            annotations[node.node_id] = node.annotation
    _ensure_required(tree, annotations)
    mapping = Mapping(tree=tree,
                      annotations=tuple(sorted(annotations.items())))
    mapping.validate()
    return mapping


# The fully-inlined schema T0 of Theorem 1 coincides with hybrid inlining.
fully_inlined = hybrid_inlining


def shared_inlining(tree: SchemaTree) -> Mapping:
    """Keep every annotation authored in the schema document."""
    annotations: dict[int, str] = {}
    for node in tree.iter_nodes():
        if node.kind == NodeKind.TAG and node.annotation:
            annotations[node.node_id] = node.annotation
    _ensure_required(tree, annotations)
    mapping = Mapping(tree=tree,
                      annotations=tuple(sorted(annotations.items())))
    mapping.validate()
    return mapping


def fully_split(tree: SchemaTree) -> Mapping:
    """Every TAG node in its own table, with a unique annotation."""
    annotations: dict[int, str] = {}
    used: set[str] = set()
    for node in tree.iter_nodes():
        if node.kind != NodeKind.TAG:
            continue
        name = node.annotation or node.name
        while name in used:
            name += "_t"
        annotations[node.node_id] = name
        used.add(name)
    mapping = Mapping(tree=tree,
                      annotations=tuple(sorted(annotations.items())))
    mapping.validate()
    return mapping
