"""Physical design tool: what-if index/view tuning advisor."""

from .candidates import CandidateGenerator, QueryShape, analyze_select
from .config import Configuration, ViewCandidate, make_view_candidate
from .tuner import (AdvisorStats, IndexTuningAdvisor, QueryReport,
                    TuningResult, materialize)

__all__ = [
    "CandidateGenerator",
    "QueryShape",
    "analyze_select",
    "Configuration",
    "ViewCandidate",
    "make_view_candidate",
    "IndexTuningAdvisor",
    "TuningResult",
    "QueryReport",
    "AdvisorStats",
    "materialize",
]
