"""A columnar execution backend on `DuckDB <https://duckdb.org>`_.

The shredded tables the paper's mappings produce are near-columnar
already (narrow, typed, join-keyed), which makes a real column store
the natural second executor for the backend matrix: the same logical
and physical designs run against a genuinely different storage and
execution model, and ``repro.backends.compare`` checks the two engines
agree row-for-row (docs/backends.md, "Backend matrix").

All shared machinery — streaming bulk load, the crash-safe load
manifest, physical-design DDL, per-thread connections, exclusive
timing — lives in :class:`~repro.backends.dbms.RelationalBackend`;
this module supplies the DuckDB driver hooks:

* **Optional dependency.** ``duckdb`` is not a hard requirement;
  constructing a :class:`DuckDBBackend` without the module installed
  raises a clear :class:`~repro.backends.dbms.BackendError`
  (:func:`duckdb_available` lets tests and the CLI skip gracefully).
* **Per-thread connections.** A ``DuckDBPyConnection`` must not be
  shared across threads; worker threads get ``connection.cursor()``
  clones, which share the parent's database (including in-memory
  ones) — the same one-connection-per-thread discipline as the
  SQLite backend, with a driver-native mechanism.
* **Explicit transactions.** DuckDB autocommits each statement, so
  the bulk-load path brackets its sized transactions with an explicit
  ``BEGIN`` (idempotent via a primary-connection flag);
  ``commit()`` outside a transaction is a no-op.
* **Busy classification.** Write-write conflicts and file locks map
  to the retryable :class:`~repro.backends.dbms.BackendBusyError`.
* **Fetched-value normalization.** DuckDB returns ``DECIMAL`` columns
  as :class:`decimal.Decimal`; rows are normalized to floats so serve
  results and the differential validator see the engine's value
  domain. (BOOLEAN comes back as :class:`bool`, which the comparator's
  row normalization already maps onto SQLite's 0/1.)

The SQL comes from :data:`repro.backends.dialect.DUCKDB` — DECIMAL and
BOOLEAN stay first-class, unlike the SQLite affinity squash; see the
dialect module for the full divergence list.
"""

from __future__ import annotations

import decimal

from ..obs import NullTracer, Tracer
from ..resilience import active_fault_plan
from .dbms import (DEFAULT_LOAD_BATCH, DEFAULT_TXN_ROWS, MANIFEST_TABLE,
                   BackendBusyError, BackendError, LoadManifest,
                   RelationalBackend)
from .dialect import DUCKDB

try:  # pragma: no cover - exercised only where duckdb is installed
    import duckdb as _duckdb
except ImportError:  # pragma: no cover - the common dev environment
    _duckdb = None

__all__ = ["DuckDBBackend", "duckdb_available", "BackendError",
           "BackendBusyError", "LoadManifest", "MANIFEST_TABLE",
           "DEFAULT_LOAD_BATCH", "DEFAULT_TXN_ROWS"]


def duckdb_available() -> bool:
    """Whether the optional ``duckdb`` package is importable."""
    return _duckdb is not None


#: Substrings of driver messages that indicate transient contention.
_BUSY_MARKERS = ("lock", "conflict", "busy")


class DuckDBBackend(RelationalBackend):
    """:class:`~repro.backends.base.SQLBackend` over DuckDB."""

    name = "duckdb"
    dialect = DUCKDB

    def __init__(self, path: str = ":memory:",
                 tracer: Tracer | NullTracer | None = None,
                 read_only: bool = False):
        if _duckdb is None:
            raise BackendError(
                "the duckdb backend needs the optional 'duckdb' package "
                "(pip install duckdb); it is not installed")
        # Resolved here, not at class scope, so importing this module
        # (and subclass discovery) works without duckdb installed.
        self._driver_error = (_duckdb.Error,)
        self._in_txn = False
        super().__init__(path=path, tracer=tracer, read_only=read_only)

    # ------------------------------------------------------------------
    # Driver hooks
    # ------------------------------------------------------------------
    def _open_primary(self):
        active_fault_plan().maybe_raise("backend.connect")
        try:
            if self.path == ":memory:":
                # read_only is meaningless for a private in-memory
                # database, and duckdb rejects the combination.
                return _duckdb.connect(":memory:")
            return _duckdb.connect(self.path, read_only=self.read_only)
        except self._driver_error as exc:
            raise BackendError(
                f"cannot open {self.path!r}: {exc}") from exc

    def _open_worker(self):
        active_fault_plan().maybe_raise("backend.connect")
        try:
            # cursor() clones the connection against the same database
            # (in-memory included) — the documented multi-thread
            # pattern; each clone is used only by its opening thread.
            return self.connection.cursor()
        except self._driver_error as exc:
            raise BackendError(
                f"cannot open a worker connection: {exc}") from exc

    def _begin_write(self) -> None:
        # DuckDB autocommits per statement; the load loop calls this
        # once per batch, so make it idempotent. Writes happen only on
        # the primary connection (single-threaded by contract), so a
        # plain flag suffices.
        if not self._in_txn:
            self.connection.begin()
            self._in_txn = True

    def _commit_write(self) -> None:
        if self._in_txn:
            self._in_txn = False
            self.connection.commit()

    def _is_busy(self, exc: BaseException) -> bool:
        message = str(exc).lower()
        return any(marker in message for marker in _BUSY_MARKERS)

    def _native_rows(self, rows: list[tuple]) -> list[tuple]:
        # A NULL in the first row of a DECIMAL column would defeat a
        # first-row-only sniff, so scan the whole result; the scan is
        # allocation-free and only the (rare) hit pays for rebuilding.
        if not any(isinstance(value, decimal.Decimal)
                   for row in rows for value in row):
            return rows
        return [tuple(float(value) if isinstance(value, decimal.Decimal)
                      else value for value in row)
                for row in rows]

    # ------------------------------------------------------------------
    # Catalog introspection
    # ------------------------------------------------------------------
    def _table_on_disk(self, name: str) -> bool:
        try:
            row = self.connection.execute(
                "SELECT 1 FROM information_schema.tables "
                "WHERE table_name = ?", (name,)).fetchone()
        except self._driver_error as exc:  # pragma: no cover - defensive
            raise BackendError(
                f"inspecting information_schema failed: {exc}") from exc
        return row is not None

    def table_names_on_disk(self) -> list[str]:
        rows = self.connection.execute(
            "SELECT table_name FROM information_schema.tables "
            "WHERE table_schema = 'main' ORDER BY table_name").fetchall()
        return [name for (name,) in rows]

    def table_columns(self, name: str) -> list[tuple[str, str]]:
        rows = self.connection.execute(
            "SELECT column_name, data_type FROM "
            "information_schema.columns WHERE table_name = ? "
            "ORDER BY ordinal_position", (name,)).fetchall()
        return [(column, str(declared).upper()) for column, declared in rows]

    def index_names(self) -> list[str]:
        # duckdb_indexes() lists explicitly created indexes;
        # constraint-backed ones live in duckdb_constraints().
        rows = self.connection.execute(
            "SELECT index_name FROM duckdb_indexes() "
            "ORDER BY index_name").fetchall()
        return [name for (name,) in rows]
