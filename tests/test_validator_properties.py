"""Property-based validator tests: generated-valid documents validate;
random structural mutations are rejected."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.xmlkit import Document, Element
from repro.xsd import validate

from tests.test_pipeline_properties import (build_document, build_tree,
                                            schema_specs)


@given(schema_specs(), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_generated_documents_validate(spec, seed):
    kinds, with_choice = spec
    tree, _ = build_tree(kinds, with_choice)
    doc = build_document(tree, kinds, with_choice, seed, n_items=10)
    validate(doc, tree)  # must not raise


def _mutate(doc: Document, rng: random.Random) -> str | None:
    """Apply one structural corruption; returns its label or None."""
    items = list(doc.root.children)
    if not items:
        return None
    item = rng.choice(items)
    mutation = rng.choice(["bogus-child", "drop-required", "double-choice"])
    if mutation == "bogus-child":
        item.make_child("bogus_element", "x")
        return mutation
    if mutation == "drop-required":
        # Remove a required (plain) field if one exists.
        for child in item.children:
            if child.tag == "alpha":  # first field; plain in many specs
                item._children.remove(child)
                item._texts.pop()
                return mutation
        return None
    if mutation == "double-choice":
        if item.find("left") is not None or item.find("right") is not None:
            item.make_child("left", "1")
            item.make_child("left", "2")
            return mutation
        return None
    return None


@given(schema_specs(), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_mutated_documents_rejected(spec, seed):
    kinds, with_choice = spec
    tree, _ = build_tree(kinds, with_choice)
    doc = build_document(tree, kinds, with_choice, seed, n_items=6)
    rng = random.Random(seed + 1)
    mutation = _mutate(doc, rng)
    if mutation is None or (mutation == "drop-required"
                            and kinds[0] != "plain"):
        return  # no applicable corruption for this spec
    with pytest.raises(ValidationError):
        validate(doc, tree)
