"""The shared real-DBMS backend skeleton.

:class:`RelationalBackend` holds everything about driving a DB-API
style engine that is *not* specific to one driver: streaming bulk load
through :func:`repro.mapping.shred_typed_batches`, the crash-safe load
manifest, physical-design DDL, the concurrent serve path, and the
exclusive warmup+median timing path. :class:`~repro.backends.sqlite.
SQLiteBackend` and :class:`~repro.backends.duckdb.DuckDBBackend` are
thin subclasses that supply a :class:`~repro.backends.dialect.Dialect`
plus the driver hooks (connect, catalog introspection, busy-error
classification, transaction bracketing).

Data loading streams in chunked ``executemany`` calls inside sized
transactions, so both engines see byte-identical shredded rows, any
result divergence is a semantics bug rather than a loading artifact,
and peak load memory is bounded by the batch size, not the document
(docs/scaling.md).

Crash safety
------------

``load`` maintains a **load manifest** — a ``_repro_load_manifest``
key/value table inside the target database holding the mapped schema's
digest, the load mode, a per-table committed-row watermark, and a
``complete`` marker. The manifest header commits *before* the first
mapped table is created, and watermark updates join every data
transaction, so after a crash (even ``SIGKILL``) the database always
holds a consistent prefix of the load *and* a manifest describing it
exactly. A fresh backend reopening the file detects the interrupted
load via :meth:`load_manifest` and ``load()`` either **resumes** from
the last committed batch (``resume=True`` — shredding is deterministic,
so re-streaming and skipping the watermarked prefix reproduces the
missing rows with identical IDs) or **rolls back** cleanly (default:
drop the partial tables and reload from scratch) instead of dying on a
raw "table already exists". ``scripts/load_kill_smoke.py`` proves this
against a real ``SIGKILL`` in CI.

Concurrency model
-----------------

Driver connections are not thread-safe objects, and the naive "one
connection created on the loading thread, used everywhere" design
either throws thread-affinity errors or silently races when a thread
pool executes queries concurrently. Every subclass therefore keeps
**one connection per thread**:

* the *primary* connection (created in ``__init__``) performs all
  loading and DDL, which stays single-threaded by contract;
* every other thread that executes a query lazily opens its own
  connection to the same database the first time it asks for one (how
  — a shared-cache URI, a ``cursor()`` clone — is the subclass's
  :meth:`_open_worker`);
* :meth:`close` closes every connection the backend ever opened.

``time_query`` is the *timed benchmark* path: it takes an exclusive
per-backend lock so concurrent callers cannot interleave page-cache
churn into each other's measured runs, and warmup + timed runs all
execute on the calling thread's connection. ``execute`` is the *serve*
path: it never takes that lock and runs concurrently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..engine import Database
from ..errors import ReproError
from ..mapping import MappedSchema, Shredder, shred_typed_batches
from ..obs import NullTracer, Tracer, get_tracer
from ..physdesign import Configuration
from ..resilience import active_fault_plan
from ..search import mapping_digest
from ..sqlast import Query
from .base import QueryTiming, timed_runs
from .dialect import Dialect, SQLITE

__all__ = ["RelationalBackend", "BackendError", "BackendBusyError",
           "LoadManifest", "MANIFEST_TABLE",
           "DEFAULT_LOAD_BATCH", "DEFAULT_TXN_ROWS"]


class BackendError(ReproError):
    """A backend operation failed (DDL, load, or execution)."""


class BackendBusyError(BackendError):
    """The database was transiently locked or in write contention.

    ``retryable`` marks it for the resilience classifier: the serving
    layer's :class:`~repro.resilience.RetryPolicy` re-attempts these —
    a busy reader/writer collision is momentary — instead of failing
    the request.
    """

    retryable = True


#: Key/value table ``load()`` maintains inside the target database.
MANIFEST_TABLE = "_repro_load_manifest"


@dataclass(frozen=True)
class LoadManifest:
    """What a (possibly interrupted) bulk load left in the database."""

    schema_digest: str
    mode: str                 # "fresh" or "append"
    complete: bool
    watermarks: dict[str, int] = field(default_factory=dict)


#: Rows per executemany chunk during bulk load.
DEFAULT_LOAD_BATCH = 10_000

#: Rows per load transaction (several chunks are committed together so
#: small batch sizes don't pay per-batch fsync/commit overhead).
DEFAULT_TXN_ROWS = 50_000


class RelationalBackend:
    """:class:`~repro.backends.base.SQLBackend` over a DB-API driver.

    Subclass contract — class attributes:

    * ``name`` — backend key (``sqlite``, ``duckdb``).
    * ``dialect`` — the :class:`~repro.backends.dialect.Dialect` that
      renders SQL and converts bound values.
    * ``post_ddl`` — statements run after ``apply_configuration``'s
      DDL (e.g. SQLite's ``ANALYZE``).
    * ``_driver_error`` — the driver's base exception class(es); every
      raise is wrapped into :class:`BackendError`.

    and methods: :meth:`_open_primary`, :meth:`_open_worker`,
    :meth:`_table_on_disk`, :meth:`table_names_on_disk`,
    :meth:`table_columns`, :meth:`index_names`; optionally
    :meth:`_configure_primary`, :meth:`_is_busy`, :meth:`_begin_write`
    / :meth:`_commit_write` (engines without implicit transaction
    start), and :meth:`_native_rows` (fetched-value normalization).
    """

    name = "dbms"
    dialect: Dialect = SQLITE
    post_ddl: tuple[str, ...] = ()
    _driver_error: tuple[type[BaseException], ...] = (Exception,)

    def __init__(self, path: str = ":memory:",
                 tracer: Tracer | NullTracer | None = None,
                 read_only: bool = False):
        self.tracer = tracer if tracer is not None else get_tracer()
        self._metrics = self.tracer.metrics(f"backend.{self.name}")
        self.path = path
        self.read_only = read_only
        self._connections: list = []
        self._conn_lock = threading.Lock()
        self._timing_lock = threading.Lock()
        self._local = threading.local()
        self._closed = False
        # The primary connection: loading and DDL happen here, on the
        # thread that constructed the backend.
        self.connection = self._register(self._open_primary())
        self._local.connection = self.connection
        self._configure_primary()
        self._tables: list[str] = []
        #: Rows loaded per table across all load calls.
        self.row_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Driver hooks
    # ------------------------------------------------------------------
    def _open_primary(self):
        """Open the primary (load/DDL) connection."""
        raise NotImplementedError

    def _open_worker(self):
        """Open one more connection to the same database, for the
        calling thread's exclusive use."""
        raise NotImplementedError

    def _configure_primary(self) -> None:
        """Per-engine session setup on the primary connection."""

    def _is_busy(self, exc: BaseException) -> bool:
        """Whether ``exc`` is transient lock contention (retryable)."""
        return False

    def _begin_write(self) -> None:
        """Start a write transaction on the primary connection.

        The default is a no-op for engines (sqlite3) that open a
        transaction implicitly on the first write; autocommit engines
        override this (idempotently — the load loop calls it once per
        batch, paired with one :meth:`_commit_write` per sized
        transaction).
        """

    def _commit_write(self) -> None:
        self.connection.commit()

    def _native_rows(self, rows: list[tuple]) -> list[tuple]:
        """Normalize driver-specific fetched values (e.g. Decimal)."""
        return rows

    def _timed_runs(self, run, repeat: int, warmup: int) -> QueryTiming:
        return timed_runs(run, repeat=repeat, warmup=warmup)

    # -- catalog introspection (the comparator's raw material) ---------
    def _table_on_disk(self, name: str) -> bool:
        raise NotImplementedError

    def table_names_on_disk(self) -> list[str]:
        """Sorted user-table names physically present in the database."""
        raise NotImplementedError

    def table_columns(self, name: str) -> list[tuple[str, str]]:
        """``(column name, declared type)`` in declaration order."""
        raise NotImplementedError

    def index_names(self) -> list[str]:
        """Sorted names of user-created (non-constraint) indexes."""
        raise NotImplementedError

    def table_rows(self, name: str) -> list[tuple]:
        """Every row of one table (unordered; callers sort)."""
        return self.execute_sql(
            f'SELECT * FROM {self.dialect.quote(name)}')

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _register(self, connection):
        with self._conn_lock:
            if self._closed:
                connection.close()
                raise BackendError("backend is closed")
            self._connections.append(connection)
        return connection

    def _thread_connection(self):
        """The calling thread's connection, opened on first use."""
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._register(self._open_worker())
            self._local.connection = connection
            self._metrics.incr("worker_connections")
        return connection

    @property
    def open_connections(self) -> int:
        with self._conn_lock:
            return len(self._connections)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, schema: MappedSchema, docs, *,
             batch_size: int = DEFAULT_LOAD_BATCH,
             txn_rows: int = DEFAULT_TXN_ROWS,
             append: bool = False,
             resume: bool = False) -> None:
        """Shred the documents and bulk-load every mapped table.

        Rows stream through :func:`repro.mapping.shred_typed_batches`
        in ``batch_size`` chunks fed to ``executemany``, with a commit
        every ``txn_rows`` rows — so peak memory is bounded by the
        batch size, never the document size. A second ``load()`` on the
        same backend raises :class:`BackendError` unless
        ``append=True``, which keeps the existing tables and appends
        (the caller owns ID continuity — see the shredder's
        ``continue_ids`` contract).

        Crash safety: the load maintains a manifest (see the module
        docstring). If the database holds an **interrupted** fresh load
        — the manifest exists but lacks its ``complete`` marker — the
        default is a clean rollback (drop the partial tables, reload
        everything); ``resume=True`` instead skips each table's
        committed watermark and loads only the missing suffix, which
        reproduces the exact rows a crash-free load would have stored
        because shredding is deterministic. After a resumed load,
        ``row_counts`` reports the table totals (committed prefix plus
        the resumed suffix). An interrupted *append* load is refused
        outright — appended rows cannot be told apart from base data.
        """
        if append and resume:
            raise BackendError("append=True and resume=True are "
                               "mutually exclusive")
        with self.tracer.span("backend.load", backend=self.name) as span:
            faults = active_fault_plan()
            digest = mapping_digest(schema.mapping)
            engine_tables = schema.to_engine_tables()
            manifest = self.load_manifest()
            resuming = False
            skip: dict[str, int] = {}
            if manifest is not None and not manifest.complete:
                if manifest.mode != "fresh":
                    raise BackendError(
                        "a previous append-load was interrupted; appended "
                        "rows cannot be distinguished from the base data "
                        "— restore the database file or reload from "
                        "scratch")
                if resume:
                    if manifest.schema_digest != digest:
                        raise BackendError(
                            "cannot resume the interrupted load: it used "
                            "a different mapped schema")
                    skip = dict(manifest.watermarks)
                    resuming = True
                    self._metrics.incr("load_resumes")
                else:
                    self._rollback_incomplete(manifest)
            inserts: dict[str, str] = {}
            stored: dict[str, int] = {}
            if resuming:
                for table in engine_tables:
                    if self._table_on_disk(table.name):
                        if table.name not in self._tables:
                            self._tables.append(table.name)
                    else:
                        # The crash may have landed between the manifest
                        # header and this table's CREATE.
                        self._create_table(table)
                    stored[table.name] = skip.get(table.name, 0)
                    self.row_counts[table.name] = stored[table.name]
                    inserts[table.name] = self.dialect.insert_sql(table)
            else:
                # Conflict check first — nothing is written unless the
                # whole load is admissible.
                for table in engine_tables:
                    self._register_on_disk(table.name)
                    if table.name in self._tables and not append:
                        raise BackendError(
                            f"table {table.name!r} already exists on this "
                            f"backend; load() is one-shot per database — "
                            f"pass append=True to append rows, or use a "
                            f"fresh backend/database")
                for table in engine_tables:
                    stored[table.name] = (self._stored_rows(table.name)
                                          if append else 0)
                # Header before any CREATE: a crash at any later point
                # leaves a manifest naming every table to roll back.
                self._write_manifest_header(
                    digest, engine_tables,
                    mode="append" if append else "fresh", stored=stored)
                for table in engine_tables:
                    if table.name not in self._tables:
                        self._create_table(table)
                    self.row_counts.setdefault(table.name, 0)
                    inserts[table.name] = self.dialect.insert_sql(table)
            shredder = Shredder(schema)
            if append:
                # Continue element-ID numbering above everything already
                # stored, so appended rows keep globally unique IDs (and
                # valid PID references) even across backend instances.
                shredder.reset_ids(self._max_stored_id(engine_tables) + 1)
            storable = self.dialect.storable
            loaded = pending = 0
            remaining = dict(skip)
            try:
                for name, rows in shred_typed_batches(schema, docs,
                                                      batch_size,
                                                      continue_ids=append,
                                                      shredder=shredder):
                    faults.maybe_raise("backend.load.batch")
                    if remaining.get(name):
                        drop = min(remaining[name], len(rows))
                        remaining[name] -= drop
                        rows = rows[drop:]
                        self._metrics.incr("rows_skipped_on_resume", drop)
                        if not rows:
                            continue
                    self._begin_write()
                    self.connection.executemany(
                        inserts[name],
                        [tuple(storable(v) for v in row) for row in rows])
                    stored[name] += len(rows)
                    self.row_counts[name] = (self.row_counts.get(name, 0)
                                             + len(rows))
                    loaded += len(rows)
                    pending += len(rows)
                    if pending >= txn_rows:
                        # Watermarks ride in the same transaction as the
                        # rows they count — atomically consistent at
                        # every commit point.
                        self._update_watermarks(stored)
                        self._commit_write()
                        self._metrics.incr("load_commits")
                        pending = 0
                self._begin_write()
                self._update_watermarks(stored)
                self._mark_complete()
                self._commit_write()
            except self._driver_error as exc:
                raise BackendError(f"bulk load failed: {exc}") from exc
            span.set("rows", loaded)
            self._metrics.incr("rows_loaded", loaded)

    def load_from_database(self, db: Database) -> None:
        """Copy an already-loaded engine database's base tables."""
        with self.tracer.span("backend.load", backend=self.name,
                              source="engine") as span:
            loaded = 0
            for table in db.catalog.base_tables():
                loaded += self._create_and_fill(table, table.rows or [])
            self._commit_write()
            span.set("rows", loaded)
            self._metrics.incr("rows_loaded", loaded)

    def _max_stored_id(self, tables) -> int:
        """Largest element ID currently stored in any mapped table."""
        best = 0
        for table in tables:
            if not any(c.name == "ID" for c in table.columns):
                continue
            try:
                row = self.connection.execute(
                    f'SELECT MAX("ID") FROM "{table.name}"').fetchone()
            except self._driver_error as exc:
                raise BackendError(
                    f"reading max ID of {table.name!r} failed: "
                    f"{exc}") from exc
            if row and row[0] is not None:
                best = max(best, int(row[0]))
        return best

    # ------------------------------------------------------------------
    # Load manifest (crash safety — see the module docstring)
    # ------------------------------------------------------------------
    def load_manifest(self) -> LoadManifest | None:
        """The manifest of the last bulk load, or ``None`` if no
        ``load()`` ever ran against this database."""
        if not self._table_on_disk(MANIFEST_TABLE):
            return None
        try:
            rows = self.connection.execute(
                f'SELECT "key", "value" FROM "{MANIFEST_TABLE}"').fetchall()
        except self._driver_error as exc:
            raise BackendError(
                f"reading the load manifest failed: {exc}") from exc
        entries = {key: value for key, value in rows}
        watermarks = {key[len("rows:"):]: int(value)
                      for key, value in entries.items()
                      if key.startswith("rows:")}
        return LoadManifest(
            schema_digest=str(entries.get("schema", "")),
            mode=str(entries.get("mode", "fresh")),
            complete=str(entries.get("complete", "0")) == "1",
            watermarks=watermarks)

    def _write_manifest_header(self, digest: str, tables,
                               mode: str, stored: dict[str, int]) -> None:
        """Commit the manifest naming every table, *before* any CREATE."""
        try:
            self._begin_write()
            self.connection.execute(
                f'CREATE TABLE IF NOT EXISTS "{MANIFEST_TABLE}" '
                f'("key" TEXT PRIMARY KEY, "value" TEXT NOT NULL)')
            self.connection.execute(f'DELETE FROM "{MANIFEST_TABLE}"')
            entries = [("schema", digest), ("mode", mode), ("complete", "0")]
            entries += [(f"rows:{table.name}", str(stored[table.name]))
                        for table in tables]
            self.connection.executemany(
                f'INSERT INTO "{MANIFEST_TABLE}" ("key", "value") '
                f'VALUES (?, ?)', entries)
            self._commit_write()
        except self._driver_error as exc:
            raise BackendError(
                f"writing the load manifest failed: {exc}") from exc

    def _update_watermarks(self, stored: dict[str, int]) -> None:
        """Stage watermark updates; the caller's commit makes them live
        atomically with the rows they count."""
        self.connection.executemany(
            f'UPDATE "{MANIFEST_TABLE}" SET "value" = ? WHERE "key" = ?',
            [(str(stored[name]), f"rows:{name}")
             for name in sorted(stored)])

    def _mark_complete(self) -> None:
        self.connection.execute(
            f'UPDATE "{MANIFEST_TABLE}" SET "value" = ? '
            f'WHERE "key" = ?', ("1", "complete"))

    def _rollback_incomplete(self, manifest: LoadManifest) -> None:
        """Drop everything an interrupted fresh load left behind."""
        try:
            self._begin_write()
            for name in sorted(manifest.watermarks):
                self.connection.execute(f'DROP TABLE IF EXISTS "{name}"')
            self.connection.execute(
                f'DROP TABLE IF EXISTS "{MANIFEST_TABLE}"')
            self._commit_write()
        except self._driver_error as exc:
            raise BackendError(
                f"rolling back the interrupted load failed: {exc}") from exc
        for name in manifest.watermarks:
            if name in self._tables:
                self._tables.remove(name)
            self.row_counts.pop(name, None)
        self._metrics.incr("load_rollbacks")

    def _stored_rows(self, name: str) -> int:
        if not self._table_on_disk(name):
            return 0
        try:
            row = self.connection.execute(
                f'SELECT COUNT(*) FROM "{name}"').fetchone()
        except self._driver_error as exc:
            raise BackendError(
                f"counting rows of {name!r} failed: {exc}") from exc
        return int(row[0]) if row else 0

    # ------------------------------------------------------------------
    # Table DDL
    # ------------------------------------------------------------------
    def _register_on_disk(self, name: str) -> None:
        """Adopt a table already present in the database file."""
        if name not in self._tables and self._table_on_disk(name):
            self._tables.append(name)
            self.row_counts.setdefault(name, 0)

    def _create_table(self, table) -> None:
        try:
            self.connection.execute(self.dialect.create_table_sql(table))
        except self._driver_error as exc:
            raise BackendError(
                f"creating table {table.name!r} failed: {exc}") from exc
        if table.name not in self._tables:
            self._tables.append(table.name)
        self.row_counts.setdefault(table.name, 0)
        self._metrics.incr("tables_loaded")

    def _ensure_table(self, table, append: bool = False) -> None:
        """Create ``table``; an existing one is an error unless appending.

        "Existing" covers both a previous ``load()`` on this backend
        and a table already present in a file-backed database opened by
        a fresh backend — either way the caller gets a clear
        :class:`BackendError` instead of the driver's raw "table
        already exists", and ``append=True`` turns both into an
        append-load.
        """
        self._register_on_disk(table.name)
        if table.name in self._tables:
            if append:
                return
            raise BackendError(
                f"table {table.name!r} already exists on this backend; "
                f"load() is one-shot per database — pass append=True to "
                f"append rows, or use a fresh backend/database")
        self._create_table(table)

    def _create_and_fill(self, table, rows: list[tuple]) -> int:
        self._begin_write()
        self._ensure_table(table)
        storable = self.dialect.storable
        try:
            if rows:
                self.connection.executemany(
                    self.dialect.insert_sql(table),
                    [tuple(storable(v) for v in row) for row in rows])
        except self._driver_error as exc:
            raise BackendError(
                f"loading table {table.name!r} failed: {exc}") from exc
        self.row_counts[table.name] += len(rows)
        return len(rows)

    # ------------------------------------------------------------------
    # Physical design
    # ------------------------------------------------------------------
    def apply_configuration(self, configuration: Configuration) -> None:
        """CREATE INDEX / materialize join views, then ``post_ddl``."""
        with self.tracer.span("backend.ddl", backend=self.name,
                              indexes=len(configuration.indexes),
                              views=len(configuration.views)):
            try:
                self._begin_write()
                for view in configuration.views:
                    self.connection.execute(
                        self.dialect.create_view_table_sql(
                            view.name, view.definition))
                    self._metrics.incr("views_built")
                for index in configuration.indexes:
                    self.connection.execute(
                        self.dialect.create_index_sql(index))
                    self._metrics.incr("indexes_built")
                self._commit_write()
                for statement in self.post_ddl:
                    self.connection.execute(statement)
                self._commit_write()
            except self._driver_error as exc:
                raise BackendError(
                    f"applying configuration failed: {exc}") from exc

    # ------------------------------------------------------------------
    # Execution (the serve path: concurrent, per-thread connections)
    # ------------------------------------------------------------------
    def sql_text(self, query: Query) -> str:
        return self.dialect.render_query(query)

    def execute(self, query: Query) -> list[tuple]:
        return self.execute_sql(self.dialect.render_query(query))

    def execute_sql(self, sql: str) -> list[tuple]:
        active_fault_plan().maybe_raise("backend.execute")
        connection = self._thread_connection()
        with self.tracer.span("backend.query", backend=self.name):
            try:
                rows = connection.execute(sql).fetchall()
            except self._driver_error as exc:
                if self._is_busy(exc):
                    raise BackendBusyError(
                        f"database busy: {exc}\nSQL: {sql}") from exc
                raise BackendError(
                    f"query failed: {exc}\nSQL: {sql}") from exc
        self._metrics.incr("queries_executed")
        return self._native_rows(rows)

    def prepare(self, query: Query) -> None:
        """Compile without running (dialect round-trip check)."""
        sql = self.dialect.render_query(query)
        try:
            self._thread_connection().execute(f"EXPLAIN {sql}").fetchall()
        except self._driver_error as exc:
            raise BackendError(
                f"query does not prepare: {exc}\nSQL: {sql}") from exc

    # ------------------------------------------------------------------
    # Timing (the benchmark path: exclusive while measuring)
    # ------------------------------------------------------------------
    def time_query(self, query: Query, repeat: int = 3,
                   warmup: int = 1) -> QueryTiming:
        """Warmup + repetition median timing, exclusive per backend.

        The contract (pinned by tests): all warmup and timed runs
        execute on the calling thread's connection, back to back, with
        no other ``time_query`` interleaved — so the first measured run
        never pays another worker's page-cache eviction. Concurrent
        ``execute`` calls (the serve path) are *not* excluded; a timed
        benchmark under live load is a different experiment and should
        use a dedicated backend.
        """
        sql = self.dialect.render_query(query)
        connection = self._thread_connection()
        with self._timing_lock:
            with self.tracer.span("backend.query", backend=self.name,
                                  timed=True) as span:
                timing = self._timed_runs(
                    lambda: connection.execute(sql).fetchall(),
                    repeat=repeat, warmup=warmup)
                span.set("seconds", timing.seconds)
                span.set("rows", timing.rows)
        self._metrics.incr("queries_timed")
        return timing

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._conn_lock:
            connections, self._connections = self._connections, []
            self._closed = True
        for connection in connections:
            try:
                connection.close()
            except self._driver_error:  # pragma: no cover - defensive
                pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
