"""Serve-side resilience: admission control, deadlines, retries, the
circuit breaker, and chaos determinism.

The contracts under test (ISSUE 9 acceptance):

* overload sheds deterministically — whether a request is rejected
  depends only on how many are in flight when it arrives;
* a request over its deadline dies with ``RequestTimeout``, never a
  raw error, and hangs injected at ``serve.request`` are caught;
* transient backend faults are retried invisibly; the breaker trips on
  a sustained error rate and recovers on its seeded probe schedule;
* the same seed + the same fault plan produce identical
  shed/retry/breaker counts and byte-identical successful results at
  ``workers=1`` and ``workers=4``, on both bundled datasets, and every
  request that succeeds under chaos returns exactly what the
  fault-free run returned.
"""

import threading

import pytest

from repro.errors import InjectedFault
from repro.experiments import DatasetBundle
from repro.mapping import derive_schema, hybrid_inlining
from repro.resilience import (CLOSED, NULL_PLAN, OPEN, CircuitBreaker,
                              RetryPolicy, install_fault_plan)
from repro.serve import (CircuitOpenError, LoadGenerator, QueryService,
                         RequestTimeout, ServiceError, ServiceOverloaded)
from repro.workload import zipf_mix

SCALE = 60
SEED = 7

#: The chaos plan of the acceptance run: transient execute faults plus
#: occasional hangs long enough to overrun the service deadline below.
#: seed=1 is chosen so the 60-request schedule hits several hangs and
#: the execute-fault sequence never fires more than max_attempts-1
#: times in a row (retries always eventually succeed).
CHAOS_SPEC = ("seed=1;backend.execute:0.1:transient;"
              "serve.request:0.05:hang:0.4")
CHAOS_DEADLINE = 0.2


@pytest.fixture(autouse=True)
def _no_leaked_faults():
    install_fault_plan(NULL_PLAN)
    yield
    install_fault_plan(NULL_PLAN)


@pytest.fixture(scope="module", params=["dblp", "movie"])
def serving_bundle(request):
    make = (DatasetBundle.dblp if request.param == "dblp"
            else DatasetBundle.movie)
    bundle = make(scale=SCALE, seed=SEED)
    schema = derive_schema(hybrid_inlining(bundle.tree))
    workload = bundle.workload_generator(seed=SEED).generate(6)
    return bundle, schema, workload


@pytest.fixture(scope="module")
def dblp_serving():
    bundle = DatasetBundle.dblp(scale=SCALE, seed=SEED)
    schema = derive_schema(hybrid_inlining(bundle.tree))
    workload = bundle.workload_generator(seed=SEED).generate(6)
    return bundle, schema, workload


QUERY = "//inproceedings/title"


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmissionControl:
    def test_shed_past_queue_limit_is_deterministic(self, dblp_serving):
        """With the single worker blocked, exactly ``workers +
        max_queue`` submissions are admitted and the rest shed —
        independent of thread timing, because admitted requests cannot
        finish while the gate is closed."""
        bundle, schema, _ = dblp_serving
        service = QueryService(schema, bundle.docs, workers=1, max_queue=2)
        try:
            gate = threading.Event()
            original = service.backend.execute

            def gated(sql):
                assert gate.wait(timeout=30)
                return original(sql)

            service.backend.execute = gated
            futures, shed = [], 0
            for _ in range(8):
                try:
                    futures.append(service.submit(QUERY))
                except ServiceOverloaded:
                    shed += 1
            assert len(futures) == 3  # 1 executing + 2 queued
            assert shed == 5
            assert service.stats().shed == 5
            gate.set()
            for future in futures:
                assert future.result(timeout=30).rows
        finally:
            service.close()

    def test_unbounded_queue_never_sheds(self, dblp_serving):
        bundle, schema, _ = dblp_serving
        service = QueryService(schema, bundle.docs, workers=2,
                               max_queue=None)
        try:
            futures = [service.submit(QUERY) for _ in range(32)]
            for future in futures:
                future.result(timeout=30)
            assert service.stats().shed == 0
        finally:
            service.close()

    def test_submit_after_close_raises_service_error(self, dblp_serving):
        bundle, schema, _ = dblp_serving
        service = QueryService(schema, bundle.docs, workers=1)
        service.close()
        with pytest.raises(ServiceError):
            service.submit(QUERY)

    def test_pool_shutdown_race_surfaces_service_error(self, dblp_serving):
        """Regression: a close() racing submit() past the _closed check
        used to leak the executor's raw RuntimeError. Forcing the pool
        down without the flag reproduces exactly that interleaving."""
        bundle, schema, _ = dblp_serving
        service = QueryService(schema, bundle.docs, workers=1)
        try:
            service._pool.shutdown(wait=True)
            with pytest.raises(ServiceError, match="closed"):
                service.submit(QUERY)
            assert service.stats().errors == 0
        finally:
            service.close()

    def test_close_drains_in_flight_requests_by_default(self, dblp_serving):
        bundle, schema, _ = dblp_serving
        service = QueryService(schema, bundle.docs, workers=2)
        futures = [service.submit(QUERY) for _ in range(8)]
        service.close()  # drain=True: every admitted request finishes
        assert all(future.result(timeout=1).rows for future in futures)


# ----------------------------------------------------------------------
# Deadlines and retries
# ----------------------------------------------------------------------


class TestDeadlinesAndRetries:
    def test_hang_past_deadline_times_out(self, dblp_serving):
        bundle, schema, _ = dblp_serving
        install_fault_plan("serve.request:1:hang:0.3")
        service = QueryService(schema, bundle.docs, workers=1,
                               deadline=0.05)
        try:
            with pytest.raises(RequestTimeout):
                service.serve(QUERY)
            stats = service.stats()
            assert stats.timeouts == 1 and stats.errors == 1
        finally:
            service.close()

    def test_no_deadline_tolerates_the_hang(self, dblp_serving):
        bundle, schema, _ = dblp_serving
        install_fault_plan("serve.request:1:hang:0.05")
        service = QueryService(schema, bundle.docs, workers=1)
        try:
            assert service.serve(QUERY).rows
            assert service.stats().timeouts == 0
        finally:
            service.close()

    def test_transient_faults_are_retried_invisibly(self, dblp_serving):
        bundle, schema, _ = dblp_serving
        service = QueryService(schema, bundle.docs, workers=1,
                               retry_policy=RetryPolicy(max_attempts=4,
                                                        backoff=0.0))
        try:
            baseline = service.serve(QUERY)
            # seed=8 never fires more than 3 times in a row at this
            # rate, so max_attempts=4 always recovers.
            install_fault_plan("seed=8;backend.execute:0.3:transient")
            results = [service.serve(QUERY) for _ in range(20)]
            assert all(r.rows == baseline.rows for r in results)
            assert sum(r.retries for r in results) > 0
            stats = service.stats()
            assert stats.retries == sum(r.retries for r in results)
            assert stats.errors == 0
        finally:
            service.close()

    def test_exhausted_retries_propagate_the_fault(self, dblp_serving):
        bundle, schema, _ = dblp_serving
        install_fault_plan("backend.execute:1:transient")
        service = QueryService(schema, bundle.docs, workers=1,
                               retry_policy=RetryPolicy(max_attempts=2,
                                                        backoff=0.0))
        try:
            with pytest.raises(InjectedFault):
                service.serve(QUERY)
            stats = service.stats()
            assert stats.retries == 1 and stats.errors == 1
        finally:
            service.close()

    def test_timeouts_are_never_retried(self, dblp_serving):
        """A hang that overruns the deadline must fail immediately with
        RequestTimeout — not burn max_attempts x duration."""
        bundle, schema, _ = dblp_serving
        install_fault_plan("serve.request:1:hang:0.3")
        service = QueryService(schema, bundle.docs, workers=1,
                               deadline=0.05,
                               retry_policy=RetryPolicy(max_attempts=3,
                                                        backoff=0.0))
        try:
            with pytest.raises(RequestTimeout):
                service.serve(QUERY)
            assert service.stats().retries == 0
        finally:
            service.close()


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_at_threshold_and_probe_recovers(self):
        breaker = CircuitBreaker(window=8, min_requests=4,
                                 failure_threshold=0.5, probe_rate=1.0,
                                 seed=1)
        for _ in range(3):
            breaker.record(False)
        assert breaker.state == CLOSED
        breaker.record(False)
        assert breaker.state == OPEN and breaker.trips == 1
        assert breaker.admit() == "probe"  # probe_rate=1: always probes
        breaker.record(False, probe=True)
        assert breaker.state == OPEN and breaker.probe_failures == 1
        assert breaker.admit() == "probe"
        breaker.record(True, probe=True)
        assert breaker.state == CLOSED

    def test_open_breaker_fast_fails_between_probes(self):
        breaker = CircuitBreaker(window=8, min_requests=4,
                                 failure_threshold=0.5, probe_rate=1e-9,
                                 seed=1)
        for _ in range(4):
            breaker.record(False)
        decisions = [breaker.admit() for _ in range(10)]
        assert decisions == ["shed"] * 10
        assert breaker.snapshot()["fast_fails"] == 10

    def test_probe_schedule_is_seed_deterministic(self):
        def run(seed):
            breaker = CircuitBreaker(window=8, min_requests=4,
                                     failure_threshold=0.5,
                                     probe_rate=0.25, seed=seed)
            for _ in range(4):
                breaker.record(False)
            return [breaker.admit() for _ in range(40)]

        assert run(5) == run(5)
        assert run(5) != run(6)
        assert "probe" in run(5) and "shed" in run(5)

    def test_late_results_from_before_the_trip_are_ignored(self):
        breaker = CircuitBreaker(window=8, min_requests=4,
                                 failure_threshold=0.5, probe_rate=0.25,
                                 seed=1)
        for _ in range(4):
            breaker.record(False)
        assert breaker.state == OPEN
        breaker.record(True)  # a straggler admitted before the trip
        assert breaker.state == OPEN and breaker.trips == 1

    def test_service_trips_and_recovers_deterministically(self,
                                                          dblp_serving):
        """A dead backend trips the breaker; once the faults stop, the
        seeded probe schedule closes it again — same request index on
        every run because arrivals are sequential."""
        bundle, schema, _ = dblp_serving
        breaker = CircuitBreaker(window=8, min_requests=4,
                                 failure_threshold=0.5, probe_rate=0.25,
                                 seed=3)
        install_fault_plan("backend.execute:1:fatal")
        service = QueryService(schema, bundle.docs, workers=1,
                               breaker=breaker)
        try:
            outcomes = []
            for _ in range(6):
                try:
                    service.serve(QUERY)
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("fault")
                except CircuitOpenError:
                    outcomes.append("open")
            assert outcomes[:4] == ["fault"] * 4  # window fills, trips
            assert "open" in outcomes or breaker.state == OPEN
            # The backend recovers; probes close the breaker.
            install_fault_plan(NULL_PLAN)
            recovered_at = None
            for i in range(64):
                try:
                    result = service.serve(QUERY)
                    assert result.rows
                    recovered_at = i
                    break
                except CircuitOpenError:
                    continue
            assert recovered_at is not None
            assert breaker.state == CLOSED
            assert breaker.snapshot()["fast_fails"] > 0
        finally:
            service.close()


# ----------------------------------------------------------------------
# Startup cleanup
# ----------------------------------------------------------------------


class TestStartupCleanup:
    def test_failed_startup_removes_the_partial_file(self, dblp_serving,
                                                     tmp_path):
        """Regression: a service dying mid-load used to leave the
        partial database behind, so the retry hit 'table already
        exists'."""
        bundle, schema, _ = dblp_serving
        db = tmp_path / "serve.db"
        install_fault_plan("backend.load.batch:1:fatal:0:2")
        with pytest.raises(InjectedFault):
            QueryService(schema, bundle.docs, workers=1, db_path=str(db),
                         load_batch_size=40)
        assert not db.exists()
        install_fault_plan(NULL_PLAN)
        service = QueryService(schema, bundle.docs, workers=1,
                               db_path=str(db))
        try:
            assert service.serve(QUERY).rows
        finally:
            service.close()

    def test_preexisting_file_survives_a_failed_startup(self, dblp_serving,
                                                        tmp_path):
        """A file the user brought is never deleted, even when startup
        fails against it."""
        bundle, schema, _ = dblp_serving
        db = tmp_path / "prior.db"
        service = QueryService(schema, bundle.docs, workers=1,
                               db_path=str(db))
        service.close()
        assert db.exists()
        before = db.stat().st_size
        with pytest.raises(Exception):
            # The second load hits "table already exists".
            QueryService(schema, bundle.docs, workers=1, db_path=str(db))
        assert db.exists() and db.stat().st_size == before


# ----------------------------------------------------------------------
# Chaos determinism (the acceptance run)
# ----------------------------------------------------------------------


def _chaos_run(schema, docs, workload, workers: int, spec: str | None):
    """One sequential (clients=1) loadgen run; returns (records,
    service stats). Sequential submission makes every fault-site
    counter a pure function of the schedule."""
    if spec is not None:
        install_fault_plan(spec)
    else:
        install_fault_plan(NULL_PLAN)
    service = QueryService(schema, docs, workers=workers,
                           deadline=CHAOS_DEADLINE,
                           retry_policy=RetryPolicy(max_attempts=3,
                                                    backoff=0.0))
    try:
        mix = zipf_mix(workload, skew=1.0)
        generator = LoadGenerator(service, mix, seed=SEED, mode="closed",
                                  clients=1)
        report = generator.run(requests=60)
        return report, service.stats()
    finally:
        service.close()
        install_fault_plan(NULL_PLAN)


def _outcomes(report):
    return [(r.index, r.query_index, r.digest,
             None if r.error is None else r.error.split(":", 1)[0])
            for r in report.records]


class TestChaosDeterminism:
    def test_same_plan_same_counts_across_worker_counts(self,
                                                        serving_bundle):
        bundle, schema, workload = serving_bundle
        first, first_stats = _chaos_run(schema, bundle.docs, workload,
                                        workers=1, spec=CHAOS_SPEC)
        second, second_stats = _chaos_run(schema, bundle.docs, workload,
                                          workers=4, spec=CHAOS_SPEC)
        assert _outcomes(first) == _outcomes(second)
        assert first.results_digest == second.results_digest
        assert first.errors_by_type == second.errors_by_type
        for stats in (first_stats, second_stats):
            assert stats.retries == first_stats.retries
            assert stats.shed == first_stats.shed
            assert stats.timeouts == first_stats.timeouts
            assert stats.breaker == first_stats.breaker
        # The chaos plan actually did something.
        assert first_stats.retries > 0
        assert first.errors > 0

    def test_successful_requests_match_the_fault_free_run(self,
                                                          serving_bundle):
        bundle, schema, workload = serving_bundle
        chaos, _ = _chaos_run(schema, bundle.docs, workload,
                              workers=4, spec=CHAOS_SPEC)
        clean, _ = _chaos_run(schema, bundle.docs, workload,
                              workers=4, spec=None)
        assert clean.errors == 0
        assert chaos.sequence_digest == clean.sequence_digest
        by_index = {r.index: r for r in clean.records}
        checked = 0
        for record in chaos.records:
            if record.error is not None:
                continue
            assert record.digest == by_index[record.index].digest
            assert record.rows == by_index[record.index].rows
            checked += 1
        assert checked > 0


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------


class TestChaosCli:
    def test_loadgen_chaos_flags_and_json(self, tmp_path):
        import json

        from tests.test_serve import run_cli

        json_path = tmp_path / "chaos.json"
        report_path = tmp_path / "chaos.html"
        args = ["loadgen", "--dataset", "dblp", "--scale", "60",
                "--queries", "6", "--seed", "7", "--clients", "1",
                "--requests", "40", "--deadline", "1.0",
                "--max-queue", "64",
                "--faults", "seed=7;backend.execute:0.2:transient",
                "--json", str(json_path), "--report", str(report_path),
                "--verify", "--max-shed-rate", "0.1",
                "--max-error-rate", "0.1"]
        code, out = run_cli(args)
        assert code == 0, out
        assert "verify OK" in out
        payload = json.loads(json_path.read_text())
        assert payload["resilience"]["retries"] > 0
        assert payload["errors"] == 0
        assert "results_digest" in payload
        html = report_path.read_text()
        assert "Resilience" in html and "breaker state" in html

    def test_loadgen_gate_failure_exits_nonzero(self, tmp_path):
        from tests.test_serve import run_cli

        args = ["loadgen", "--dataset", "dblp", "--scale", "60",
                "--queries", "6", "--seed", "7", "--clients", "1",
                "--requests", "30",
                "--faults", "backend.execute:1:fatal",
                "--max-error-rate", "0.05"]
        code, out = run_cli(args)
        assert code == 1
        assert "SMOKE FAIL" in out and "error rate" in out

    def test_serve_accepts_faults_flag(self):
        from tests.test_serve import run_cli

        code, out = run_cli(
            ["serve", "--dataset", "dblp", "--scale", "60",
             "--queries", "4", "--seed", "7",
             "--faults", "seed=1;backend.execute:0.2:transient",
             "--deadline", "2.0", "--xpath", QUERY])
        assert code == 0
        assert "rows in" in out
