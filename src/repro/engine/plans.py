"""Physical plan operators.

Operators produce *environments* (dict: alias -> current row tuple), so
compiled expressions can reference any table in scope; a ``Project`` at
the top of each SELECT branch flattens environments into output tuples.
``UnionAll`` and ``Sort`` then work on tuples.

Each operator charges the runtime's :class:`~repro.engine.cost.CostCounter`
for the logical I/O and CPU work it performs, using the same constants
the optimizer estimates with. ``est_rows``/``est_cost`` are filled in by
the optimizer for EXPLAIN output and advisor costing.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator

from ..errors import ExecutionError
from .btree import encode_key
from .cost import CostCounter
from .expressions import Environment
from .index import Index
from .schema import Catalog, Table


class Runtime:
    """Execution context: catalog access plus cost accounting."""

    def __init__(self, catalog: Catalog, counter: CostCounter):
        self.catalog = catalog
        self.counter = counter

    def table(self, name: str) -> Table:
        table = self.catalog.table(name)
        if table.rows is None:
            raise ExecutionError(
                f"table {name!r} is stats-only; cannot execute against it")
        return table


class PlanNode:
    """Base class for all operators."""

    est_rows: float = 0.0
    est_cost: float = 0.0

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        raise NotImplementedError

    def label(self) -> str:
        return type(self).__name__

    def children(self) -> list["PlanNode"]:
        return []

    def explain(self, depth: int = 0) -> str:
        lines = [
            "  " * depth
            + f"{self.label()}  (rows={self.est_rows:.0f} cost={self.est_cost:.1f})"
        ]
        for child in self.children():
            lines.append(child.explain(depth + 1))
        return "\n".join(lines)

    def objects_used(self) -> set[str]:
        """Names of relations/indexes/views this plan touches.

        This is the paper's ``I(Q, M)`` — the object set used by the
        query plan — which the cost-derivation optimization compares
        across mappings (Section 4.8).
        """
        out: set[str] = set()
        for child in self.children():
            out |= child.objects_used()
        return out


# ----------------------------------------------------------------------
# Scans
# ----------------------------------------------------------------------


class SeqScan(PlanNode):
    """Full scan of a base table or materialized view."""

    def __init__(self, table_name: str, alias: str,
                 predicate: Callable[[Environment], bool] | None = None):
        self.table_name = table_name
        self.alias = alias
        self.predicate = predicate

    def label(self) -> str:
        return f"SeqScan({self.table_name} AS {self.alias})"

    def objects_used(self) -> set[str]:
        return {self.table_name}

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        table = runtime.table(self.table_name)
        runtime.counter.charge_seq_pages(table.page_count)
        predicate = self.predicate
        for row in table.rows or ():
            runtime.counter.charge_tuples(1)
            env = {self.alias: row}
            if predicate is None or predicate(env):
                yield env


class IndexSeek(PlanNode):
    """B+-tree lookup: equality prefix plus optional range on next column.

    ``eq_exprs`` produce the leading key values from the environment (so
    the same operator serves constant seeks and index-nested-loop inner
    sides). ``covering`` controls whether base-table row fetches are
    charged.
    """

    def __init__(self, index: Index, table_name: str, alias: str,
                 eq_exprs: list[Callable[[Environment], object]],
                 range_bounds: tuple | None = None,
                 residual: Callable[[Environment], bool] | None = None,
                 covering: bool = False):
        self.index = index
        self.table_name = table_name
        self.alias = alias
        self.eq_exprs = eq_exprs
        # range_bounds: (lo, lo_inclusive, hi, hi_inclusive) raw scalars or None.
        self.range_bounds = range_bounds
        self.residual = residual
        self.covering = covering
        self.est_leaf_pages: float = 1.0
        self.est_fetches: float = 0.0

    def label(self) -> str:
        kind = "covering " if self.covering else ""
        return (f"IndexSeek({kind}{self.index.name} ON "
                f"{self.table_name} AS {self.alias})")

    def objects_used(self) -> set[str]:
        out = {self.index.name}
        if not self.covering:
            out.add(self.table_name)
        return out

    def execute(self, runtime: Runtime,
                outer_env: Environment | None = None) -> Iterator[Environment]:
        table = runtime.table(self.table_name)
        tree = self.index.tree
        env = outer_env or {}
        eq_values = tuple(expr(env) for expr in self.eq_exprs)
        if any(v is None for v in eq_values):
            return  # NULL never matches an equality seek
        if self.range_bounds is not None:
            lo, lo_inc, hi, hi_inc = self.range_bounds
            lo_key = eq_values + ((lo,) if lo is not None else ())
            hi_key = eq_values + ((hi,) if hi is not None else ())
            if lo is None:
                lo_key = eq_values if eq_values else None
                lo_inc = True
            if hi is None:
                hi_key = eq_values if eq_values else None
                hi_inc = True
            matches = tree.range_scan(lo_key, hi_key, lo_inc, hi_inc)
        elif eq_values:
            matches = tree.range_scan(eq_values, eq_values)
        else:
            matches = tree.scan_all()
        # Charge the tree descent plus leaf pages proportional to matches.
        runtime.counter.charge_random_pages(self.index.height(table))
        entry_width = self.index.entry_width(table)
        from .types import PAGE_FILL_FACTOR, PAGE_SIZE
        entries_per_page = max(1, int(PAGE_SIZE * PAGE_FILL_FACTOR // entry_width))
        matched = 0
        for _, position in matches:
            matched += 1
            runtime.counter.charge_tuples(1)
            if not self.covering:
                runtime.counter.charge_random_pages(1)
            row = table.rows[position]
            out_env = dict(env)
            out_env[self.alias] = row
            if self.residual is None or self.residual(out_env):
                yield out_env
        runtime.counter.charge_seq_pages(matched / entries_per_page)


# ----------------------------------------------------------------------
# Joins
# ----------------------------------------------------------------------


class NestedLoopJoin(PlanNode):
    """Block nested-loop join: the inner side is materialized once."""

    def __init__(self, outer: PlanNode, inner: PlanNode,
                 predicate: Callable[[Environment], bool] | None = None):
        self.outer = outer
        self.inner = inner
        self.predicate = predicate

    def label(self) -> str:
        return "NestedLoopJoin"

    def children(self) -> list[PlanNode]:
        return [self.outer, self.inner]

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        inner_rows = list(self.inner.execute(runtime))
        predicate = self.predicate
        for outer_env in self.outer.execute(runtime):
            for inner_env in inner_rows:
                runtime.counter.charge_operations(1)
                merged = dict(outer_env)
                merged.update(inner_env)
                if predicate is None or predicate(merged):
                    yield merged


class IndexNestedLoopJoin(PlanNode):
    """For each outer environment, probe the inner index seek."""

    def __init__(self, outer: PlanNode, inner_seek: IndexSeek):
        self.outer = outer
        self.inner_seek = inner_seek

    def label(self) -> str:
        return f"IndexNestedLoopJoin(inner={self.inner_seek.index.name})"

    def children(self) -> list[PlanNode]:
        return [self.outer, self.inner_seek]

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        for outer_env in self.outer.execute(runtime):
            yield from self.inner_seek.execute(runtime, outer_env)


class HashJoin(PlanNode):
    """Classic hash join on equi-join keys."""

    def __init__(self, build: PlanNode, probe: PlanNode,
                 build_keys: list[Callable[[Environment], object]],
                 probe_keys: list[Callable[[Environment], object]],
                 residual: Callable[[Environment], bool] | None = None):
        self.build = build
        self.probe = probe
        self.build_keys = build_keys
        self.probe_keys = probe_keys
        self.residual = residual

    def label(self) -> str:
        return "HashJoin"

    def children(self) -> list[PlanNode]:
        return [self.build, self.probe]

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        table: dict[tuple, list[Environment]] = {}
        for env in self.build.execute(runtime):
            runtime.counter.charge_hash(1)
            key = tuple(k(env) for k in self.build_keys)
            if any(v is None for v in key):
                continue
            table.setdefault(key, []).append(env)
        residual = self.residual
        for env in self.probe.execute(runtime):
            runtime.counter.charge_hash(1)
            key = tuple(k(env) for k in self.probe_keys)
            if any(v is None for v in key):
                continue
            for build_env in table.get(key, ()):
                merged = dict(build_env)
                merged.update(env)
                if residual is None or residual(merged):
                    yield merged


class SemiJoinExists(PlanNode):
    """EXISTS: pass outer environments with at least one inner match.

    The inner side is either an :class:`IndexSeek` probed per outer row,
    or an arbitrary plan whose join keys are materialized into a set.
    """

    def __init__(self, outer: PlanNode, inner: PlanNode,
                 outer_keys: list[Callable[[Environment], object]] | None = None,
                 inner_keys: list[Callable[[Environment], object]] | None = None):
        self.outer = outer
        self.inner = inner
        self.outer_keys = outer_keys
        self.inner_keys = inner_keys

    def label(self) -> str:
        return "SemiJoinExists"

    def children(self) -> list[PlanNode]:
        return [self.outer, self.inner]

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        if isinstance(self.inner, IndexSeek):
            for env in self.outer.execute(runtime):
                if next(self.inner.execute(runtime, env), None) is not None:
                    yield env
            return
        assert self.outer_keys is not None and self.inner_keys is not None
        keys: set[tuple] = set()
        for env in self.inner.execute(runtime):
            runtime.counter.charge_hash(1)
            keys.add(tuple(k(env) for k in self.inner_keys))
        for env in self.outer.execute(runtime):
            runtime.counter.charge_hash(1)
            if tuple(k(env) for k in self.outer_keys) in keys:
                yield env


# ----------------------------------------------------------------------
# Shaping
# ----------------------------------------------------------------------


class Project(PlanNode):
    """Turn environments into flat output tuples."""

    def __init__(self, child: PlanNode,
                 exprs: list[Callable[[Environment], object]]):
        self.child = child
        self.exprs = exprs

    def label(self) -> str:
        return f"Project({len(self.exprs)} cols)"

    def children(self) -> list[PlanNode]:
        return [self.child]

    def execute_tuples(self, runtime: Runtime) -> Iterator[tuple]:
        exprs = self.exprs
        for env in self.child.execute(runtime):
            runtime.counter.charge_tuples(1)
            yield tuple(expr(env) for expr in exprs)

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        raise ExecutionError("Project produces tuples; use execute_tuples")

    def objects_used(self) -> set[str]:
        return self.child.objects_used()


class UnionAllPlan(PlanNode):
    """Concatenate the tuple streams of several Project branches."""

    def __init__(self, branches: list[Project]):
        self.branches = branches

    def label(self) -> str:
        return f"UnionAll({len(self.branches)} branches)"

    def children(self) -> list[PlanNode]:
        return list(self.branches)

    def execute_tuples(self, runtime: Runtime) -> Iterator[tuple]:
        for branch in self.branches:
            yield from branch.execute_tuples(runtime)

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        raise ExecutionError("UnionAll produces tuples; use execute_tuples")


class SortPlan(PlanNode):
    """Sort tuples by 1-based output positions (NULLs first)."""

    def __init__(self, child: Project | UnionAllPlan, positions: tuple[int, ...]):
        self.child = child
        self.positions = positions

    def label(self) -> str:
        return f"Sort(by {list(self.positions)})"

    def children(self) -> list[PlanNode]:
        return [self.child]

    def execute_tuples(self, runtime: Runtime) -> Iterator[tuple]:
        rows = list(self.child.execute_tuples(runtime))
        if len(rows) > 1:
            runtime.counter.charge_sort(len(rows) * math.log2(len(rows)))
        rows.sort(key=lambda row: encode_key(
            tuple(row[p - 1] for p in self.positions)))
        yield from rows

    def execute(self, runtime: Runtime) -> Iterator[Environment]:
        raise ExecutionError("Sort produces tuples; use execute_tuples")

    def objects_used(self) -> set[str]:
        return self.child.objects_used()
