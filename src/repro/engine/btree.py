"""A from-scratch B+-tree used by all indexes.

* multi-column (tuple) keys with NULLs ordered first,
* duplicate keys allowed (each entry carries its own payload),
* point lookup, range scan, and full ordered scan,
* bulk loading from sorted entries (used when building an index),
* incremental insert (used by tests and future update support).

Payloads are opaque to the tree; indexes store row positions or whole
covered tuples.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator

DEFAULT_ORDER = 64

# ----------------------------------------------------------------------
# Key encoding: make heterogenous/None-containing tuples totally ordered.
# ----------------------------------------------------------------------


def encode_key(values: tuple) -> tuple:
    """Map a raw key tuple to a totally ordered form (NULLs first)."""
    out = []
    for v in values:
        if v is None:
            out.append((0, ""))
        elif isinstance(v, bool):
            out.append((1, int(v)))
        elif isinstance(v, (int, float)):
            out.append((1, v))
        else:
            out.append((2, str(v)))
    return tuple(out)


def _first_key(node: "_Node") -> tuple:
    """Smallest key under a node (separator for bulk-loaded internals)."""
    while not node.leaf:
        node = node.children[0]  # type: ignore[attr-defined]
    return node.keys[0]


class _Node:
    __slots__ = ("keys", "leaf")

    def __init__(self, leaf: bool):
        self.keys: list[tuple] = []
        self.leaf = leaf


class _Leaf(_Node):
    __slots__ = ("payloads", "next")

    def __init__(self):
        super().__init__(leaf=True)
        self.payloads: list[Any] = []
        self.next: "_Leaf | None" = None


class _Internal(_Node):
    __slots__ = ("children",)

    def __init__(self):
        super().__init__(leaf=False)
        self.children: list[_Node] = []


class BPlusTree:
    """B+-tree over encoded tuple keys."""

    def __init__(self, order: int = DEFAULT_ORDER):
        if order < 4:
            raise ValueError("order must be at least 4")
        self.order = order
        self.root: _Node = _Leaf()
        self.height = 1
        self.entry_count = 0
        self.node_count = 1

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(cls, entries: list[tuple[tuple, Any]],
                  order: int = DEFAULT_ORDER) -> "BPlusTree":
        """Build a tree from (raw_key, payload) pairs (need not be sorted)."""
        tree = cls(order)
        encoded = sorted(
            ((encode_key(key), payload) for key, payload in entries),
            key=lambda pair: pair[0])
        if not encoded:
            return tree
        # Fill leaves.
        per_leaf = max(2, int(order * 0.7))
        leaves: list[_Leaf] = []
        for start in range(0, len(encoded), per_leaf):
            leaf = _Leaf()
            chunk = encoded[start:start + per_leaf]
            leaf.keys = [k for k, _ in chunk]
            leaf.payloads = [p for _, p in chunk]
            if leaves:
                leaves[-1].next = leaf
            leaves.append(leaf)
        tree.entry_count = len(encoded)
        tree.node_count = len(leaves)
        # Build internal levels bottom-up.
        level: list[_Node] = list(leaves)
        height = 1
        while len(level) > 1:
            parents: list[_Node] = []
            per_node = max(2, int(order * 0.7))
            for start in range(0, len(level), per_node):
                node = _Internal()
                group = level[start:start + per_node]
                node.children = group
                node.keys = [_first_key(child) for child in group[1:]]
                parents.append(node)
            tree.node_count += len(parents)
            level = parents
            height += 1
        tree.root = level[0]
        tree.height = height
        return tree

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------
    def insert(self, key: tuple, payload: Any) -> None:
        """Insert one entry (duplicates allowed)."""
        encoded = encode_key(key)
        split = self._insert(self.root, encoded, payload)
        if split is not None:
            sep, right = split
            new_root = _Internal()
            new_root.keys = [sep]
            new_root.children = [self.root, right]
            self.root = new_root
            self.height += 1
            self.node_count += 1
        self.entry_count += 1

    def _insert(self, node: _Node, key: tuple, payload: Any):
        if node.leaf:
            assert isinstance(node, _Leaf)
            pos = bisect_right(node.keys, key)
            node.keys.insert(pos, key)
            node.payloads.insert(pos, payload)
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        assert isinstance(node, _Internal)
        pos = bisect_right(node.keys, key)
        split = self._insert(node.children[pos], key, payload)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(pos, sep)
        node.children.insert(pos + 1, right)
        if len(node.children) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, leaf: _Leaf):
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.payloads = leaf.payloads[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.payloads = leaf.payloads[:mid]
        right.next = leaf.next
        leaf.next = right
        self.node_count += 1
        return right.keys[0], right

    def _split_internal(self, node: _Internal):
        mid = len(node.children) // 2
        right = _Internal()
        sep = node.keys[mid - 1]
        right.keys = node.keys[mid:]
        right.children = node.children[mid:]
        node.keys = node.keys[:mid - 1]
        node.children = node.children[:mid]
        self.node_count += 1
        return sep, right

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _find_leaf(self, key: tuple) -> _Leaf:
        """Leftmost leaf that can contain ``key``.

        Uses ``bisect_left`` so that duplicate keys spanning several
        leaves are found from their first occurrence (separators equal
        to the key route left).
        """
        node = self.root
        while not node.leaf:
            assert isinstance(node, _Internal)
            pos = bisect_left(node.keys, key)
            node = node.children[pos]
        assert isinstance(node, _Leaf)
        return node

    def search(self, key: tuple) -> list[Any]:
        """All payloads with key exactly equal to ``key``."""
        return [p for _, p in self.range_scan(key, key)]

    def range_scan(self, lo: tuple | None, hi: tuple | None,
                   lo_inclusive: bool = True,
                   hi_inclusive: bool = True) -> Iterator[tuple[tuple, Any]]:
        """Yield (encoded_key, payload) for keys in [lo, hi].

        ``lo``/``hi`` are raw key tuples; ``None`` means unbounded. A
        bound tuple may be a *prefix* of the full key: prefix semantics
        are applied (all keys starting with the prefix are inside).
        """
        lo_enc = encode_key(lo) if lo is not None else None
        hi_enc = encode_key(hi) if hi is not None else None
        if lo_enc is not None:
            leaf = self._find_leaf(lo_enc)
            start = bisect_left(leaf.keys, lo_enc)
        else:
            leaf = self._leftmost_leaf()
            start = 0
        index = start
        while leaf is not None:
            while index < len(leaf.keys):
                key = leaf.keys[index]
                if lo_enc is not None and not lo_inclusive and key[:len(lo_enc)] == lo_enc:
                    index += 1
                    continue
                if hi_enc is not None:
                    prefix = key[:len(hi_enc)]
                    if prefix > hi_enc:
                        return
                    if not hi_inclusive and prefix == hi_enc:
                        return
                yield key, leaf.payloads[index]
                index += 1
            leaf = leaf.next
            index = 0

    def scan_all(self) -> Iterator[tuple[tuple, Any]]:
        """All entries in key order."""
        return self.range_scan(None, None)

    def _leftmost_leaf(self) -> _Leaf:
        node = self.root
        while not node.leaf:
            assert isinstance(node, _Internal)
            node = node.children[0]
        assert isinstance(node, _Leaf)
        return node

    def __len__(self) -> int:
        return self.entry_count
