"""Update-workload support (extension; the paper's stated future work).

An insertion load at an element path fans out to relational row-insert
rates per table: inserting one ``inproceedings`` element adds one
``inproc`` row and (on average) one row per author/cite occurrence to
their tables — ratios obtained from the collected statistics, exactly
like the row counts derived for query costing.

The tuning advisor charges each candidate structure a maintenance
penalty proportional to the insert rate of its table(s), so update-heavy
workloads receive leaner physical designs and mappings that concentrate
writes (e.g. repetition split keeps most author inserts as in-row column
writes) gain an edge.
"""

from __future__ import annotations

from collections import defaultdict

from ..mapping import CollectedStats, MappedSchema, derive_table_stats
from ..translate import resolve_steps
from ..workload import Workload
from ..xsd import SchemaNode, SchemaTree


def _in_subtree(tree: SchemaTree, node_id: int, root: SchemaNode) -> bool:
    current = tree.node(node_id)
    while current is not None:
        if current.node_id == root.node_id:
            return True
        current = tree.parent(current)
    return False


def update_load_for(schema: MappedSchema, collected: CollectedStats,
                    workload: Workload) -> dict[str, float]:
    """Expected row inserts per table per unit of workload time."""
    if not workload.updates:
        return {}
    tree = schema.tree
    derived = derive_table_stats(schema, collected)
    load: dict[str, float] = defaultdict(float)
    for update in workload.updates:
        targets = resolve_steps(tree, update.target.steps)
        for target in targets:
            target_count = max(collected.instances(target.node_id), 1)
            for group in schema.groups.values():
                total_owner_instances = sum(
                    max(collected.instances(owner), 1)
                    for owner in group.owner_ids)
                inside = sum(
                    max(collected.instances(owner), 1)
                    for owner in group.owner_ids
                    if _in_subtree(tree, owner, target))
                if inside == 0:
                    continue
                fraction = inside / max(total_owner_instances, 1)
                for partition in group.partitions:
                    rows = derived[partition.table_name].row_count
                    per_insert = rows * fraction / target_count
                    if per_insert > 0:
                        load[partition.table_name] += \
                            update.weight * per_insert
    return dict(load)
