"""Movie scenario: union distribution and candidate merging.

Walks through the paper's Section 3.2/4.7 material on the Movie schema
(Fig. 1b):

* distributing the ``(box_office | seasons)`` choice splits ``movie``
  into MovieShow/TVShow-style partitions, and queries touching only one
  branch read only that partition;
* two single-query implicit-union candidates (on ``year`` and on
  ``avg_rating``) are *merged* into the paper's ``c3`` — partition by
  "has year or avg_rating" — which benefits both queries at once.

Run with::

    python examples/movie_union_distribution.py
"""

from repro import (Database, UnionDistribution, Workload, derive_schema,
                   hybrid_inlining, load_documents, render, translate_xpath)
from repro.datasets import generate_movies, movie_schema
from repro.mapping import collect_statistics
from repro.search import CandidateMerger
from repro.xsd import NodeKind


def main() -> None:
    tree = movie_schema()
    docs = generate_movies(2000, seed=3)
    stats = collect_statistics(tree, docs)
    base = hybrid_inlining(tree)

    # ------------------------------------------------------------------
    # 1. Explicit union distribution on (box_office | seasons).
    # ------------------------------------------------------------------
    choice = tree.nodes_of_kind(NodeKind.CHOICE)[0]
    distributed = base.with_distribution(
        UnionDistribution(choice_id=choice.node_id))
    schema = derive_schema(distributed)
    print("schema after union distribution on (box_office | seasons):")
    print(schema.describe(), "\n")

    db = Database("movies")
    load_documents(db, schema, docs)
    query = "//movie/box_office"
    sql = translate_xpath(schema, query)
    print(f"XPath: {query}")
    print("SQL (only the movie partition is read):")
    print(render(sql, indent="  "))
    print(f"tables referenced: {sorted(sql.referenced_tables)}\n")

    # Compare with the undistributed mapping.
    base_schema = derive_schema(base)
    base_db = Database("movies-base")
    load_documents(base_db, base_schema, docs)
    base_cost = base_db.execute(translate_xpath(base_schema, query)).cost
    dist_cost = db.execute(sql).cost
    print(f"executed cost: {base_cost:.1f} (one movie table) vs "
          f"{dist_cost:.1f} (distributed) — "
          f"{base_cost / dist_cost:.2f}x cheaper\n")

    # ------------------------------------------------------------------
    # 2. Candidate merging (Section 4.7): Q1=//movie/year,
    #    Q2=//movie/avg_rating.
    # ------------------------------------------------------------------
    workload = Workload.from_strings(
        "q1q2", ["//movie/year", "//movie/avg_rating"])
    year_opt = tree.parent(tree.find_tag_by_path(("movies", "movie", "year")))
    rating_opt = tree.parent(
        tree.find_tag_by_path(("movies", "movie", "avg_rating")))
    c1 = UnionDistribution(optional_ids=frozenset({year_opt.node_id}))
    c2 = UnionDistribution(optional_ids=frozenset({rating_opt.node_id}))

    merger = CandidateMerger(base, stats, workload)
    print("per-query benefits of the unmerged candidates:")
    for name, candidate in (("c1 (year)", c1), ("c2 (avg_rating)", c2)):
        benefits = [merger.query_benefit(candidate, wq.query)
                    for wq in workload]
        print(f"  {name}: Q1 saves {benefits[0]:.0%}, Q2 saves "
              f"{benefits[1]:.0%}")
    merged = merger.merge_greedy([c1, c2])
    assert len(merged) == 1, "the two candidates merge into one"
    c3 = merged[0]
    benefits = [merger.query_benefit(c3, wq.query) for wq in workload]
    print(f"  c3 (merged): Q1 saves {benefits[0]:.0%}, Q2 saves "
          f"{benefits[1]:.0%}  <- benefits both (the paper's point)\n")

    merged_schema = derive_schema(base.with_distribution(c3))
    print("schema under the merged candidate:")
    print(merged_schema.describe())


if __name__ == "__main__":
    main()
