"""XML-to-relational mapping layer: mappings, transformations, shredding,
schema derivation, and statistics derivation."""

from .mapper import derive_schema
from .model import Mapping, UnionDistribution
from .presets import fully_inlined, fully_split, hybrid_inlining, shared_inlining
from .relschema import (BranchCondition, ColumnSpec, LeafStorage,
                        MappedSchema, PartitionSpec, PresenceCondition,
                        TableGroup)
from .shredder import (DEFAULT_BATCH_SIZE, Shredder, load_documents,
                       shred_typed_batches, shred_typed_rows)
from .stats import (CollectedStats, StatsDeriver, collect_statistics,
                    derive_table_stats)
from .transforms import (Associativity, Commutativity, Inline, Outline,
                         RepetitionMerge, RepetitionSplit, Transformation,
                         TypeMerge, TypeSplit, UnionDistribute,
                         UnionFactorize, count_transformations,
                         enumerate_transformations)

__all__ = [
    "Mapping",
    "UnionDistribution",
    "derive_schema",
    "MappedSchema",
    "TableGroup",
    "PartitionSpec",
    "ColumnSpec",
    "LeafStorage",
    "BranchCondition",
    "PresenceCondition",
    "hybrid_inlining",
    "fully_inlined",
    "shared_inlining",
    "fully_split",
    "Shredder",
    "DEFAULT_BATCH_SIZE",
    "load_documents",
    "shred_typed_batches",
    "shred_typed_rows",
    "collect_statistics",
    "CollectedStats",
    "StatsDeriver",
    "derive_table_stats",
    "Transformation",
    "Outline",
    "Inline",
    "TypeSplit",
    "TypeMerge",
    "UnionDistribute",
    "UnionFactorize",
    "RepetitionSplit",
    "RepetitionMerge",
    "Associativity",
    "Commutativity",
    "enumerate_transformations",
    "count_transformations",
]
