"""Candidate generation for the tuning advisor.

Per query we propose (in the spirit of [Chaudhuri & Narasayya, VLDB'97]
and [Agrawal et al., VLDB'00]):

* single-column indexes on every sargable (column op literal) predicate,
* multi-column indexes: equality columns first, then one range column,
* covering variants: the above plus INCLUDE of all other referenced
  columns of that table,
* foreign-key join indexes (on the join column of the inner side), with
  and without covering includes,
* two-table join views materializing exactly the query's join with its
  referenced columns.

Candidates are deduplicated by signature across the workload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..engine import Database, Index, JoinViewDefinition
from ..engine.expressions import referenced_columns
from ..sqlast import (And, BoolExpr, ColumnRef, Comparison, ComparisonOp,
                      Exists, IsNull, Literal, Or, Query, Select)
from .config import ViewCandidate, make_view_candidate

_MAX_KEY_COLUMNS = 3


@dataclass
class QueryShape:
    """Per-alias breakdown of one SELECT used for candidate generation."""

    alias_tables: dict[str, str]
    eq_columns: dict[str, list[str]] = field(default_factory=dict)
    range_columns: dict[str, list[str]] = field(default_factory=dict)
    referenced: dict[str, set[str]] = field(default_factory=dict)
    join_edges: list[tuple[str, str, str, str]] = field(default_factory=list)
    exists_tables: list[tuple[str, str, list[str]]] = field(default_factory=list)


def _flatten(where: BoolExpr | None) -> list[BoolExpr]:
    if where is None:
        return []
    if isinstance(where, And):
        out: list[BoolExpr] = []
        for item in where.items:
            out.extend(_flatten(item))
        return out
    return [where]


def analyze_select(select: Select, db: Database) -> QueryShape:
    """Classify a SELECT's predicates for candidate generation."""
    alias_tables = {t.name: t.table for t in select.from_tables}

    def owner(ref: ColumnRef) -> str | None:
        if ref.table:
            return ref.table if ref.table in alias_tables else None
        owners = [a for a, tn in alias_tables.items()
                  if db.catalog.table(tn).has_column(ref.column)]
        return owners[0] if len(owners) == 1 else None

    shape = QueryShape(alias_tables=alias_tables)
    for alias in alias_tables:
        shape.eq_columns[alias] = []
        shape.range_columns[alias] = []
        shape.referenced[alias] = set()

    for item in select.items:
        for ref in referenced_columns(item.expr):
            alias = owner(ref)
            if alias is not None:
                shape.referenced[alias].add(ref.column)

    def record_filter(expr: BoolExpr) -> None:
        if isinstance(expr, Comparison) and isinstance(expr.left, ColumnRef) \
                and isinstance(expr.right, Literal):
            alias = owner(expr.left)
            if alias is None:
                return
            shape.referenced[alias].add(expr.left.column)
            target = (shape.eq_columns if expr.op == ComparisonOp.EQ
                      else shape.range_columns)
            if expr.left.column not in target[alias]:
                target[alias].append(expr.left.column)
        elif isinstance(expr, IsNull):
            alias = owner(expr.operand)
            if alias is not None:
                shape.referenced[alias].add(expr.operand.column)
        elif isinstance(expr, (And, Or)):
            for item in expr.items:
                record_filter(item)
        elif isinstance(expr, Exists):
            _record_exists(expr, shape, alias_tables)

    for conjunct in _flatten(select.where):
        if isinstance(conjunct, Comparison) and \
                isinstance(conjunct.left, ColumnRef) and \
                isinstance(conjunct.right, ColumnRef):
            la, ra = owner(conjunct.left), owner(conjunct.right)
            if la and ra and la != ra and conjunct.op == ComparisonOp.EQ:
                shape.join_edges.append(
                    (la, conjunct.left.column, ra, conjunct.right.column))
                shape.referenced[la].add(conjunct.left.column)
                shape.referenced[ra].add(conjunct.right.column)
                continue
        record_filter(conjunct)
    return shape


def _record_exists(exists: Exists, shape: QueryShape,
                   outer_aliases: dict[str, str]) -> None:
    sub = exists.subquery
    if len(sub.from_tables) != 1:
        return
    inner = sub.from_tables[0]
    corr_col = None
    eq_cols: list[str] = []
    for conjunct in _flatten(sub.where):
        if isinstance(conjunct, Comparison) and \
                isinstance(conjunct.left, ColumnRef) and \
                isinstance(conjunct.right, ColumnRef):
            if conjunct.left.table == inner.name:
                corr_col = conjunct.left.column
            elif conjunct.right.table == inner.name:
                corr_col = conjunct.right.column
        elif isinstance(conjunct, Comparison) and \
                isinstance(conjunct.left, ColumnRef) and \
                isinstance(conjunct.right, Literal) and \
                conjunct.op == ComparisonOp.EQ:
            eq_cols.append(conjunct.left.column)
    if corr_col is not None:
        shape.exists_tables.append((inner.table, corr_col, eq_cols))


class CandidateGenerator:
    """Produces deduplicated index and view candidates for a workload."""

    def __init__(self, db: Database):
        self.db = db
        self._seen: set[tuple] = set()
        self._view_seen: set[tuple] = set()
        self._counter = itertools.count()

    def _index(self, table: str, keys: tuple[str, ...],
               included: tuple[str, ...] = ()) -> Index | None:
        included = tuple(sorted(set(included) - set(keys)))
        signature = (table, keys, included)
        if signature in self._seen:
            return None
        table_obj = self.db.catalog.table(table)
        if table_obj.primary_key in included:
            included = tuple(c for c in included if c != table_obj.primary_key)
            signature = (table, keys, included)
            if signature in self._seen:
                return None
        self._seen.add(signature)
        return Index(
            name=f"cand_ix_{next(self._counter)}",
            table_name=table,
            key_columns=keys,
            included_columns=included,
            hypothetical=True,
        )

    def for_query(self, query: Query) -> tuple[list[Index], list[ViewCandidate]]:
        indexes: list[Index] = []
        views: list[ViewCandidate] = []
        for select in query.selects:
            shape = analyze_select(select, self.db)
            indexes.extend(self._indexes_for_shape(shape))
            views.extend(self._views_for_shape(shape))
        return indexes, views

    # ------------------------------------------------------------------
    def _indexes_for_shape(self, shape: QueryShape) -> list[Index]:
        out: list[Index] = []
        for alias, table in shape.alias_tables.items():
            eq = shape.eq_columns[alias][:_MAX_KEY_COLUMNS]
            ranges = shape.range_columns[alias]
            referenced = shape.referenced[alias]
            keys_variants: list[tuple[str, ...]] = []
            if eq:
                keys_variants.append(tuple(eq))
            if ranges:
                keys_variants.append(tuple(eq) + (ranges[0],))
                if not eq:
                    keys_variants.append((ranges[0],))
            join_cols = [lc if la == alias else rc
                         for la, lc, ra, rc in shape.join_edges
                         if alias in (la, ra)]
            for join_col in join_cols:
                keys_variants.append((join_col,))
                if eq:
                    keys_variants.append((join_col,) + tuple(eq))
            for keys in keys_variants:
                plain = self._index(table, keys)
                if plain is not None:
                    out.append(plain)
                covering = self._index(table, keys,
                                       tuple(referenced - set(keys)))
                if covering is not None:
                    out.append(covering)
        for table, corr_col, eq_cols in shape.exists_tables:
            keys = (corr_col,) + tuple(eq_cols[:1])
            probe = self._index(table, keys)
            if probe is not None:
                out.append(probe)
        return out

    def _views_for_shape(self, shape: QueryShape) -> list[ViewCandidate]:
        out: list[ViewCandidate] = []
        for la, lc, ra, rc in shape.join_edges:
            ta, tb = shape.alias_tables[la], shape.alias_tables[ra]
            # Orient: child carries the FK (the non-ID side of the join).
            if lc != "ID" and rc == "ID":
                child_alias, child_table, fk = la, ta, lc
                parent_alias, parent_table = ra, tb
            elif rc != "ID" and lc == "ID":
                child_alias, child_table, fk = ra, tb, rc
                parent_alias, parent_table = la, ta
            else:
                continue
            columns: list[tuple[str, tuple[str, str]]] = []
            used_names: set[str] = set()
            for alias, table in ((parent_alias, parent_table),
                                 (child_alias, child_table)):
                for column in sorted(shape.referenced[alias]):
                    name = column if column not in used_names else \
                        f"{table}_{column}"
                    used_names.add(name)
                    columns.append((name, (table, column)))
            definition = JoinViewDefinition(
                parent_table=parent_table, child_table=child_table,
                child_fk_column=fk, columns=tuple(columns))
            signature = (parent_table, child_table, fk,
                         tuple(sorted(c for c, _ in columns)))
            if signature in self._view_seen:
                continue
            self._view_seen.add(signature)
            name = f"cand_view_{next(self._counter)}"
            out.append(make_view_candidate(name, definition, self.db))
        return out
