"""Per-component metric registries.

A :class:`MetricRegistry` is a named bag of monotonically increasing
counters — cheap enough to increment on hot paths (``database``,
``advisor``, ``evaluator`` components), cheap to snapshot, and
deterministic to render (counters sorted by name).
"""

from __future__ import annotations

__all__ = ["MetricRegistry", "NullMetricRegistry", "NULL_METRICS"]


class MetricRegistry:
    """Named counters for one component."""

    __slots__ = ("component", "counters")

    def __init__(self, component: str):
        self.component = component
        self.counters: dict[str, float] = {}

    def incr(self, name: str, delta: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + delta

    def get(self, name: str) -> float:
        return self.counters.get(name, 0)

    def snapshot(self) -> dict[str, float]:
        """Counters sorted by name (deterministic rendering order)."""
        return {name: self.counters[name] for name in sorted(self.counters)}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<MetricRegistry {self.component!r} {self.snapshot()}>"


class NullMetricRegistry(MetricRegistry):
    """The disabled registry: increments vanish."""

    def __init__(self):
        super().__init__("null")

    def incr(self, name: str, delta: float = 1) -> None:
        pass


NULL_METRICS = NullMetricRegistry()
