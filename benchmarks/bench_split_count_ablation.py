"""Ablation (Section 4.6) — repetition-split count selection.

Sweeps k over the DBLP author repetition for the motivating query.
Shapes asserted: any split beats no split on this workload; the
statistics-suggested k is within a small factor of the best k's cost
(the paper picks k = 5 because 99% of publications have <= 5 authors);
storage grows monotonically with k.
"""

from repro.experiments import format_table
from repro.experiments.split_count import run_split_count_sweep


def test_split_count_sweep(benchmark, dblp_bundle, emit):
    sweep = benchmark.pedantic(
        lambda: run_split_count_sweep(dblp_bundle, ks=range(1, 9)),
        rounds=1, iterations=1)
    emit(format_table(
        "Section 4.6 ablation — repetition-split count k (DBLP, SIGMOD "
        "query)", ["k", "measured cost", "data size", ""], sweep.rows(),
        note=f"suggested k = {sweep.suggested_k}; best k = {sweep.best_k()}"))
    # Any split beats the unsplit mapping on this author-heavy query.
    assert all(p.measured_cost < sweep.baseline_cost for p in sweep.points)
    # The suggested k is competitive with the best k found by the sweep.
    best = min(p.measured_cost for p in sweep.points)
    assert sweep.point(sweep.suggested_k).measured_cost <= best * 1.35
    # Storage: at small k the shrinking overflow table can offset the
    # wider inline columns, but past the cardinality mass the inline
    # columns only add nulls, so the large-k end always costs more
    # space than the cheapest point (the paper's space/performance
    # balance argument for picking a small k).
    sizes = [p.data_bytes for p in sweep.points]
    assert sizes[-1] > min(sizes)
