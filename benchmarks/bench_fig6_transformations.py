"""Fig. 6 — number of transformations searched by Greedy vs.
Naive-Greedy.

Paper shapes asserted: Greedy searches several-to-tens of times fewer
transformations than Naive-Greedy (10-40x on DBLP, 5-10x on Movie), and
the gap is larger on the larger schema (DBLP).
"""

import statistics

from conftest import build_comparison


def _ratios(comparison):
    greedy = comparison.by_algorithm("greedy")
    naive = comparison.by_algorithm("naive-greedy")
    return [naive[name].transformations / max(greedy[name].transformations, 1)
            for name in naive if name in greedy]


def test_fig6_dblp(benchmark, dblp_bundle, comparison_cache, emit):
    comparison = benchmark.pedantic(
        lambda: build_comparison(dblp_bundle, comparison_cache),
        rounds=1, iterations=1)
    emit(comparison.fig6())
    ratios = _ratios(comparison)
    if ratios:
        assert statistics.median(ratios) >= 5


def test_fig6_movie(benchmark, movie_bundle, comparison_cache, emit):
    comparison = benchmark.pedantic(
        lambda: build_comparison(movie_bundle, comparison_cache),
        rounds=1, iterations=1)
    emit(comparison.fig6())
    ratios = _ratios(comparison)
    if ratios:
        assert statistics.median(ratios) >= 2
