"""Workload model, random generator (paper Section 5.1.3), and the
load-harness query-mix sampler."""

from .generator import (HIGH_PROJECTIONS, HIGH_SELECTIVITY, LOW_PROJECTIONS,
                        LOW_SELECTIVITY, WorkloadGenerator)
from .mix import MixSampler, QueryMix, zipf_mix
from .model import WeightedQuery, WeightedUpdate, Workload

__all__ = [
    "Workload",
    "WeightedQuery",
    "WeightedUpdate",
    "WorkloadGenerator",
    "QueryMix",
    "MixSampler",
    "zipf_mix",
    "LOW_SELECTIVITY",
    "HIGH_SELECTIVITY",
    "LOW_PROJECTIONS",
    "HIGH_PROJECTIONS",
]
