"""Synthetic Movie data set (paper Fig. 1b).

A movie site: ``movie`` elements with title, optional year (the paper's
Section 4.7 example assumes year is optional), repeated ``aka_title``,
optional ``avg_rating``, and the choice ``(box_office | seasons)``
separating theatrical movies from TV shows. Values are uniform, as in
the paper's synthetic Movie data.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..xmlkit import Document, Element, LazyElement
from ..xsd import BaseType, SchemaTree, TreeBuilder

_ADJECTIVES = ["Lost", "Dark", "Silent", "Golden", "Broken", "Hidden",
               "Final", "Eternal", "Burning", "Frozen"]
_NOUNS = ["Empire", "River", "Garden", "Station", "Horizon", "Signal",
          "Harbor", "Crown", "Mirror", "Island"]


def movie_schema() -> SchemaTree:
    """The Movie schema tree of Fig. 1b (with optional year)."""
    b = TreeBuilder("movie")
    movies = b.tag("movies", annotation="movies")
    movie_rep = b.rep(movies)
    movie = b.tag("movie", movie_rep, annotation="movie")
    b.leaf("title", movie)
    b.optional_leaf("year", movie, BaseType.INTEGER)
    b.repeated_leaf("aka_title", movie, annotation="aka_title")
    b.optional_leaf("avg_rating", movie, BaseType.DECIMAL)
    choice = b.choice(movie)
    b.leaf("box_office", choice, BaseType.INTEGER)
    b.leaf("seasons", choice, BaseType.INTEGER)
    return b.build(movies)


def iter_movie_elements(n_movies: int = 2000, seed: int = 11,
                        tv_fraction: float = 0.35) -> Iterator[Element]:
    """Yield movie elements one at a time (the streaming core).

    The RNG lives inside the generator, so a fresh iterator over the
    same parameters replays an identical element sequence — what makes
    the lazy document form re-iterable.
    """
    rng = random.Random(seed)
    for i in range(n_movies):
        movie = Element("movie")
        title = (f"{rng.choice(_ADJECTIVES)} {rng.choice(_NOUNS)} {i}")
        movie.make_child("title", title)
        if rng.random() < 0.85:
            movie.make_child("year", str(rng.randint(1950, 2004)))
        # aka_title cardinality skewed low: most movies have 0-2.
        for _ in range(rng.choices([0, 1, 2, 3, 6],
                                   weights=[45, 30, 15, 8, 2], k=1)[0]):
            movie.make_child("aka_title", f"AKA {title} #{rng.randint(1, 9)}")
        if rng.random() < 0.60:
            movie.make_child("avg_rating", f"{rng.uniform(1.0, 10.0):.1f}")
        if rng.random() < tv_fraction:
            movie.make_child("seasons", str(rng.randint(1, 12)))
        else:
            movie.make_child("box_office", str(rng.randint(10_000,
                                                           500_000_000)))
        yield movie


def generate_movies(n_movies: int = 2000, seed: int = 11,
                    tv_fraction: float = 0.35,
                    stream: bool = False) -> Document:
    """Generate a synthetic movie document with uniform distributions.

    ``stream=True`` returns a lazily generated document (see
    :func:`repro.datasets.generate_dblp`) with identical content.
    """
    if stream:
        return Document(LazyElement(
            "movies",
            lambda: iter_movie_elements(n_movies, seed, tv_fraction)))
    root = Element("movies")
    for movie in iter_movie_elements(n_movies, seed, tv_fraction):
        root.append(movie)
    return Document(root)
