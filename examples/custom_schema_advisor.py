"""Bring-your-own-schema: tune storage for a custom XSD + workload.

Shows the advisor on a schema it has never seen — an order-management
feed with a choice group (payment method), optional elements, and a
repeated element with skewed cardinality — exactly the XSD features the
paper's non-subsumed transformations exploit.

Run with::

    python examples/custom_schema_advisor.py
"""

import random

from repro import (GreedySearch, Workload, collect_statistics,
                   hybrid_inlining, parse_xsd)
from repro.experiments import (DatasetBundle, measure_design,
                               tuned_hybrid_baseline)
from repro.xmlkit import Document, Element

ORDERS_XSD = """
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"
           xmlns:sdb="urn:repro:storage">
  <xs:element name="orders" sdb:table="orders">
    <xs:complexType><xs:sequence>
      <xs:element name="order" minOccurs="0" maxOccurs="unbounded"
                  sdb:table="ord">
        <xs:complexType><xs:sequence>
          <xs:element name="customer" type="xs:string"/>
          <xs:element name="status" type="xs:string"/>
          <xs:element name="region" type="xs:string"/>
          <xs:element name="total" type="xs:decimal"/>
          <xs:element name="item" type="xs:string" minOccurs="0"
                      maxOccurs="unbounded" sdb:table="item"/>
          <xs:element name="coupon" type="xs:string" minOccurs="0"/>
          <xs:choice>
            <xs:element name="card_number" type="xs:string"/>
            <xs:element name="invoice_account" type="xs:string"/>
          </xs:choice>
        </xs:sequence>
        <xs:attribute name="channel" type="xs:string" use="required"/>
        </xs:complexType>
      </xs:element>
    </xs:sequence></xs:complexType>
  </xs:element>
</xs:schema>
"""

REGIONS = ["EMEA", "AMER", "APAC", "LATAM"]


def generate_orders(n: int, seed: int = 5) -> Document:
    rng = random.Random(seed)
    root = Element("orders")
    for i in range(n):
        order = root.make_child(
            "order",
            attributes={"channel": rng.choice(["web", "store", "phone"])})
        order.make_child("customer", f"Customer {rng.randrange(n // 4 + 1)}")
        order.make_child("status", rng.choice(
            ["open", "shipped", "delivered", "returned"]))
        order.make_child("region", rng.choice(REGIONS))
        order.make_child("total", f"{rng.uniform(5, 2500):.2f}")
        # Skewed item cardinality: most orders have 1-3 items.
        for _ in range(rng.choices([1, 2, 3, 4, 9],
                                   weights=[40, 30, 20, 8, 2], k=1)[0]):
            order.make_child("item", f"SKU-{rng.randrange(500):04d}")
        if rng.random() < 0.25:
            order.make_child("coupon", f"SAVE{rng.randrange(90):02d}")
        if rng.random() < 0.7:
            order.make_child("card_number", f"4{rng.randrange(10**15):015d}")
        else:
            order.make_child("invoice_account", f"ACCT-{rng.randrange(9999)}")
    return Document(root)


WORKLOAD = [
    # Card-settlement report: only card orders (choice branch).
    '//order[region = "EMEA"]/(customer | total | card_number)',
    # Channel report: attribute predicate + attribute projection.
    '//order[@channel = "web"]/(customer | total | @channel)',
    # Items of large orders (repetition split + covering index).
    '//order[total >= "1000"]/(customer | item)',
    # Coupon redemptions (implicit union on the optional coupon).
    "//order/coupon",
    "//order[coupon]/(customer | total)",
    # Invoice aging: the other choice branch.
    "//order/invoice_account",
]


def main() -> None:
    tree = parse_xsd(ORDERS_XSD, name="orders")
    print("schema tree:")
    print(tree.pretty(), "\n")

    docs = generate_orders(3000)
    stats = collect_statistics(tree, docs)
    bundle = DatasetBundle("orders", tree, docs, stats)
    workload = Workload.from_strings("order-ops", WORKLOAD)

    baseline = tuned_hybrid_baseline(bundle, workload)
    print(f"hybrid-inlining baseline (tuned): {baseline.measured_cost:.1f}\n")

    result = GreedySearch(tree, workload, stats, bundle.storage_bound).run()
    print(result.describe())
    measured = measure_design(result, bundle)
    print(f"\nmeasured workload cost: {measured:.1f} "
          f"({measured / baseline.measured_cost:.2f}x the tuned hybrid "
          f"baseline)")


if __name__ == "__main__":
    main()
